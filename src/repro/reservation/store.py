"""The per-AS reservation store.

The paper keeps reservations "in a transactional database" (§6.1).  This
in-memory equivalent preserves the property the protocol needs:
multi-step setup handling either commits completely or leaves no trace —
"in case of an unsuccessful request, the ASes clean up their temporary
reservations" (§3.3).  :meth:`ReservationStore.transaction` provides that
with an undo journal, so any exception inside the block rolls back every
mutation made through the store — *including* expiry sweeps, which the
original implementation deleted outside the journal (a sweep inside a
later-aborted transaction left allocations restored for EERs that no
longer existed).

The store also maintains the EER-per-SegR allocation accounting that EER
admission reads: ``allocated_on_segment`` is an O(1) lookup thanks to
incrementally maintained sums — one ingredient of the flat curves in
Fig. 4.

Expiry is time-indexed: every reservation is scheduled on an
:class:`~repro.reservation.timewheel.ExpiryWheel` keyed by its expiry,
so :meth:`sweep_expired` and the expiry-window queries
(:meth:`eers_expiring_by`, :meth:`segments_expiring_by`) cost
O(log buckets + matched) instead of a full scan.  The wheel records the
expiry *as of the last store interaction*; reservation objects whose
expiry moved out of band (renewal versions added, versions dropped,
activation) are lazily revalidated when they surface — a live candidate
is simply re-indexed at its real expiry — and callers that shrink an
expiry should :meth:`touch` the reservation so its removal is timely
rather than merely eventual.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, List, Optional, Tuple

from repro.errors import ReservationNotFound, StoreConflict
from repro.reservation.e2e import E2EReservation
from repro.reservation.ids import ReservationId
from repro.reservation.segment import SegmentReservation
from repro.reservation.timewheel import ExpiryWheel


class ReservationStore:
    """Holds one AS's SegRs, EERs, and EER-on-SegR allocation sums."""

    def __init__(self):
        self._segments: dict[ReservationId, SegmentReservation] = {}
        self._eers: dict[ReservationId, E2EReservation] = {}
        # SegR id -> (EER id -> allocated bandwidth); sums kept alongside.
        self._eer_alloc: dict[ReservationId, dict] = {}
        self._eer_alloc_sum: dict[ReservationId, float] = {}
        # Expiry indexes: scheduled (not necessarily current) expiries.
        self._eer_wheel = ExpiryWheel()
        self._seg_wheel = ExpiryWheel()
        self._journal: Optional[list] = None
        # Where a swept EER's allocations are released.  A standalone
        # store releases against itself; a sharding wrapper points every
        # shard here, because an EER's SegRs may live in *other* shards.
        self._release_router: "ReservationStore" = self

    # -- transactions -----------------------------------------------------------

    @contextmanager
    def transaction(self):
        """All store mutations inside the block commit or roll back together."""
        if self._journal is not None:
            raise StoreConflict("nested transactions are not supported")
        self._journal = []
        try:
            yield self
        except BaseException:
            for undo in reversed(self._journal):
                undo()
            raise
        finally:
            self._journal = None

    def _record(self, undo: Callable[[], None]) -> None:
        if self._journal is not None:
            self._journal.append(undo)

    # -- segment reservations ----------------------------------------------------

    def add_segment(self, reservation: SegmentReservation) -> None:
        res_id = reservation.reservation_id
        if res_id in self._segments:
            raise StoreConflict(f"SegR {res_id} already stored")
        self._segments[res_id] = reservation
        self._eer_alloc[res_id] = {}
        self._eer_alloc_sum[res_id] = 0.0
        self._seg_wheel.schedule(res_id, reservation.expiry)
        self._record(lambda: self._drop_segment(res_id))

    def _drop_segment(self, res_id: ReservationId) -> None:
        self._segments.pop(res_id, None)
        self._eer_alloc.pop(res_id, None)
        self._eer_alloc_sum.pop(res_id, None)
        self._seg_wheel.remove(res_id)

    def remove_segment(self, res_id: ReservationId) -> SegmentReservation:
        reservation = self.get_segment(res_id)
        allocations = self._eer_alloc[res_id]
        alloc_sum = self._eer_alloc_sum[res_id]
        scheduled = self._seg_wheel.scheduled_expiry(res_id)
        self._drop_segment(res_id)

        def undo():
            self._segments[res_id] = reservation
            self._eer_alloc[res_id] = allocations
            self._eer_alloc_sum[res_id] = alloc_sum
            if scheduled is not None:
                self._seg_wheel.schedule(res_id, scheduled)

        self._record(undo)
        return reservation

    def get_segment(self, res_id: ReservationId) -> SegmentReservation:
        reservation = self._segments.get(res_id)
        if reservation is None:
            raise ReservationNotFound(f"unknown SegR {res_id}")
        return reservation

    def has_segment(self, res_id: ReservationId) -> bool:
        return res_id in self._segments

    def segments(self) -> list:
        return list(self._segments.values())

    def segment_count(self) -> int:
        return len(self._segments)

    # -- end-to-end reservations ---------------------------------------------------

    def add_eer(self, reservation: E2EReservation) -> None:
        res_id = reservation.reservation_id
        if res_id in self._eers:
            raise StoreConflict(f"EER {res_id} already stored")
        self._eers[res_id] = reservation
        self._eer_wheel.schedule(res_id, reservation.expiry)

        def undo():
            self._eers.pop(res_id, None)
            self._eer_wheel.remove(res_id)

        self._record(undo)

    def remove_eer(self, res_id: ReservationId) -> E2EReservation:
        """Early removal of an EER (abort of a failed setup, §3.3).

        Only the EER record itself; the caller releases its per-SegR
        allocations via :meth:`release_on_segment` so the cleanup is one
        journaled transaction.
        """
        reservation = self.get_eer(res_id)
        del self._eers[res_id]
        self._record(lambda: self._eers.__setitem__(res_id, reservation))
        scheduled = self._eer_wheel.scheduled_expiry(res_id)
        if scheduled is not None:
            self._eer_wheel.remove(res_id)
            self._record(lambda: self._eer_wheel.schedule(res_id, scheduled))
        return reservation

    def get_eer(self, res_id: ReservationId) -> E2EReservation:
        reservation = self._eers.get(res_id)
        if reservation is None:
            raise ReservationNotFound(f"unknown EER {res_id}")
        return reservation

    def has_eer(self, res_id: ReservationId) -> bool:
        return res_id in self._eers

    def eers(self) -> list:
        return list(self._eers.values())

    def eer_count(self) -> int:
        return len(self._eers)

    # -- expiry index ------------------------------------------------------------

    def touch(self, res_id: ReservationId) -> None:
        """Re-index a reservation whose expiry changed out of band.

        Version lifecycles mutate reservation objects directly (renewal
        ``add_version``, abort ``drop_version``, SegR ``activate``); the
        store cannot observe those, so the expiry index keeps the old
        schedule.  An *extension* heals lazily (the sweep revalidates and
        re-indexes); a *shrink* would only be collected at the old, later
        expiry.  Callers mutating versions should touch the reservation
        afterwards so both directions are indexed exactly.  Journaled,
        so a rolled-back transaction also restores the old schedule.
        Unknown ids are a no-op.
        """
        if res_id in self._eers:
            wheel, expiry = self._eer_wheel, self._eers[res_id].expiry
        elif res_id in self._segments:
            wheel, expiry = self._seg_wheel, self._segments[res_id].expiry
        else:
            return
        previous = wheel.scheduled_expiry(res_id)
        if previous == expiry:
            return
        wheel.schedule(res_id, expiry)

        def undo():
            if previous is None:
                wheel.remove(res_id)
            else:
                wheel.schedule(res_id, previous)

        self._record(undo)

    def eers_expiring_by(self, deadline: float) -> List[E2EReservation]:
        """EERs whose expiry is at or before ``deadline`` —
        O(buckets + matched), never a full scan."""
        due = []
        for res_id, _ in self._eer_wheel.peek_due(deadline):
            reservation = self._eers.get(res_id)
            if reservation is not None and reservation.expiry <= deadline:
                due.append(reservation)
        return due

    def segments_expiring_by(self, deadline: float) -> List[SegmentReservation]:
        """SegRs whose active version expires by ``deadline`` —
        O(buckets + matched), never a full scan."""
        due = []
        for res_id, _ in self._seg_wheel.peek_due(deadline):
            reservation = self._segments.get(res_id)
            if reservation is not None and reservation.expiry <= deadline:
                due.append(reservation)
        return due

    # -- EER-on-SegR allocation accounting -----------------------------------------

    def allocate_on_segment(
        self, segment_id: ReservationId, eer_id: ReservationId, bandwidth: float
    ) -> None:
        """Set (or raise) the bandwidth an EER occupies on a SegR.

        Renewals may change the amount; the per-SegR sum is maintained
        incrementally so admission reads it in O(1).
        """
        if segment_id not in self._eer_alloc:
            raise ReservationNotFound(f"unknown SegR {segment_id}")
        allocations = self._eer_alloc[segment_id]
        previous = allocations.get(eer_id, 0.0)
        allocations[eer_id] = bandwidth
        self._eer_alloc_sum[segment_id] += bandwidth - previous
        self._resync_sum(segment_id)

        def undo():
            if previous == 0.0 and eer_id in allocations:
                del allocations[eer_id]
            else:
                allocations[eer_id] = previous
            self._eer_alloc_sum[segment_id] += previous - bandwidth
            self._resync_sum(segment_id)

        self._record(undo)

    def release_on_segment(self, segment_id: ReservationId, eer_id: ReservationId) -> None:
        """Drop an EER's allocation (it expired)."""
        allocations = self._eer_alloc.get(segment_id)
        if allocations is None or eer_id not in allocations:
            return
        previous = allocations.pop(eer_id)
        self._eer_alloc_sum[segment_id] -= previous
        self._resync_sum(segment_id)

        def undo():
            allocations[eer_id] = previous
            self._eer_alloc_sum[segment_id] += previous
            self._resync_sum(segment_id)

        self._record(undo)

    def _resync_sum(self, segment_id: ReservationId) -> None:
        """Kill incremental float drift while staying O(1) amortized.

        An empty allocation map means an exactly-zero sum; small maps are
        cheap to resum exactly.  Large maps keep the incremental value —
        drift there stays far below any admission-relevant magnitude
        (found by the stateful property test, where add/release cycles
        left a -4e-9 residue that broke exact-zero comparisons).
        """
        allocations = self._eer_alloc[segment_id]
        if not allocations:
            self._eer_alloc_sum[segment_id] = 0.0
        elif len(allocations) <= 8:
            self._eer_alloc_sum[segment_id] = sum(allocations.values())

    def allocated_on_segment(self, segment_id: ReservationId) -> float:
        """Total EER bandwidth currently admitted on a SegR — O(1)."""
        total = self._eer_alloc_sum.get(segment_id)
        if total is None:
            raise ReservationNotFound(f"unknown SegR {segment_id}")
        return total

    def eer_allocation(self, segment_id: ReservationId, eer_id: ReservationId) -> float:
        allocations = self._eer_alloc.get(segment_id)
        if allocations is None:
            raise ReservationNotFound(f"unknown SegR {segment_id}")
        return allocations.get(eer_id, 0.0)

    # -- garbage collection -----------------------------------------------------------

    def sweep_expired(self, now: float) -> dict:
        """Remove expired reservations and release their allocations.

        Reservations "automatically expire" (§4.2); this sweep is the
        bookkeeping side.  Returns counts for observability.
        """
        counts, _, _ = self.sweep_expired_details(now)
        return counts

    def sweep_expired_details(
        self, now: float
    ) -> Tuple[dict, List[ReservationId], List[ReservationId]]:
        """:meth:`sweep_expired`, plus the ids removed.

        ``(counts, dead_eer_ids, dead_segment_ids)`` — callers holding
        per-reservation side state (segment admission entries, registry
        rows, transfer-quota demand) clean up against the id lists
        without re-scanning the store.

        Cost is O(log buckets + candidates): only reservations whose
        *scheduled* expiry has passed are examined.  Every candidate is
        revalidated against its object's real expiry; out-of-band
        renewals surface here and are simply re-indexed (and pruned of
        stale versions) instead of removed.  All removals go through the
        journal, so a sweep inside :meth:`transaction` rolls back
        completely — reservations, allocations, and expiry index alike.
        """
        dead_eers: List[ReservationId] = []
        for res_id, scheduled in self._eer_wheel.collect_due(now):
            reservation = self._eers.get(res_id)
            if reservation is None:
                continue  # stale index entry for an already-removed EER
            if not reservation.is_expired(now):
                # Renewed out of band: re-index at the real expiry.
                self._reschedule(self._eer_wheel, res_id, scheduled,
                                 reservation.expiry)
                reservation.prune(now)
                continue
            for segment_id in reservation.segment_ids:
                self._release_router.release_on_segment(segment_id, res_id)
            self.remove_eer(res_id)
            self._record(
                lambda res_id=res_id, scheduled=scheduled:
                self._eer_wheel.schedule(res_id, scheduled)
            )
            dead_eers.append(res_id)
        dead_segments: List[ReservationId] = []
        for res_id, scheduled in self._seg_wheel.collect_due(now):
            reservation = self._segments.get(res_id)
            if reservation is None:
                continue
            if not reservation.is_expired(now):
                # Activated to a longer-lived version out of band.
                self._reschedule(self._seg_wheel, res_id, scheduled,
                                 reservation.expiry)
                reservation.prune(now)
                continue
            self.remove_segment(res_id)
            self._record(
                lambda res_id=res_id, scheduled=scheduled:
                self._seg_wheel.schedule(res_id, scheduled)
            )
            dead_segments.append(res_id)
        return (
            {"eers": len(dead_eers), "segments": len(dead_segments)},
            dead_eers,
            dead_segments,
        )

    def _reschedule(
        self, wheel: ExpiryWheel, res_id: ReservationId,
        scheduled: float, expiry: float,
    ) -> None:
        """Re-index a sweep candidate that turned out to be live, with an
        undo restoring the consumed (earlier) schedule on rollback."""
        wheel.schedule(res_id, expiry)
        self._record(lambda: wheel.schedule(res_id, scheduled))
