"""The per-AS reservation store.

The paper keeps reservations "in a transactional database" (§6.1).  This
in-memory equivalent preserves the property the protocol needs:
multi-step setup handling either commits completely or leaves no trace —
"in case of an unsuccessful request, the ASes clean up their temporary
reservations" (§3.3).  :meth:`ReservationStore.transaction` provides that
with an undo journal, so any exception inside the block rolls back every
mutation made through the store.

The store also maintains the EER-per-SegR allocation accounting that EER
admission reads: ``allocated_on_segment`` is an O(1) lookup thanks to
incrementally maintained sums — one ingredient of the flat curves in
Fig. 4.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Optional

from repro.errors import ReservationNotFound, StoreConflict
from repro.reservation.e2e import E2EReservation
from repro.reservation.ids import ReservationId
from repro.reservation.segment import SegmentReservation


class ReservationStore:
    """Holds one AS's SegRs, EERs, and EER-on-SegR allocation sums."""

    def __init__(self):
        self._segments: dict[ReservationId, SegmentReservation] = {}
        self._eers: dict[ReservationId, E2EReservation] = {}
        # SegR id -> (EER id -> allocated bandwidth); sums kept alongside.
        self._eer_alloc: dict[ReservationId, dict] = {}
        self._eer_alloc_sum: dict[ReservationId, float] = {}
        self._journal: Optional[list] = None

    # -- transactions -----------------------------------------------------------

    @contextmanager
    def transaction(self):
        """All store mutations inside the block commit or roll back together."""
        if self._journal is not None:
            raise StoreConflict("nested transactions are not supported")
        self._journal = []
        try:
            yield self
        except BaseException:
            for undo in reversed(self._journal):
                undo()
            raise
        finally:
            self._journal = None

    def _record(self, undo: Callable[[], None]) -> None:
        if self._journal is not None:
            self._journal.append(undo)

    # -- segment reservations ----------------------------------------------------

    def add_segment(self, reservation: SegmentReservation) -> None:
        res_id = reservation.reservation_id
        if res_id in self._segments:
            raise StoreConflict(f"SegR {res_id} already stored")
        self._segments[res_id] = reservation
        self._eer_alloc[res_id] = {}
        self._eer_alloc_sum[res_id] = 0.0
        self._record(lambda: self._drop_segment(res_id))

    def _drop_segment(self, res_id: ReservationId) -> None:
        self._segments.pop(res_id, None)
        self._eer_alloc.pop(res_id, None)
        self._eer_alloc_sum.pop(res_id, None)

    def remove_segment(self, res_id: ReservationId) -> SegmentReservation:
        reservation = self.get_segment(res_id)
        allocations = self._eer_alloc[res_id]
        alloc_sum = self._eer_alloc_sum[res_id]
        self._drop_segment(res_id)

        def undo():
            self._segments[res_id] = reservation
            self._eer_alloc[res_id] = allocations
            self._eer_alloc_sum[res_id] = alloc_sum

        self._record(undo)
        return reservation

    def get_segment(self, res_id: ReservationId) -> SegmentReservation:
        reservation = self._segments.get(res_id)
        if reservation is None:
            raise ReservationNotFound(f"unknown SegR {res_id}")
        return reservation

    def has_segment(self, res_id: ReservationId) -> bool:
        return res_id in self._segments

    def segments(self) -> list:
        return list(self._segments.values())

    def segment_count(self) -> int:
        return len(self._segments)

    # -- end-to-end reservations ---------------------------------------------------

    def add_eer(self, reservation: E2EReservation) -> None:
        res_id = reservation.reservation_id
        if res_id in self._eers:
            raise StoreConflict(f"EER {res_id} already stored")
        self._eers[res_id] = reservation
        self._record(lambda: self._eers.pop(res_id, None))

    def remove_eer(self, res_id: ReservationId) -> E2EReservation:
        """Early removal of an EER (abort of a failed setup, §3.3).

        Only the EER record itself; the caller releases its per-SegR
        allocations via :meth:`release_on_segment` so the cleanup is one
        journaled transaction.
        """
        reservation = self.get_eer(res_id)
        del self._eers[res_id]
        self._record(lambda: self._eers.__setitem__(res_id, reservation))
        return reservation

    def get_eer(self, res_id: ReservationId) -> E2EReservation:
        reservation = self._eers.get(res_id)
        if reservation is None:
            raise ReservationNotFound(f"unknown EER {res_id}")
        return reservation

    def has_eer(self, res_id: ReservationId) -> bool:
        return res_id in self._eers

    def eers(self) -> list:
        return list(self._eers.values())

    def eer_count(self) -> int:
        return len(self._eers)

    # -- EER-on-SegR allocation accounting -----------------------------------------

    def allocate_on_segment(
        self, segment_id: ReservationId, eer_id: ReservationId, bandwidth: float
    ) -> None:
        """Set (or raise) the bandwidth an EER occupies on a SegR.

        Renewals may change the amount; the per-SegR sum is maintained
        incrementally so admission reads it in O(1).
        """
        if segment_id not in self._eer_alloc:
            raise ReservationNotFound(f"unknown SegR {segment_id}")
        allocations = self._eer_alloc[segment_id]
        previous = allocations.get(eer_id, 0.0)
        allocations[eer_id] = bandwidth
        self._eer_alloc_sum[segment_id] += bandwidth - previous
        self._resync_sum(segment_id)

        def undo():
            if previous == 0.0 and eer_id in allocations:
                del allocations[eer_id]
            else:
                allocations[eer_id] = previous
            self._eer_alloc_sum[segment_id] += previous - bandwidth
            self._resync_sum(segment_id)

        self._record(undo)

    def release_on_segment(self, segment_id: ReservationId, eer_id: ReservationId) -> None:
        """Drop an EER's allocation (it expired)."""
        allocations = self._eer_alloc.get(segment_id)
        if allocations is None or eer_id not in allocations:
            return
        previous = allocations.pop(eer_id)
        self._eer_alloc_sum[segment_id] -= previous
        self._resync_sum(segment_id)

        def undo():
            allocations[eer_id] = previous
            self._eer_alloc_sum[segment_id] += previous
            self._resync_sum(segment_id)

        self._record(undo)

    def _resync_sum(self, segment_id: ReservationId) -> None:
        """Kill incremental float drift while staying O(1) amortized.

        An empty allocation map means an exactly-zero sum; small maps are
        cheap to resum exactly.  Large maps keep the incremental value —
        drift there stays far below any admission-relevant magnitude
        (found by the stateful property test, where add/release cycles
        left a -4e-9 residue that broke exact-zero comparisons).
        """
        allocations = self._eer_alloc[segment_id]
        if not allocations:
            self._eer_alloc_sum[segment_id] = 0.0
        elif len(allocations) <= 8:
            self._eer_alloc_sum[segment_id] = sum(allocations.values())

    def allocated_on_segment(self, segment_id: ReservationId) -> float:
        """Total EER bandwidth currently admitted on a SegR — O(1)."""
        total = self._eer_alloc_sum.get(segment_id)
        if total is None:
            raise ReservationNotFound(f"unknown SegR {segment_id}")
        return total

    def eer_allocation(self, segment_id: ReservationId, eer_id: ReservationId) -> float:
        allocations = self._eer_alloc.get(segment_id)
        if allocations is None:
            raise ReservationNotFound(f"unknown SegR {segment_id}")
        return allocations.get(eer_id, 0.0)

    # -- garbage collection -----------------------------------------------------------

    def sweep_expired(self, now: float) -> dict:
        """Remove expired reservations and release their allocations.

        Reservations "automatically expire" (§4.2); this sweep is the
        bookkeeping side.  Returns counts for observability.
        """
        dead_eers = [r for r in self._eers.values() if r.is_expired(now)]
        for eer in dead_eers:
            for segment_id in eer.segment_ids:
                if segment_id in self._eer_alloc:
                    self.release_on_segment(segment_id, eer.reservation_id)
            del self._eers[eer.reservation_id]
        dead_segments = [r for r in self._segments.values() if r.is_expired(now)]
        for segment in dead_segments:
            self._drop_segment(segment.reservation_id)
        for reservation in self._segments.values():
            reservation.prune(now)
        for reservation in self._eers.values():
            reservation.prune(now)
        return {"eers": len(dead_eers), "segments": len(dead_segments)}
