"""End-to-end-reservation state (§3.3, §4.2).

EERs are short-term host-to-host reservations with a fixed validity
period (16 s).  Unlike SegRs, "multiple versions of the same EER [can]
exist simultaneously" so renewals are seamless; versions expire on their
own and "there is no mechanism to remove them earlier".

Using several versions at once gains nothing: the traffic monitor maps
all versions to the same reservation ID, so a sender "can obtain at most
the maximum bandwidth of all valid versions but not more" (§4.8).  That
maximum is :meth:`E2EReservation.effective_bandwidth`, the number both
EER admission accounting and monitoring use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import VersionError
from repro.reservation.ids import ReservationId

if TYPE_CHECKING:  # avoid a packets <-> reservation import cycle
    from repro.packets.fields import EerInfo


@dataclass
class E2EVersion:
    """One version of an EER; expires on its own, never removed early.

    Slotted: a million-EER store (ROADMAP) holds at least one of these
    per EER, and the instance ``__dict__`` would roughly double the
    per-version footprint.
    """

    __slots__ = ("version", "bandwidth", "expiry")

    version: int
    bandwidth: float  # bits per second
    expiry: float  # absolute seconds

    def is_live(self, now: float) -> bool:
        return now < self.expiry


class E2EReservation:
    """An EER as stored by an on-path AS or the source gateway.

    Slotted for the same reason as :class:`E2EVersion`: EERs dominate a
    large store's population (16 s lifetime, §4.2, renewed continuously),
    so per-instance dict overhead is the store's memory floor.
    """

    __slots__ = ("reservation_id", "eer_info", "hops", "segment_ids", "_versions")

    def __init__(
        self,
        reservation_id: ReservationId,
        eer_info: EerInfo,
        hops: tuple,
        segment_ids: tuple,
        first_version: E2EVersion,
    ):
        self.reservation_id = reservation_id
        self.eer_info = eer_info
        self.hops = hops  # tuple[HopField], the full end-to-end path
        self.segment_ids = segment_ids  # the 1-3 SegRs the EER rides on
        self._versions: dict[int, E2EVersion] = {first_version.version: first_version}

    # -- views ----------------------------------------------------------------

    @property
    def versions(self) -> dict:
        return dict(self._versions)

    def live_versions(self, now: float) -> list:
        return [v for v in self._versions.values() if v.is_live(now)]

    def latest_version(self) -> E2EVersion:
        """The highest-numbered version — what the gateway stamps packets
        with ("the gateway generally uses a single version (the latest
        one) to send traffic", §4.2)."""
        return self._versions[max(self._versions)]

    def latest_live_version(self, now: float):
        """The highest-numbered unexpired version, or ``None``."""
        live = self.live_versions(now)
        return max(live, key=lambda v: v.version) if live else None

    def effective_bandwidth(self, now: float) -> float:
        """Max bandwidth over all live versions — the monitored budget (§4.8)."""
        live = self.live_versions(now)
        return max((v.bandwidth for v in live), default=0.0)

    def is_expired(self, now: float) -> bool:
        return not self.live_versions(now)

    @property
    def expiry(self) -> float:
        """Latest expiry across versions (when the EER record can be GC'd)."""
        return max(v.expiry for v in self._versions.values())

    # -- lifecycle --------------------------------------------------------------

    def add_version(self, version: E2EVersion) -> None:
        """Record a renewal's version; coexists with older ones (§4.2)."""
        if version.version in self._versions:
            raise VersionError(
                f"EER {self.reservation_id} already has version {version.version}"
            )
        if version.version <= max(self._versions):
            raise VersionError(
                f"new version {version.version} must exceed existing versions "
                f"(max {max(self._versions)})"
            )
        self._versions[version.version] = version

    def drop_version(self, version_number: int) -> E2EVersion:
        """Remove one version early — the abort path of a failed renewal
        whose response was lost (§3.3 cleanup).  The base version (the
        only one left) can never be dropped this way."""
        if version_number not in self._versions:
            raise VersionError(
                f"EER {self.reservation_id} has no version {version_number}"
            )
        if len(self._versions) == 1:
            raise VersionError(
                f"cannot drop the only version of EER {self.reservation_id}; "
                "abort the whole reservation instead"
            )
        return self._versions.pop(version_number)

    def prune(self, now: float) -> int:
        """Drop expired versions (keep at least the newest for bookkeeping)."""
        newest = max(self._versions)
        stale = [
            number
            for number, version in self._versions.items()
            if number != newest and not version.is_live(now)
        ]
        for number in stale:
            del self._versions[number]
        return len(stale)

    def next_version_number(self) -> int:
        return max(self._versions) + 1

    def __repr__(self) -> str:
        return (
            f"E2EReservation({self.reservation_id}, "
            f"versions={sorted(self._versions)}, segments={len(self.segment_ids)})"
        )
