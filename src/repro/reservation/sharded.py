"""Per-AS-pair sharding of the reservation store.

One flat dict per CServ stops being the right shape at the ROADMAP's
million-reservation scale: every structural operation contends on the
same maps, and a future persistent backend (§6.1 keeps reservations "in
a transactional database") wants a natural partitioning key.  SIBRA's
steady/ephemeral split suggests the key: reservation state is naturally
local to the *pair of edge ASes* it connects — a SegR to its first/last
AS, an EER to its source AS and destination-hop AS — so this wrapper
hashes that pair onto a fixed set of :class:`ReservationStore` shards.

The wrapper is a drop-in: it exposes the complete ``ReservationStore``
surface (including :meth:`transaction` semantics and the expiry-window
queries) so ``control/cserv.py`` and ``control/renewal.py`` call sites
are untouched.  Routing is a single dict lookup per call — the O(1)
accounting reads behind Fig. 4's flat curves stay O(1).

Transactions span shards: one undo journal is shared by the wrapper and
every shard for the duration of the block, so a rollback unwinds
mutations across all shards in exact reverse order, exactly like the
single-store journal.

Sweeps cross shards too: an EER and the SegRs it rides may hash to
different shards, so each shard releases swept allocations through the
wrapper (see ``ReservationStore._release_router``), which routes them
to whichever shard holds the SegR.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, List, Optional, Tuple

from repro.errors import ReservationNotFound, StoreConflict
from repro.reservation.e2e import E2EReservation
from repro.reservation.ids import ReservationId
from repro.reservation.segment import SegmentReservation
from repro.reservation.store import ReservationStore
from repro.topology.addresses import IsdAs

#: Default shard count.  Small enough that an idle CServ pays a few
#: hundred bytes per empty shard, large enough to spread a
#: million-reservation store.
DEFAULT_SHARDS = 16


class _AllocView:
    """Read-only routing view over the shards' ``_eer_alloc`` maps.

    Pre-existing introspection (persistence dumps, the scenario
    consistency checker) indexes ``store._eer_alloc[segment_id]``; this
    view keeps that expression working against the sharded store.
    """

    __slots__ = ("_store",)

    def __init__(self, store: "ShardedReservationStore"):
        self._store = store

    def __getitem__(self, segment_id: ReservationId) -> dict:
        return self._store._shard_of(segment_id)._eer_alloc[segment_id]

    def __contains__(self, segment_id: ReservationId) -> bool:
        shard = self._store._shards[self._store._route[segment_id]] \
            if segment_id in self._store._route else None
        return shard is not None and segment_id in shard._eer_alloc

    def get(self, segment_id: ReservationId, default=None):
        try:
            return self[segment_id]
        except KeyError:
            return default


class ShardedReservationStore:
    """``ReservationStore`` interface over per-AS-pair shards."""

    def __init__(self, shards: int = DEFAULT_SHARDS):
        if shards <= 0:
            raise ValueError(f"shard count must be positive, got {shards}")
        self._shards: List[ReservationStore] = []
        for _ in range(shards):
            shard = ReservationStore()
            shard._release_router = self
            self._shards.append(shard)
        #: reservation id -> shard index; the single routing lookup.
        self._route: dict[ReservationId, int] = {}
        self._journal: Optional[list] = None

    # -- routing ----------------------------------------------------------------

    def _shard_index(self, a: IsdAs, b: IsdAs) -> int:
        # Plain int hashing: deterministic across processes (no string
        # hash randomization), so a reservation always lands in the same
        # shard — persistence round-trips and replays stay stable.
        return hash((a.isd, a.asn, b.isd, b.asn)) % len(self._shards)

    def _segment_shard(self, reservation: SegmentReservation) -> int:
        segment = reservation.segment
        return self._shard_index(segment.first_as, segment.last_as)

    def _eer_shard(self, reservation: E2EReservation) -> int:
        src = reservation.reservation_id.src_as
        dst = reservation.hops[-1].isd_as if reservation.hops else src
        return self._shard_index(src, dst)

    def _shard_of(self, res_id: ReservationId) -> ReservationStore:
        index = self._route.get(res_id)
        if index is None:
            raise ReservationNotFound(f"unknown SegR {res_id}")
        return self._shards[index]

    def shard_count(self) -> int:
        return len(self._shards)

    # -- transactions -----------------------------------------------------------

    @contextmanager
    def transaction(self):
        """One journal across every shard: commit or roll back together."""
        if self._journal is not None:
            raise StoreConflict("nested transactions are not supported")
        journal: list = []
        self._journal = journal
        for shard in self._shards:
            shard._journal = journal
        try:
            yield self
        except BaseException:
            for undo in reversed(journal):
                undo()
            raise
        finally:
            self._journal = None
            for shard in self._shards:
                shard._journal = None

    def _record(self, undo: Callable[[], None]) -> None:
        if self._journal is not None:
            self._journal.append(undo)

    # -- segment reservations ----------------------------------------------------

    def add_segment(self, reservation: SegmentReservation) -> None:
        res_id = reservation.reservation_id
        index = self._segment_shard(reservation)
        self._shards[index].add_segment(reservation)
        self._route[res_id] = index
        self._record(lambda: self._route.pop(res_id, None))

    def remove_segment(self, res_id: ReservationId) -> SegmentReservation:
        reservation = self._shard_of(res_id).remove_segment(res_id)
        self._unroute(res_id)
        return reservation

    def _unroute(self, res_id: ReservationId) -> None:
        index = self._route.pop(res_id)
        self._record(lambda: self._route.__setitem__(res_id, index))

    def get_segment(self, res_id: ReservationId) -> SegmentReservation:
        return self._shard_of(res_id).get_segment(res_id)

    def has_segment(self, res_id: ReservationId) -> bool:
        index = self._route.get(res_id)
        return index is not None and self._shards[index].has_segment(res_id)

    def segments(self) -> list:
        return [r for shard in self._shards for r in shard.segments()]

    def segment_count(self) -> int:
        return sum(shard.segment_count() for shard in self._shards)

    # -- end-to-end reservations ---------------------------------------------------

    def add_eer(self, reservation: E2EReservation) -> None:
        res_id = reservation.reservation_id
        index = self._eer_shard(reservation)
        self._shards[index].add_eer(reservation)
        self._route[res_id] = index
        self._record(lambda: self._route.pop(res_id, None))

    def remove_eer(self, res_id: ReservationId) -> E2EReservation:
        index = self._route.get(res_id)
        if index is None:
            raise ReservationNotFound(f"unknown EER {res_id}")
        reservation = self._shards[index].remove_eer(res_id)
        self._unroute(res_id)
        return reservation

    def get_eer(self, res_id: ReservationId) -> E2EReservation:
        index = self._route.get(res_id)
        if index is None:
            raise ReservationNotFound(f"unknown EER {res_id}")
        return self._shards[index].get_eer(res_id)

    def has_eer(self, res_id: ReservationId) -> bool:
        index = self._route.get(res_id)
        return index is not None and self._shards[index].has_eer(res_id)

    def eers(self) -> list:
        return [r for shard in self._shards for r in shard.eers()]

    def eer_count(self) -> int:
        return sum(shard.eer_count() for shard in self._shards)

    # -- expiry index ------------------------------------------------------------

    def touch(self, res_id: ReservationId) -> None:
        index = self._route.get(res_id)
        if index is not None:
            self._shards[index].touch(res_id)

    def eers_expiring_by(self, deadline: float) -> List[E2EReservation]:
        return [
            r for shard in self._shards for r in shard.eers_expiring_by(deadline)
        ]

    def segments_expiring_by(self, deadline: float) -> List[SegmentReservation]:
        return [
            r
            for shard in self._shards
            for r in shard.segments_expiring_by(deadline)
        ]

    # -- EER-on-SegR allocation accounting -----------------------------------------

    def allocate_on_segment(
        self, segment_id: ReservationId, eer_id: ReservationId, bandwidth: float
    ) -> None:
        self._shard_of(segment_id).allocate_on_segment(
            segment_id, eer_id, bandwidth
        )

    def release_on_segment(
        self, segment_id: ReservationId, eer_id: ReservationId
    ) -> None:
        index = self._route.get(segment_id)
        if index is None:
            return  # same tolerance as the flat store: nothing to release
        self._shards[index].release_on_segment(segment_id, eer_id)

    def allocated_on_segment(self, segment_id: ReservationId) -> float:
        return self._shard_of(segment_id).allocated_on_segment(segment_id)

    def eer_allocation(
        self, segment_id: ReservationId, eer_id: ReservationId
    ) -> float:
        return self._shard_of(segment_id).eer_allocation(segment_id, eer_id)

    @property
    def _eer_alloc(self) -> _AllocView:
        return _AllocView(self)

    # -- garbage collection -----------------------------------------------------------

    def sweep_expired(self, now: float) -> dict:
        counts, _, _ = self.sweep_expired_details(now)
        return counts

    def sweep_expired_details(
        self, now: float
    ) -> Tuple[dict, List[ReservationId], List[ReservationId]]:
        """Sweep every shard; aggregate counts and dead-id lists.

        Each shard only examines reservations its own expiry wheel says
        are due, so the aggregate cost is O(shards · log buckets + dead)
        — independent of the live population.
        """
        counts = {"eers": 0, "segments": 0}
        dead_eers: List[ReservationId] = []
        dead_segments: List[ReservationId] = []
        for shard in self._shards:
            shard_counts, shard_eers, shard_segments = (
                shard.sweep_expired_details(now)
            )
            counts["eers"] += shard_counts["eers"]
            counts["segments"] += shard_counts["segments"]
            dead_eers.extend(shard_eers)
            dead_segments.extend(shard_segments)
        for res_id in dead_eers:
            self._unroute(res_id)
        for res_id in dead_segments:
            self._unroute(res_id)
        return counts, dead_eers, dead_segments
