"""Segment-reservation state (§3.3, §4.2).

A SegR is an intermediate-term AS-to-AS reservation along one path
segment.  Version discipline is the part the paper is explicit about:

* only **one version is active** at any time;
* a renewal creates a **pending** version, which takes effect only when
  an explicit :class:`~repro.packets.control.SegActivationRequest`
  switches it in — "making this switch explicit allows ASes to precisely
  control the time to change to a new version and ensure that no
  over-allocation with EERs can occur" (§4.2).

Every on-path AS keeps its own :class:`SegmentReservation` record; the
object is the unit stored in each CServ's
:class:`~repro.reservation.store.ReservationStore`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from repro.errors import ReservationExpired, VersionError
from repro.reservation.ids import ReservationId
from repro.topology.segments import Segment


class VersionState(enum.Enum):
    PENDING = "pending"
    ACTIVE = "active"
    RETIRED = "retired"


@dataclass
class SegmentVersion:
    """One version of a SegR: bandwidth, expiry, and lifecycle state."""

    version: int
    bandwidth: float  # bits per second granted
    expiry: float  # absolute seconds
    state: VersionState = VersionState.PENDING

    def is_expired(self, now: float) -> bool:
        return now >= self.expiry


class SegmentReservation:
    """A SegR as stored by one AS, with version lifecycle management."""

    def __init__(
        self,
        reservation_id: ReservationId,
        segment: Segment,
        first_version: SegmentVersion,
    ):
        self.reservation_id = reservation_id
        self.segment = segment
        first_version.state = VersionState.ACTIVE
        self._versions: dict[int, SegmentVersion] = {first_version.version: first_version}
        self._active_version: int = first_version.version

    # -- views ----------------------------------------------------------------

    @property
    def active(self) -> SegmentVersion:
        return self._versions[self._active_version]

    @property
    def versions(self) -> dict:
        return dict(self._versions)

    def pending_versions(self) -> list:
        return [v for v in self._versions.values() if v.state is VersionState.PENDING]

    def is_expired(self, now: float) -> bool:
        """A SegR is dead when its active version has expired.

        Pending versions do not keep it alive: they cannot carry traffic
        until activated, and activation of an expired version is refused.
        """
        return self.active.is_expired(now)

    @property
    def bandwidth(self) -> float:
        """The currently active version's bandwidth."""
        return self.active.bandwidth

    @property
    def expiry(self) -> float:
        return self.active.expiry

    # -- lifecycle --------------------------------------------------------------

    def add_pending(self, version: SegmentVersion) -> None:
        """Record a renewal's new version as pending (§4.2)."""
        if version.version in self._versions:
            raise VersionError(
                f"SegR {self.reservation_id} already has version {version.version}"
            )
        if version.version <= max(self._versions):
            raise VersionError(
                f"new version {version.version} must exceed all existing versions "
                f"(max {max(self._versions)})"
            )
        version.state = VersionState.PENDING
        self._versions[version.version] = version

    def activate(self, version_number: int, now: float) -> SegmentVersion:
        """Switch the active version (explicit request, §4.2).

        The previously active version is retired immediately — at most one
        version can ever be active, so EER admission never double-counts.
        """
        version = self._versions.get(version_number)
        if version is None:
            raise VersionError(
                f"SegR {self.reservation_id} has no version {version_number}"
            )
        if version.state is not VersionState.PENDING:
            raise VersionError(
                f"version {version_number} is {version.state.value}, not pending"
            )
        if version.is_expired(now):
            raise ReservationExpired(
                f"version {version_number} of SegR {self.reservation_id} "
                f"expired at {version.expiry}"
            )
        self.active.state = VersionState.RETIRED
        version.state = VersionState.ACTIVE
        self._active_version = version_number
        return version

    def drop_pending(self, version_number: int) -> SegmentVersion:
        """Remove a pending version early — the abort path of a failed
        renewal whose response was lost (§3.3 cleanup).  Only pending
        versions can be dropped; the active one stays untouched."""
        version = self._versions.get(version_number)
        if version is None:
            raise VersionError(
                f"SegR {self.reservation_id} has no version {version_number}"
            )
        if version.state is not VersionState.PENDING:
            raise VersionError(
                f"version {version_number} is {version.state.value}, not pending"
            )
        return self._versions.pop(version_number)

    def prune(self, now: float) -> int:
        """Drop retired and expired-pending versions; returns count removed."""
        stale = [
            number
            for number, version in self._versions.items()
            if number != self._active_version
            and (version.state is VersionState.RETIRED or version.is_expired(now))
        ]
        for number in stale:
            del self._versions[number]
        return len(stale)

    def next_version_number(self) -> int:
        return max(self._versions) + 1

    def __repr__(self) -> str:
        return (
            f"SegmentReservation({self.reservation_id}, active=v{self._active_version}, "
            f"bw={self.bandwidth:.0f} bps, versions={sorted(self._versions)})"
        )
