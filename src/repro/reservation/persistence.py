"""Reservation-store persistence: survive a CServ restart.

The paper keeps reservations "in a transactional database" (§6.1), which
is durable across service restarts; the in-memory
:class:`~repro.reservation.store.ReservationStore` needs an explicit
snapshot for the same property.  :func:`dump_store` serializes one AS's
complete reservation state (SegRs with all versions and their lifecycle
states, EERs with all versions, EER-on-SegR allocations) to a plain
JSON-compatible dict; :func:`load_store` reconstructs an equivalent
store.

Secrets never appear here: HopAuths live in the *gateway*, tokens in the
initiator's CServ — the store holds only reservation metadata, so a
snapshot file is not key material (it still reveals traffic relations,
so treat it as confidential operational data).
"""

from __future__ import annotations

import json

from repro.errors import ColibriError
from repro.packets.fields import EerInfo
from repro.reservation.e2e import E2EReservation, E2EVersion
from repro.reservation.ids import ReservationId
from repro.reservation.segment import SegmentReservation, SegmentVersion, VersionState
from repro.reservation.store import ReservationStore
from repro.topology.addresses import HostAddr, IsdAs
from repro.topology.segments import HopField, Segment, SegmentType

FORMAT_VERSION = 1


# -- encoding helpers -------------------------------------------------------------


def _res_id(reservation_id: ReservationId) -> str:
    return f"{reservation_id.src_as}|{reservation_id.local_id}"


def _parse_res_id(text: str) -> ReservationId:
    as_text, _, local = text.rpartition("|")
    return ReservationId(IsdAs.parse(as_text), int(local))


def _hops(hops) -> list:
    return [
        {"as": str(hop.isd_as), "in": hop.ingress, "eg": hop.egress} for hop in hops
    ]


def _parse_hops(data: list) -> tuple:
    return tuple(
        HopField(
            isd_as=IsdAs.parse(entry["as"]),
            ingress=entry["in"],
            egress=entry["eg"],
        )
        for entry in data
    )


# -- dump ----------------------------------------------------------------------------


def dump_store(store: ReservationStore) -> dict:
    """Serialize a store to a JSON-compatible dict."""
    segments = []
    for reservation in store.segments():
        segments.append(
            {
                "id": _res_id(reservation.reservation_id),
                "type": reservation.segment.segment_type.value,
                "hops": _hops(reservation.segment.hops),
                "active": reservation.active.version,
                "versions": [
                    {
                        "version": version.version,
                        "bandwidth": version.bandwidth,
                        "expiry": version.expiry,
                        "state": version.state.value,
                    }
                    for version in reservation.versions.values()
                ],
                "allocations": {
                    _res_id(eer_id): bandwidth
                    for eer_id, bandwidth in store._eer_alloc[
                        reservation.reservation_id
                    ].items()
                },
            }
        )
    eers = []
    for reservation in store.eers():
        eers.append(
            {
                "id": _res_id(reservation.reservation_id),
                "src_host": reservation.eer_info.src_host.value,
                "dst_host": reservation.eer_info.dst_host.value,
                "hops": _hops(reservation.hops),
                "segments": [_res_id(sid) for sid in reservation.segment_ids],
                "versions": [
                    {
                        "version": version.version,
                        "bandwidth": version.bandwidth,
                        "expiry": version.expiry,
                    }
                    for version in reservation.versions.values()
                ],
            }
        )
    return {"format": FORMAT_VERSION, "segments": segments, "eers": eers}


def dumps_store(store: ReservationStore) -> str:
    """Serialize to a JSON string (what an operator writes to disk)."""
    return json.dumps(dump_store(store), sort_keys=True)


# -- load ----------------------------------------------------------------------------


def load_store(data: dict) -> ReservationStore:
    """Reconstruct a store from :func:`dump_store` output."""
    if data.get("format") != FORMAT_VERSION:
        raise ColibriError(
            f"unsupported store snapshot format {data.get('format')!r}"
        )
    store = ReservationStore()
    for entry in data["segments"]:
        versions = sorted(entry["versions"], key=lambda v: v["version"])
        first_spec = versions[0]
        reservation = SegmentReservation(
            reservation_id=_parse_res_id(entry["id"]),
            segment=Segment.from_hops(
                SegmentType(entry["type"]), _parse_hops(entry["hops"])
            ),
            first_version=SegmentVersion(
                version=first_spec["version"],
                bandwidth=first_spec["bandwidth"],
                expiry=first_spec["expiry"],
            ),
        )
        for spec in versions[1:]:
            reservation.add_pending(
                SegmentVersion(
                    version=spec["version"],
                    bandwidth=spec["bandwidth"],
                    expiry=spec["expiry"],
                )
            )
        # Restore lifecycle states exactly (activation order is gone, but
        # the end state is what admission reads).
        if entry["active"] != reservation.active.version:
            reservation._versions[reservation.active.version].state = (
                VersionState.RETIRED
            )
            target = reservation._versions[entry["active"]]
            target.state = VersionState.ACTIVE
            reservation._active_version = entry["active"]
        by_number = {spec["version"]: spec for spec in versions}
        for number, version in reservation._versions.items():
            version.state = VersionState(by_number[number]["state"])
        store.add_segment(reservation)
    for entry in data["eers"]:
        versions = sorted(entry["versions"], key=lambda v: v["version"])
        first_spec = versions[0]
        reservation = E2EReservation(
            reservation_id=_parse_res_id(entry["id"]),
            eer_info=EerInfo(
                src_host=HostAddr(entry["src_host"]),
                dst_host=HostAddr(entry["dst_host"]),
            ),
            hops=_parse_hops(entry["hops"]),
            segment_ids=tuple(_parse_res_id(sid) for sid in entry["segments"]),
            first_version=E2EVersion(
                version=first_spec["version"],
                bandwidth=first_spec["bandwidth"],
                expiry=first_spec["expiry"],
            ),
        )
        for spec in versions[1:]:
            reservation.add_version(
                E2EVersion(
                    version=spec["version"],
                    bandwidth=spec["bandwidth"],
                    expiry=spec["expiry"],
                )
            )
        store.add_eer(reservation)
    # Allocations last: every referenced SegR now exists.
    for entry in data["segments"]:
        segment_id = _parse_res_id(entry["id"])
        for eer_text, bandwidth in entry["allocations"].items():
            store.allocate_on_segment(segment_id, _parse_res_id(eer_text), bandwidth)
    return store


def loads_store(text: str) -> ReservationStore:
    return load_store(json.loads(text))


# -- gateway snapshots ------------------------------------------------------------
#
# The gateway's table is the other half of a source AS's durable state:
# Path, EERInfo and the per-version HopAuths (Eq. 5 secrets).  Unlike the
# store snapshot this one IS key material — a holder can stamp valid
# packets for the contained reservations until they expire — so treat a
# gateway snapshot like a key file.


def dump_gateway(gateway) -> dict:
    """Serialize a gateway's reservation table (HopAuths base64'd)."""
    import base64

    entries = []
    for reservation_id, entry in gateway._reservations.items():
        entries.append(
            {
                "id": _res_id(reservation_id),
                "path": list(entry.path.interface_pairs),
                "src_host": entry.eer_info.src_host.value,
                "dst_host": entry.eer_info.dst_host.value,
                "versions": [
                    {
                        "bandwidth": version.res_info.bandwidth,
                        "expiry": version.res_info.expiry,
                        "version": version.res_info.version,
                        "hop_auths": [
                            base64.b64encode(sigma).decode("ascii")
                            for sigma in version.hop_auths
                        ],
                    }
                    for version in entry.versions.values()
                ],
            }
        )
    return {"format": FORMAT_VERSION, "reservations": entries}


def load_gateway(gateway, data: dict) -> int:
    """Re-install a snapshot into a (fresh) gateway; returns the number
    of reservations restored."""
    import base64

    from repro.packets.fields import PathField

    if data.get("format") != FORMAT_VERSION:
        raise ColibriError(
            f"unsupported gateway snapshot format {data.get('format')!r}"
        )
    restored = 0
    for entry in data["reservations"]:
        reservation_id = _parse_res_id(entry["id"])
        path = PathField(tuple(tuple(pair) for pair in entry["path"]))
        eer_info = EerInfo(
            src_host=HostAddr(entry["src_host"]),
            dst_host=HostAddr(entry["dst_host"]),
        )
        for spec in sorted(entry["versions"], key=lambda v: v["version"]):
            from repro.packets.fields import ResInfo

            gateway.install(
                reservation_id,
                path,
                eer_info,
                ResInfo(
                    reservation=reservation_id,
                    bandwidth=spec["bandwidth"],
                    expiry=spec["expiry"],
                    version=spec["version"],
                ),
                tuple(
                    base64.b64decode(sigma) for sigma in spec["hop_auths"]
                ),
            )
        restored += 1
    return restored
