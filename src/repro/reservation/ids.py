"""Global reservation identifiers (§4.3).

A reservation ID is unique *per source AS*: the CServ increments a counter
for every new SegR or EER, so the pair ``(SrcAS, ResId)`` identifies every
reservation globally.  That global uniqueness is load-bearing: it is what
lets SegR tokens omit the "chaining" of per-AS forwarding information
that SCION and EPIC need to prevent path splicing (§4.5), and it is the
flow label the overuse detector keys on (§4.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.topology.addresses import IsdAs


@dataclass(frozen=True, order=True)
class ReservationId:
    """The globally unique pair ``(SrcAS, ResId)``."""

    src_as: IsdAs
    local_id: int

    def __post_init__(self):
        if not 0 <= self.local_id < (1 << 32):
            raise ValueError(f"local reservation ID {self.local_id} out of range [0, 2^32)")
        # Immutable value object: precompute the hash once.  The gateway
        # keys its reservation table on ReservationId, so the generated
        # hash (tuple build + nested IsdAs hash) would otherwise run on
        # every data packet.
        object.__setattr__(self, "_hash", hash((self.src_as, self.local_id)))

    def __hash__(self) -> int:
        return self._hash

    @cached_property
    def packed(self) -> bytes:
        """12-byte wire form: 8 bytes SrcAS + 4 bytes counter.

        Cached: the wire form is the flow label (§4.8), the σ-cache key
        component, and the replay identifier prefix, so the router reads
        it several times per data packet.  (``cached_property`` writes
        the instance ``__dict__`` directly, which is legal on a frozen
        dataclass — immutability of the *fields* is unaffected.)
        """
        return self.src_as.packed + self.local_id.to_bytes(4, "big")

    @classmethod
    def unpack(cls, data: bytes) -> "ReservationId":
        if len(data) != 12:
            raise ValueError(f"reservation ID wire form must be 12 bytes, got {len(data)}")
        return cls(
            src_as=IsdAs.unpack(data[:8]),
            local_id=int.from_bytes(data[8:], "big"),
        )

    def __str__(self) -> str:
        return f"{self.src_as}:{self.local_id}"
