"""The end-host networking stack (§3.2).

"Colibri modifies the SCIONDaemon to enable an application to explicitly
request and renew EERs."  :class:`EndHost` is that daemon-side view: it
talks to the local CServ for reservations and to the local gateway for
sending.  :class:`ColibriSocket` is the application-facing handle over
one EER — request, send, renew, and an optional pace-to-reservation mode
("in QUIC, it is straightforward to disable congestion control and set
the sending rate to the reserved bandwidth", §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.control.renewal import RenewalScheduler
from repro.errors import BandwidthExceeded, ColibriError
from repro.sim.scenario import ColibriNetwork, DeliveryReport
from repro.topology.addresses import HostAddr, IsdAs


@dataclass
class SendStats:
    packets: int = 0
    delivered: int = 0
    gateway_drops: int = 0
    network_drops: int = 0
    bytes_delivered: int = 0

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.packets if self.packets else 0.0


class ColibriSocket:
    """An application handle over one EER."""

    def __init__(self, host: "EndHost", handle, auto_renew: bool):
        self._host = host
        self._handle = handle
        self._scheduler: Optional[RenewalScheduler] = None
        if auto_renew:
            self._scheduler = RenewalScheduler(host.cserv)
            self._scheduler.track_eer(handle)
        self.stats = SendStats()

    @property
    def handle(self):
        if self._scheduler is not None:
            return self._scheduler.eer_handle(self._handle.reservation_id)
        return self._handle

    @property
    def reserved_bandwidth(self) -> float:
        return self.handle.res_info.bandwidth

    def send(self, payload: bytes) -> DeliveryReport:
        """Send one datagram over the reservation.

        Gateway drops (rate exceeded, expired) raise; network verdicts are
        reported and counted either way.
        """
        self._maybe_renew()
        self.stats.packets += 1
        try:
            report = self._host.network.send(
                self._host.isd_as, self.handle, payload
            )
        except ColibriError:
            self.stats.gateway_drops += 1
            raise
        if report.delivered:
            self.stats.delivered += 1
            self.stats.bytes_delivered += len(payload)
        else:
            self.stats.network_drops += 1
        return report

    def send_paced(self, total_bytes: int, packet_bytes: int, tick: float = 0.001) -> SendStats:
        """Stream ``total_bytes`` of payload at the reserved *wire* rate.

        The tight transport integration of §3.2: no congestion control,
        the sending rate IS the reservation.  Budgeting uses the actual
        on-wire packet size (header included — what the token bucket and
        the monitors charge, Eq. 6), so a correctly paced stream never
        trips its own gateway monitor.  Advances the simulation clock.
        """
        budget_bits = 0.0
        header_bits = 0  # learned from the first packet actually sent
        sent = 0
        while sent < total_bytes:
            budget_bits += self.reserved_bandwidth * tick
            while sent < total_bytes:
                chunk = min(packet_bytes, total_bytes - sent)
                if chunk * 8 + header_bits > budget_bits:
                    break
                try:
                    report = self.send(b"\x00" * chunk)
                except BandwidthExceeded:
                    break  # renewal boundary hiccup; retry next tick
                wire_bits = report.packet.total_size * 8
                header_bits = wire_bits - chunk * 8
                budget_bits -= wire_bits
                sent += chunk
            self._host.network.advance(tick)
            self._maybe_renew()
        return self.stats

    def renew(self, new_bandwidth: float = None):
        """Explicit renewal (applications may also rely on auto-renew)."""
        renewed = self._host.cserv.renew_eer(self.handle, new_bandwidth)
        self._handle = renewed
        if self._scheduler is not None:
            self._scheduler.track_eer(renewed)
        return renewed

    def _maybe_renew(self) -> None:
        if self._scheduler is not None:
            self._scheduler.tick()


class EndHost:
    """One end host inside an AS, bound to its CServ and gateway.

    At construction the host receives its provisioned key (footnote 2 of
    the paper: a host-specific key below the AS-level DRKey) — the
    subscription-time credential it uses to authenticate every request
    towards its own CServ.
    """

    def __init__(self, network: ColibriNetwork, isd_as: IsdAs, address: HostAddr):
        self.network = network
        self.isd_as = isd_as
        self.address = address
        self.cserv = network.cserv(isd_as)
        self.gateway = network.gateway(isd_as)
        self._host_key = self.cserv.provision_host_key(address)

    def connect(
        self,
        destination: IsdAs,
        destination_host: HostAddr,
        bandwidth: float,
        auto_renew: bool = True,
    ) -> ColibriSocket:
        """Request an EER to a remote host and wrap it in a socket.

        The request is MAC'd under the host's provisioned key, so the
        CServ can attribute it with certainty before applying per-host
        policy.  Raises :class:`~repro.errors.NoPathError` when no SegR
        chain exists yet (the ASes involved must reserve segments first)
        and :class:`~repro.errors.InsufficientBandwidth` when admission
        denies the request.
        """
        from repro.crypto.mac import mac

        payload = self.cserv._host_request_bytes(
            self.address, destination, destination_host, bandwidth
        )
        handle = self.cserv.request_eer(
            self.address,
            destination,
            destination_host,
            bandwidth,
            tag=mac(self._host_key, payload),
        )
        return ColibriSocket(self, handle, auto_renew=auto_renew)

    def estimate_bandwidth_for(self, bitrate: float, headroom: float = 1.1) -> float:
        """Heuristic from §3.3: base the request on expected traffic
        (e.g. a video stream's known bitrate) plus protocol headroom."""
        if bitrate <= 0:
            raise ValueError(f"bitrate must be positive, got {bitrate}")
        return bitrate * headroom


def establish_bidirectional(
    network: ColibriNetwork,
    host_a: "EndHost",
    host_b: "EndHost",
    bandwidth_ab: float,
    bandwidth_ba: float = None,
    auto_renew: bool = True,
):
    """A socket pair for two-way guaranteed traffic.

    Reservations are strictly unidirectional (§3.3: "some ASes mainly
    send traffic […] others predominantly receive") — small replies
    normally ride best effort.  When both directions carry real volume
    (VoIP, interactive video), each side opens its own EER; this helper
    pairs them.  Asymmetric sizing is the common case, e.g. a thin
    uplink against a fat downlink.

    Requires SegR chains in *both* directions.  Returns
    ``(socket_ab, socket_ba)``.
    """
    if bandwidth_ba is None:
        bandwidth_ba = bandwidth_ab
    socket_ab = host_a.connect(
        host_b.isd_as, host_b.address, bandwidth_ab, auto_renew=auto_renew
    )
    try:
        socket_ba = host_b.connect(
            host_a.isd_as, host_a.address, bandwidth_ba, auto_renew=auto_renew
        )
    except ColibriError:
        # The forward EER simply expires (§4.2: no early removal), but
        # uninstalling at the gateway stops traffic immediately.
        host_a.gateway.uninstall(socket_ab.handle.reservation_id)
        raise
    return socket_ab, socket_ba
