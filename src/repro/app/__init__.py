"""End-host-facing layer: the host networking stack and high-level API."""

from repro.app.api import quick_network, reserve_and_send
from repro.app.host import ColibriSocket, EndHost, establish_bidirectional

__all__ = [
    "EndHost",
    "ColibriSocket",
    "quick_network",
    "reserve_and_send",
    "establish_bidirectional",
]
