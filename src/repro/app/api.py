"""One-call convenience helpers over the full stack.

For notebooks, examples and quick experiments: build a network, reserve,
send — three lines.  Production users compose the underlying pieces
directly (see README architecture section).
"""

from __future__ import annotations

from typing import Optional

from repro.app.host import EndHost, SendStats
from repro.sim.scenario import ColibriNetwork
from repro.topology.addresses import HostAddr, IsdAs
from repro.topology.generator import build_two_isd_topology
from repro.util.units import mbps


def quick_network() -> ColibriNetwork:
    """A ready-to-use two-ISD Colibri deployment (the Fig. 1 shape)."""
    return ColibriNetwork(build_two_isd_topology())


def reserve_and_send(
    network: ColibriNetwork,
    source: IsdAs,
    destination: IsdAs,
    bandwidth: float = mbps(10),
    payload: bytes = b"hello colibri",
    segment_bandwidth: Optional[float] = None,
) -> SendStats:
    """End-to-end happy path: SegRs -> EER -> one data packet.

    Returns the socket's send statistics; raises the library's typed
    errors on any failure, so callers see exactly which stage refused.
    """
    if segment_bandwidth is None:
        segment_bandwidth = bandwidth * 10
    network.reserve_segments(source, destination, segment_bandwidth)
    host = EndHost(network, source, HostAddr(1))
    socket = host.connect(destination, HostAddr(2), bandwidth)
    socket.send(payload)
    return socket.stats
