"""Retry, backoff, and circuit-breaking for control-plane calls (§3.3, §4.2).

The paper's control plane must survive churn: "in case of an
unsuccessful request, the ASes clean up their temporary reservations"
(§3.3), and renewals have to land inside their lead window even when
individual calls fail (§4.2).  This module supplies the client-side half
of that robustness:

* :class:`RetryPolicy` — capped exponential backoff with deterministic
  (seeded) jitter and a per-call virtual-latency budget;
* :class:`PolicyTable` — maps control-plane methods to timeout classes
  (setup, renewal, cleanup, query);
* :class:`CircuitBreaker` — per-destination fail-fast once an AS looks
  persistently dead, with clock-injected half-open probing;
* :class:`RetryingCaller` — ties the three together around a
  :class:`~repro.control.rpc.MessageBus`;
* :class:`IdempotencyCache` — the server-side complement: handlers
  remember successful responses by request identity so a retry after a
  *lost response* replays the answer instead of double-admitting.

Everything is deterministic: jitter comes from one ``random.Random``
seeded from the owning AS, delays are virtual (reported via an optional
``sleeper`` hook, never ``time.sleep``), and the breaker reads an
injected :class:`~repro.util.clock.Clock`.
"""

from __future__ import annotations

import functools
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.constants import (
    CALL_TIMEOUT_QUERY,
    CALL_TIMEOUT_SETUP,
    CIRCUIT_FAILURE_THRESHOLD,
    CIRCUIT_RESET_TIMEOUT,
    CLEANUP_MAX_ATTEMPTS,
    IDEMPOTENCY_MAX_ENTRIES,
    IDEMPOTENCY_TTL,
    RETRY_BASE_DELAY,
    RETRY_MAX_ATTEMPTS,
    RETRY_MAX_DELAY,
    RETRY_MULTIPLIER,
)
from repro.errors import CircuitOpen, RetriesExhausted, TransportError
from repro.obs.distributed import TraceContext
from repro.obs.events import BREAKER_TRANSITION
from repro.topology.addresses import IsdAs
from repro.util.clock import Clock


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget, backoff shape, and latency budget for one class
    of control-plane call."""

    max_attempts: int = RETRY_MAX_ATTEMPTS
    base_delay: float = RETRY_BASE_DELAY
    max_delay: float = RETRY_MAX_DELAY
    multiplier: float = RETRY_MULTIPLIER
    timeout: Optional[float] = CALL_TIMEOUT_SETUP
    #: Cleanup calls set this False: an abort towards a flaky AS is
    #: exactly the call a tripped breaker must not refuse (§3.3).
    use_breaker: bool = True

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based): capped
        exponential with half-width deterministic jitter, so concurrent
        retriers decorrelate without losing replayability."""
        ceiling = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        return ceiling / 2 + rng.uniform(0.0, ceiling / 2)


#: The four timeout classes of the control plane.  Setups and renewals
#: traverse whole paths; cleanup gets double the attempts because a
#: failed cleanup leaves residual allocations (§3.3); queries are
#: single-hop and cheap to re-issue (Appendix C).
SETUP_POLICY = RetryPolicy()
RENEWAL_POLICY = RetryPolicy()
CLEANUP_POLICY = RetryPolicy(max_attempts=CLEANUP_MAX_ATTEMPTS, use_breaker=False)
QUERY_POLICY = RetryPolicy(max_attempts=2, timeout=CALL_TIMEOUT_QUERY)

_DEFAULT_CLASSES = {
    "handle_seg_setup": SETUP_POLICY,
    "handle_eer_setup": SETUP_POLICY,
    "handle_seg_renewal": RENEWAL_POLICY,
    "handle_eer_renewal": RENEWAL_POLICY,
    "handle_seg_activation": RENEWAL_POLICY,
    "handle_seg_teardown": CLEANUP_POLICY,
    "handle_seg_abort": CLEANUP_POLICY,
    "handle_eer_abort": CLEANUP_POLICY,
    "query_registry": QUERY_POLICY,
}


class PolicyTable:
    """Per-method retry policies with a fallback default."""

    def __init__(
        self,
        overrides: Optional[dict] = None,
        default: RetryPolicy = SETUP_POLICY,
    ):
        self._policies = dict(_DEFAULT_CLASSES)
        if overrides:
            self._policies.update(overrides)
        self._default = default

    def for_method(self, method: str) -> RetryPolicy:
        return self._policies.get(method, self._default)


class CircuitBreaker:
    """Fail-fast gate for one destination AS.

    Closed -> open after ``failure_threshold`` consecutive transport
    failures; open -> half-open once ``reset_timeout`` (injected clock)
    has passed, letting exactly one probe through; the probe's outcome
    closes or re-opens the circuit.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        clock: Clock,
        failure_threshold: int = CIRCUIT_FAILURE_THRESHOLD,
        reset_timeout: float = CIRCUIT_RESET_TIMEOUT,
    ):
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self.fast_failures = 0
        #: Called as ``observer(old_state, new_state)`` on every state
        #: change; the retry layer points it at the trace collector.
        self.observer: Optional[Callable[[str, str], None]] = None

    def _transition(self, new_state: str) -> None:
        if new_state == self.state:
            return
        old_state, self.state = self.state, new_state
        if self.observer is not None:
            self.observer(old_state, new_state)

    def allow(self) -> None:
        """Raise :class:`CircuitOpen` unless a call may proceed."""
        if self.state == self.CLOSED:
            return
        if self.state == self.OPEN:
            if self.clock.now() - self._opened_at >= self.reset_timeout:
                self._transition(self.HALF_OPEN)  # one probe allowed
                return
            self.fast_failures += 1
            raise CircuitOpen(
                f"circuit open since t={self._opened_at:.3f}; "
                f"probing again after {self.reset_timeout}s"
            )
        # HALF_OPEN: the single probe is already in flight conceptually,
        # but the synchronous bus serializes calls, so let it through.

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._transition(self.CLOSED)
        self._opened_at = None

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if (
            self.state == self.HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        ):
            self._opened_at = self.clock.now()
            self._transition(self.OPEN)


@dataclass
class CallStats:
    """Counters a :class:`RetryingCaller` keeps for observability."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    gave_up: int = 0
    fast_failed: int = 0
    backoff_total: float = 0.0
    by_method: dict = field(default_factory=dict)


class RetryingCaller:
    """Executes bus calls under a retry policy with circuit breaking.

    Only :class:`~repro.errors.TransportError` is retried — admission
    denials, MAC failures, and protocol errors are authoritative answers
    and propagate immediately.  Backoff delays are *virtual*: they are
    accumulated in :attr:`stats` and reported to the optional ``sleeper``
    hook (a simulation can advance its clock there); the caller never
    sleeps the wall clock.
    """

    def __init__(
        self,
        bus,
        clock: Clock,
        source: IsdAs,
        policies: Optional[PolicyTable] = None,
        seed: Optional[int] = None,
        sleeper: Optional[Callable[[float], None]] = None,
        failure_threshold: int = CIRCUIT_FAILURE_THRESHOLD,
        reset_timeout: float = CIRCUIT_RESET_TIMEOUT,
    ):
        self.bus = bus
        self.clock = clock
        self.source = source
        self.policies = policies or PolicyTable()
        if seed is None:
            # Deterministic per-AS seed: replays never depend on hash
            # randomization or interpreter state.
            seed = int.from_bytes(source.packed, "big")
        self._rng = random.Random(seed)
        self.sleeper = sleeper
        self._failure_threshold = failure_threshold
        self._reset_timeout = reset_timeout
        self._breakers: dict[IsdAs, CircuitBreaker] = {}
        self.stats = CallStats()
        #: Optional :class:`repro.obs.ObsContext`; when set, each logical
        #: call records a ``retry.call`` span (attempt count attached),
        #: observes the ``retry_attempts`` histogram, and breaker state
        #: changes become ``breaker.transition`` events.
        self.obs = None

    def breaker(self, isd_as: IsdAs) -> CircuitBreaker:
        breaker = self._breakers.get(isd_as)
        if breaker is None:
            breaker = CircuitBreaker(
                self.clock, self._failure_threshold, self._reset_timeout
            )
            breaker.observer = functools.partial(self._breaker_transition, isd_as)
            self._breakers[isd_as] = breaker
        return breaker

    def _breaker_transition(self, isd_as: IsdAs, old: str, new: str) -> None:
        obs = self.obs
        if obs is not None:
            obs.tracer.event(
                "breaker.transition", dest=str(isd_as), old=old, new=new
            )
            if obs.journal is not None:
                obs.journal.record(
                    BREAKER_TRANSITION,
                    isd_as=str(self.source),
                    dest=str(isd_as),
                    old=old,
                    new=new,
                )

    def open_breakers(self) -> int:
        """Breakers currently not CLOSED — feeds the
        ``circuit_breakers_open`` registry gauge."""
        return sum(
            1
            for breaker in self._breakers.values()
            if breaker.state != CircuitBreaker.CLOSED
        )

    def call(self, isd_as: IsdAs, method: str, *args, **kwargs):
        obs = self.obs
        if obs is None:
            return self._call(isd_as, method, args, kwargs)
        tracer = obs.tracer
        span = tracer.start("retry.call", {"method": method, "dest": str(isd_as)})
        # One context per *logical* call, derived from the retry.call
        # span: every attempt frames the same parent, so a retried
        # fan-out stitches into one tree instead of one per attempt.
        trace = TraceContext.from_span(span) if span is not None else None
        attempts_before = self.stats.attempts
        try:
            result = self._call(isd_as, method, args, kwargs, trace=trace)
        except BaseException as error:
            attempts = self.stats.attempts - attempts_before
            obs.metrics.histogram("retry_attempts").observe(attempts)
            tracer.finish(
                span,
                status="error",
                error=type(error).__name__,
                attempts=attempts,
            )
            raise
        attempts = self.stats.attempts - attempts_before
        obs.metrics.histogram("retry_attempts").observe(attempts)
        tracer.finish(span, attempts=attempts)
        return result

    def _call(
        self,
        isd_as: IsdAs,
        method: str,
        args: tuple,
        kwargs: dict,
        trace: Optional[TraceContext] = None,
    ):
        policy = self.policies.for_method(method)
        breaker = self.breaker(isd_as)
        self.stats.calls += 1
        self.stats.by_method[method] = self.stats.by_method.get(method, 0) + 1
        last_error: Optional[TransportError] = None
        for attempt in range(policy.max_attempts):
            if policy.use_breaker:
                try:
                    breaker.allow()  # raises CircuitOpen: the AS looks dead
                except CircuitOpen:
                    self.stats.fast_failed += 1
                    raise
            self.stats.attempts += 1
            try:
                result = self.bus.call(
                    isd_as,
                    method,
                    *args,
                    caller=self.source,
                    timeout=policy.timeout,
                    trace=trace,
                    **kwargs,
                )
            except (RetriesExhausted, CircuitOpen):
                # A hop further down the path already gave up (or fast-
                # failed).  This link is not at fault: retrying here would
                # replay the downstream storm 4x per upstream hop, and
                # recording a failure would charge this breaker for a
                # loss on someone else's link.  Propagate as-is.
                raise
            except TransportError as error:
                if policy.use_breaker:
                    breaker.record_failure()
                last_error = error
                if attempt + 1 >= policy.max_attempts:
                    break
                delay = policy.delay(attempt, self._rng)
                self.stats.retries += 1
                self.stats.backoff_total += delay
                if self.sleeper is not None:
                    self.sleeper(delay)
                continue
            breaker.record_success()
            return result
        self.stats.gave_up += 1
        raise RetriesExhausted(
            f"{policy.max_attempts} attempts of {method!r} to AS {isd_as} "
            f"all failed; last error: {last_error}"
        ) from last_error


class IdempotencyCache:
    """Remembered successful responses, keyed by request identity.

    A lost *response* means the handler committed state the caller never
    saw; when the caller retries, the handler must replay the remembered
    answer instead of admitting the bandwidth twice (§3.3).  Entries
    carry a TTL against the injected clock and the cache is size-bounded
    (oldest-first eviction) so a busy CServ cannot be ballooned by
    request-ID churn (§5.3).
    """

    def __init__(
        self,
        clock: Clock,
        ttl: float = IDEMPOTENCY_TTL,
        max_entries: int = IDEMPOTENCY_MAX_ENTRIES,
    ):
        self.clock = clock
        self.ttl = ttl
        self.max_entries = max_entries
        self._entries: dict = {}  # key -> (response, stored_at); insertion-ordered
        self.hits = 0
        self.misses = 0

    def get(self, key):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        response, stored_at = entry
        if self.clock.now() - stored_at > self.ttl:
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return response

    def put(self, key, response) -> None:
        now = self.clock.now()
        self._entries.pop(key, None)
        self._entries[key] = (response, now)
        while len(self._entries) > self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]

    def invalidate(self, predicate: Callable) -> int:
        """Drop entries whose key matches ``predicate`` (e.g. after an
        abort, so a stale cached success cannot resurrect state)."""
        stale = [key for key in self._entries if predicate(key)]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def __len__(self) -> int:
        return len(self._entries)
