"""The Colibri service (CServ) — one per AS (§3.2, §3.3, §4.4).

The CServ handles every control-plane task of its AS:

* initiating SegR setups, renewals and activations for the AS's expected
  traffic, and serving as on-path grantor for other ASes' requests;
* initiating EER setups and renewals on behalf of local end hosts, and
  deciding EER admission in its on-path roles (§4.7);
* registering and disseminating SegRs with hierarchical caching
  (Appendix C);
* defending itself: DRKey authentication of every request, per-source-AS
  rate limiting, per-EER renewal limiting, and the punitive denial of
  reservations from ASes caught overusing (§4.8, §5.3).

Requests travel hop by hop: the initiator processes itself as AS0, then
each AS forwards over the :class:`~repro.control.rpc.MessageBus` to the
next; responses unwind along the reverse path, exactly the ➋/➌/➍
choreography of Fig. 1.  Grants are evaluated on the forward pass and
committed on the (successful) unwind, so a failed setup leaves no
temporary reservations behind (§3.3).

Fault tolerance (§3.3, docs/robustness.md): every forwarded call goes
through a :class:`~repro.control.retry.RetryingCaller` (capped
exponential backoff, per-method latency budgets, per-destination circuit
breaker).  Handlers are retry-safe: successful responses are remembered
in an :class:`~repro.control.retry.IdempotencyCache` keyed by request
identity, so a retry after a *lost response* replays the answer instead
of double-admitting bandwidth.  When retries are exhausted the transport
error propagates back to the initiator, which aborts the whole path —
explicitly releasing whatever the hops beyond the loss point already
committed — before re-raising.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.admission.eer_admission import AsRole, EerAdmission
from repro.admission.policy import AdmissionPolicy
from repro.admission.traffic_matrix import TrafficMatrix
from repro.admission.tube_fairness import SegmentAdmission, SegmentGrant
from repro.constants import (
    EER_LIFETIME,
    EER_RENEWAL_MIN_INTERVAL,
    SEGR_LIFETIME,
)
from repro.control.auth import AuthenticatedRequest
from repro.control.dissemination import (
    REMOTE_CACHE_TTL,
    RemoteQueryClient,
    SegmentDescriptor,
    SegmentRegistry,
)
from repro.control.rate_limit import RateLimiter
from repro.control.retry import IdempotencyCache, PolicyTable, RetryingCaller
from repro.control.rpc import MessageBus
from repro.crypto.aead import aead_open, aead_seal
from repro.crypto.keyserver import KeyServerDirectory
from repro.dataplane.gateway import ColibriGateway
from repro.dataplane.hvf import ColibriKeys, hop_authenticator, segment_token
from repro.errors import (
    AdmissionDenied,
    ColibriError,
    InsufficientBandwidth,
    NoPathError,
    PolicyDenied,
    ReservationExpired,
    ReservationNotFound,
    TransportError,
    VersionError,
)
from repro.obs.events import (
    ADMISSION_DECIDED,
    RESERVATION_RENEWED,
    RESERVATION_TORN_DOWN,
    STORE_SWEPT,
    emit,
)
from repro.obs.trace import traced
from repro.packets.control import (
    SEGMENT_TYPE_CODES,
    AsGrant,
    EerAbortNotice,
    EerRenewalRequest,
    EerSetupRequest,
    EerSetupResponse,
    SegAbortNotice,
    SegActivationRequest,
    SegRenewalRequest,
    SegSetupRequest,
    SegSetupResponse,
    SegTeardownNotice,
)
from repro.packets.fields import EerInfo, PathField, ResInfo
from repro.reservation.e2e import E2EReservation, E2EVersion
from repro.reservation.ids import ReservationId
from repro.reservation.segment import SegmentReservation, SegmentVersion
from repro.reservation.sharded import ShardedReservationStore
from repro.topology.addresses import HostAddr, IsdAs
from repro.topology.graph import ASNode, Topology
from repro.topology.paths import combine_segments
from repro.topology.segments import Segment, SegmentType
from repro.util.clock import Clock
from repro.util.sequence import SequenceAllocator

#: Default per-source-AS request rate at the CServ (§5.3).
DEFAULT_REQUEST_RATE = 1000.0

_SEGMENT_TYPE_TO_CODE = {
    SegmentType.UP: SEGMENT_TYPE_CODES["up"],
    SegmentType.DOWN: SEGMENT_TYPE_CODES["down"],
    SegmentType.CORE: SEGMENT_TYPE_CODES["core"],
}
_CODE_TO_SEGMENT_TYPE = {code: st for st, code in _SEGMENT_TYPE_TO_CODE.items()}


@dataclass
class EerHandle:
    """What the initiating CServ returns to the end host after EER setup."""

    reservation_id: ReservationId
    res_info: ResInfo
    eer_info: EerInfo
    hops: tuple
    segment_ids: tuple
    granted: float


def _workflow(name: str) -> Callable:
    """Trace an initiator-side admission workflow and observe its
    wall-clock duration into ``admission_latency_seconds`` (§6.1 measures
    setup latency end to end, so the timer covers the whole path walk,
    retries and backoff included).  No-ops unless ``self.obs`` is set."""

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            obs = self.obs
            if obs is None:
                return fn(self, *args, **kwargs)
            span = obs.tracer.start(name, {"initiator": str(self.isd_as)})
            begin = obs.perf.now()
            try:
                result = fn(self, *args, **kwargs)
            except BaseException as error:
                obs.metrics.histogram("admission_latency_seconds").observe(
                    obs.perf.now() - begin
                )
                obs.tracer.finish(
                    span, status="error", error=type(error).__name__
                )
                raise
            obs.metrics.histogram("admission_latency_seconds").observe(
                obs.perf.now() - begin
            )
            obs.tracer.finish(span)
            return result

        wrapper.__wrapped__ = fn
        return wrapper

    return decorate


class ColibriService:
    """The per-AS Colibri control-plane service."""

    def __init__(
        self,
        node: ASNode,
        clock: Clock,
        keys: ColibriKeys,
        directory: KeyServerDirectory,
        bus: MessageBus,
        topology: Optional[Topology] = None,
        gateway: Optional[ColibriGateway] = None,
        source_policy: Optional[AdmissionPolicy] = None,
        destination_policy: Optional[AdmissionPolicy] = None,
        host_acceptor: Optional[Callable] = None,
        request_rate: float = DEFAULT_REQUEST_RATE,
        retry_policies: Optional[PolicyTable] = None,
        retry_sleeper: Optional[Callable[[float], None]] = None,
    ):
        self.node = node
        self.isd_as = node.isd_as
        self.clock = clock
        self.keys = keys
        self.directory = directory
        self.bus = bus
        self.topology = topology
        self.gateway = gateway
        #: Client-side fault tolerance: retries with backoff, latency
        #: budgets, and per-destination circuit breaking (§3.3, §4.2).
        self.caller = RetryingCaller(
            bus,
            clock,
            self.isd_as,
            policies=retry_policies,
            sleeper=retry_sleeper,
        )
        #: Server-side retry safety: successful setup/renewal responses
        #: by request identity, replayed when a lost response is retried.
        self.idempotency = IdempotencyCache(clock)

        #: Per-AS-pair sharded store behind the flat-store interface:
        #: the million-reservation target needs sweep and accounting
        #: costs bounded by the *affected* reservations, never the
        #: population (ROADMAP; SIBRA's steady/ephemeral split).
        self.store = ShardedReservationStore()
        self.matrix = TrafficMatrix(node)
        self.seg_admission = SegmentAdmission(self.matrix)
        self.eer_admission = EerAdmission(
            self.isd_as, self.store, source_policy, destination_policy
        )
        self.registry = SegmentRegistry()
        self.remote_client = RemoteQueryClient(
            self.caller, self.registry, clock, self.isd_as
        )
        self._ids = SequenceAllocator()
        self._segment_tokens: dict[ReservationId, tuple] = {}
        self.request_limiter = RateLimiter(request_rate)
        self.renewal_limiter = RateLimiter(1.0 / EER_RENEWAL_MIN_INTERVAL)
        #: ASes caught overusing: future reservations are denied (§4.8).
        self.denied_sources: set = set()
        #: Destination-host acceptance of incoming EERs (§4.4): called with
        #: (EerInfo, bandwidth), returns True to accept.
        self.host_acceptor = host_acceptor or (lambda eer_info, bandwidth: True)
        self.offenses_reported = 0
        self.aborts = {"segments": 0, "eers": 0, "undeliverable": 0}
        #: Optional :class:`repro.obs.ObsContext`.  When attached (see
        #: :meth:`~repro.sim.scenario.ColibriNetwork.enable_observability`)
        #: initiator workflows and on-path admission handlers record
        #: spans, and initiator latencies feed the
        #: ``admission_latency_seconds`` histogram.
        self.obs = None

        bus.register(self.isd_as, self)

    # ------------------------------------------------------------------ utils --

    def _decided(
        self, reservation, kind: str, hop_index: int, granted: float, admitted: bool
    ) -> None:
        """Journal this AS's own admission decision (one event per
        handler invocation, cached idempotent replays excluded)."""
        emit(
            self.obs,
            ADMISSION_DECIDED,
            isd_as=str(self.isd_as),
            reservation=str(reservation),
            kind=kind,
            hop=hop_index,
            granted=granted,
            admitted=admitted,
        )

    def _now(self) -> float:
        return self.clock.now()

    def _call(self, isd_as: IsdAs, method: str, *args, **kwargs):
        """Forward a control-plane call with retries/backoff/breaking."""
        return self.caller.call(isd_as, method, *args, **kwargs)

    @property
    def _remote_cache(self) -> dict:
        """The remote descriptor cache (moved to :attr:`remote_client`)."""
        return self.remote_client._cache

    def _hop_of(self, hops: tuple, hop_index: int):
        hop = hops[hop_index]
        if hop.isd_as != self.isd_as:
            raise ColibriError(
                f"request routed to AS {self.isd_as} but hop {hop_index} "
                f"names {hop.isd_as}"
            )
        return hop

    def _admission_gate(self, source: IsdAs, now: float) -> None:
        """The §5.3 front door: denied sources and per-AS rate limiting."""
        if source in self.denied_sources:
            raise AdmissionDenied(
                f"AS {source} is denied reservations at {self.isd_as} "
                "due to confirmed overuse",
                at_as=self.isd_as,
            )
        self.request_limiter.check(source, now)

    # ================================================================== SegRs ==

    @_workflow("seg.setup")
    def setup_segment(
        self,
        segment: Segment,
        bandwidth: float,
        minimum: float = 0.0,
        register: bool = True,
        whitelist: Optional[set] = None,
    ) -> SegmentReservation:
        """Initiate a SegR over ``segment`` (Fig. 1a).

        Returns the stored reservation on success; raises
        :class:`AdmissionDenied` carrying the bottleneck grants otherwise.
        """
        if segment.first_as != self.isd_as:
            raise ColibriError(
                f"AS {self.isd_as} can only initiate SegRs starting at itself, "
                f"segment starts at {segment.first_as}"
            )
        now = self._now()
        res_id = ReservationId(self.isd_as, self._ids.allocate())
        res_info = ResInfo(
            reservation=res_id,
            bandwidth=bandwidth,
            expiry=now + SEGR_LIFETIME,
            version=1,
        )
        request = SegSetupRequest(
            res_info=res_info,
            hops=segment.hops,
            min_bandwidth=minimum,
            segment_type=_SEGMENT_TYPE_TO_CODE[segment.segment_type],
        )
        auth = AuthenticatedRequest.create(
            self.directory, self.isd_as, list(segment.ases), request, now
        )
        try:
            response = self.handle_seg_setup(request, auth, 0)
        except TransportError:
            # Retries exhausted mid-path.  Hops beyond the loss point may
            # have committed (their success response never came back);
            # clean up the whole path before giving up (§3.3).
            self._abort_segment(res_id, 1, segment.ases)
            raise
        if not response.success:
            bottleneck = min(response.grants, key=lambda g: g.granted, default=None)
            raise InsufficientBandwidth(
                f"SegR setup failed; bottleneck at "
                f"{bottleneck.isd_as if bottleneck else 'unknown'} "
                f"granting {bottleneck.granted if bottleneck else 0.0:.0f} bps",
                granted=bottleneck.granted if bottleneck else 0.0,
                at_as=bottleneck.isd_as if bottleneck else None,
            )
        auth.verify_grants(self.directory, response.grants, now)
        self._segment_tokens[res_id] = response.tokens
        reservation = self.store.get_segment(res_id)
        if register:
            self.registry.register(SegmentDescriptor.of(reservation), whitelist)
        return reservation

    @traced(
        "admission.seg_setup",
        attrs=lambda self, request, auth, hop_index: {
            "isd_as": str(self.isd_as),
            "hop": hop_index,
            "reservation": str(request.res_info.reservation),
        },
    )
    def handle_seg_setup(
        self, request: SegSetupRequest, auth: AuthenticatedRequest, hop_index: int
    ) -> SegSetupResponse:
        """On-path processing of a SegReq (➋ of Fig. 1a) and its response."""
        now = self._now()
        hop = self._hop_of(request.hops, hop_index)
        source = request.res_info.src_as
        if hop_index > 0:
            self._admission_gate(source, now)
            auth.verify_at(self.keys, now)
        # Retry safety: if this exact request already succeeded here (its
        # response was lost upstream), replay the remembered answer
        # instead of admitting the bandwidth twice (§3.3).
        idem_key = (
            "seg_setup",
            request.res_info.reservation,
            request.res_info.version,
            hop_index,
        )
        cached = self.idempotency.get(idem_key)
        if cached is not None:
            return cached

        try:
            grant = self.seg_admission.evaluate(
                request.res_info.reservation,
                source,
                hop.ingress,
                hop.egress,
                request.res_info.bandwidth,
            )
        except ColibriError:
            grant = None
        offered = grant.granted if grant is not None else 0.0
        self._decided(
            request.res_info.reservation,
            "segment",
            hop_index,
            offered,
            offered >= request.min_bandwidth and offered > 0,
        )
        as_grant = AsGrant(self.isd_as, offered)
        forwarded = request.with_grant(as_grant)
        auth.add_grant_mac(self.keys, as_grant, now)

        if offered < request.min_bandwidth:
            # This AS is the bottleneck: fail immediately, do not bother
            # downstream ASes (they would clean up anyway).
            return SegSetupResponse(
                res_info=request.res_info,
                success=False,
                granted=0.0,
                grants=forwarded.grants,
            )

        if hop_index == len(request.hops) - 1:
            final = min(g.granted for g in forwarded.grants)
            success = final >= request.min_bandwidth and final > 0
            response = SegSetupResponse(
                res_info=replace(request.res_info, bandwidth=final),
                success=success,
                granted=final,
                grants=forwarded.grants,
            )
        else:
            next_as = request.hops[hop_index + 1].isd_as
            response = self._call(
                next_as, "handle_seg_setup", forwarded, auth, hop_index + 1
            )

        if response.success:
            final_info = response.res_info
            committed = SegmentGrant(
                reservation_id=grant.reservation_id,
                demand=grant.demand,
                granted=response.granted,
            )
            with self.store.transaction():
                self.seg_admission.commit(committed)
                segment = Segment.from_hops(
                    _CODE_TO_SEGMENT_TYPE[request.segment_type], request.hops
                )
                self.store.add_segment(
                    SegmentReservation(
                        reservation_id=final_info.reservation,
                        segment=segment,
                        first_version=SegmentVersion(
                            version=final_info.version,
                            bandwidth=response.granted,
                            expiry=final_info.expiry,
                        ),
                    )
                )
            token = segment_token(
                self.keys.hop_key(now), final_info, hop.ingress, hop.egress
            )
            response = replace(response, tokens=(token,) + response.tokens)
            self.idempotency.put(idem_key, response)
        return response

    # -- renewal and activation (§4.2, §4.4) ----------------------------------------

    @_workflow("seg.renewal")
    def renew_segment(
        self,
        reservation_id: ReservationId,
        new_bandwidth: float,
        minimum: float = 0.0,
    ) -> int:
        """Request a new (pending) version of an own SegR over the SegR
        itself; returns the pending version number."""
        now = self._now()
        reservation = self.store.get_segment(reservation_id)
        new_version = reservation.next_version_number()
        request = SegRenewalRequest(
            reservation=reservation_id,
            new_bandwidth=new_bandwidth,
            min_bandwidth=minimum,
            new_expiry=now + SEGR_LIFETIME,
            new_version=new_version,
        )
        auth = AuthenticatedRequest.create(
            self.directory, self.isd_as, list(reservation.segment.ases), request, now
        )
        try:
            response = self.handle_seg_renewal(request, auth, 0)
        except TransportError:
            # Drop the pending version wherever the unwind installed it
            # before the response was lost (§3.3).
            self._abort_segment(reservation_id, new_version, reservation.segment.ases)
            raise
        if not response.success:
            bottleneck = min(response.grants, key=lambda g: g.granted, default=None)
            raise InsufficientBandwidth(
                f"SegR renewal failed; bottleneck at "
                f"{bottleneck.isd_as if bottleneck else 'unknown'}",
                granted=bottleneck.granted if bottleneck else 0.0,
                at_as=bottleneck.isd_as if bottleneck else None,
            )
        self._segment_tokens[reservation_id] = response.tokens
        emit(
            self.obs,
            RESERVATION_RENEWED,
            isd_as=str(self.isd_as),
            reservation=str(reservation_id),
            kind="segment",
            version=new_version,
            granted=response.granted,
        )
        return new_version

    @traced(
        "admission.seg_renewal",
        attrs=lambda self, request, auth, hop_index: {
            "isd_as": str(self.isd_as),
            "hop": hop_index,
            "reservation": str(request.reservation),
        },
    )
    def handle_seg_renewal(
        self, request: SegRenewalRequest, auth: AuthenticatedRequest, hop_index: int
    ) -> SegSetupResponse:
        now = self._now()
        try:
            reservation = self.store.get_segment(request.reservation)
        except ReservationNotFound:
            return SegSetupResponse(
                res_info=ResInfo(
                    reservation=request.reservation,
                    bandwidth=0.0,
                    expiry=request.new_expiry,
                    version=request.new_version,
                ),
                success=False,
                granted=0.0,
                grants=request.grants,
            )
        hop = reservation.segment.hop_of(self.isd_as)
        source = request.reservation.src_as
        if hop_index > 0:
            self._admission_gate(source, now)
            auth.verify_at(self.keys, now)
        idem_key = (
            "seg_renewal", request.reservation, request.new_version, hop_index
        )
        cached = self.idempotency.get(idem_key)
        if cached is not None:
            return cached

        # Renewal re-runs admission; the evaluator excludes this SegR's
        # current demand so it competes fairly ("on-path ASes can also
        # re-negotiate the bandwidth granted", §4.4).
        grant = self.seg_admission.evaluate(
            request.reservation, source, hop.ingress, hop.egress, request.new_bandwidth
        )
        self._decided(
            request.reservation,
            "segment_renewal",
            hop_index,
            grant.granted,
            grant.granted >= request.min_bandwidth and grant.granted > 0,
        )
        as_grant = AsGrant(self.isd_as, grant.granted)
        forwarded = request.with_grant(as_grant)
        auth.add_grant_mac(self.keys, as_grant, now)

        new_info = ResInfo(
            reservation=request.reservation,
            bandwidth=grant.granted,
            expiry=request.new_expiry,
            version=request.new_version,
        )
        if grant.granted < request.min_bandwidth:
            return SegSetupResponse(
                res_info=new_info, success=False, granted=0.0, grants=forwarded.grants
            )

        hops = reservation.segment.hops
        if hop_index == len(hops) - 1:
            final = min(g.granted for g in forwarded.grants)
            success = final >= request.min_bandwidth and final > 0
            response = SegSetupResponse(
                res_info=replace(new_info, bandwidth=final),
                success=success,
                granted=final,
                grants=forwarded.grants,
            )
        else:
            next_as = hops[hop_index + 1].isd_as
            response = self._call(
                next_as, "handle_seg_renewal", forwarded, auth, hop_index + 1
            )

        if response.success:
            reservation.add_pending(
                SegmentVersion(
                    version=request.new_version,
                    bandwidth=response.granted,
                    expiry=request.new_expiry,
                )
            )
            token = segment_token(
                self.keys.hop_key(now), response.res_info, hop.ingress, hop.egress
            )
            response = replace(response, tokens=(token,) + response.tokens)
            self.idempotency.put(idem_key, response)
        return response

    def teardown_segment(self, reservation_id: ReservationId) -> None:
        """Advisory early removal of an own SegR (extension; the paper
        lets SegRs expire naturally, §4.2).  Frees bandwidth along the
        whole segment immediately — useful when an AS retires a segment
        after re-homing its traffic.  Refused while EERs still ride the
        SegR (they hold granted bandwidth until they expire)."""
        reservation = self.store.get_segment(reservation_id)
        if self.store.allocated_on_segment(reservation_id) > 0:
            raise ColibriError(
                f"SegR {reservation_id} still carries admitted EER bandwidth; "
                "let them expire first"
            )
        request = SegTeardownNotice(reservation=reservation_id)
        now = self._now()
        auth = AuthenticatedRequest.create(
            self.directory, self.isd_as, list(reservation.segment.ases), request, now
        )
        self.handle_seg_teardown(request, auth, 0)

    def handle_seg_teardown(
        self, request: SegTeardownNotice, auth: AuthenticatedRequest, hop_index: int
    ) -> bool:
        now = self._now()
        try:
            reservation = self.store.get_segment(request.reservation)
        except ReservationNotFound:
            return False
        if hop_index > 0:
            auth.verify_at(self.keys, now)
        # Only the initiator may retire its reservation.
        if request.reservation.src_as != auth.source:
            raise AdmissionDenied(
                f"teardown of {request.reservation} not requested by its owner"
            )
        if self.store.allocated_on_segment(request.reservation) > 0:
            return False  # EERs still riding: keep until they expire
        hops = reservation.segment.hops
        if hop_index < len(hops) - 1:
            self._call(
                hops[hop_index + 1].isd_as,
                "handle_seg_teardown",
                request,
                auth,
                hop_index + 1,
            )
        self.seg_admission.release(request.reservation)
        self.store.remove_segment(request.reservation)
        self.registry.unregister(request.reservation)
        self._segment_tokens.pop(request.reservation, None)
        emit(
            self.obs,
            RESERVATION_TORN_DOWN,
            isd_as=str(self.isd_as),
            reservation=str(request.reservation),
            kind="segment",
            reason="teardown",
        )
        return True

    def activate_segment(self, reservation_id: ReservationId, version: int) -> None:
        """Explicitly switch an own SegR to a pending version everywhere."""
        reservation = self.store.get_segment(reservation_id)
        request = SegActivationRequest(reservation=reservation_id, version=version)
        now = self._now()
        auth = AuthenticatedRequest.create(
            self.directory, self.isd_as, list(reservation.segment.ases), request, now
        )
        self.handle_seg_activation(request, auth, 0)
        try:
            self.registry.update(SegmentDescriptor.of(reservation))
        except KeyError:
            pass  # unregistered (private) SegRs have nothing to refresh

    def handle_seg_activation(
        self, request: SegActivationRequest, auth: AuthenticatedRequest, hop_index: int
    ) -> bool:
        now = self._now()
        reservation = self.store.get_segment(request.reservation)
        if hop_index > 0:
            auth.verify_at(self.keys, now)
        idem_key = (
            "seg_activate", request.reservation, request.version, hop_index
        )
        if self.idempotency.get(idem_key) is not None:
            return True  # retried activation: already switched here
        hops = reservation.segment.hops
        # Activate downstream first: if any AS refuses (e.g. the version
        # expired under clock skew), upstream ASes keep the old version.
        if hop_index < len(hops) - 1:
            self._call(
                hops[hop_index + 1].isd_as,
                "handle_seg_activation",
                request,
                auth,
                hop_index + 1,
            )
        previous = reservation.active
        new = reservation.activate(request.version, now)
        reservation.prune(now)
        # Activation replaced the expiry-defining version: re-index.
        self.store.touch(request.reservation)
        # Committed admission state must track the active version's size.
        if request.reservation in self.seg_admission.index:
            entry = self.seg_admission.index.entry(request.reservation)
            hop = reservation.segment.hop_of(self.isd_as)
            grant = self.seg_admission.evaluate(
                request.reservation,
                request.reservation.src_as,
                hop.ingress,
                hop.egress,
                new.bandwidth,
            )
            self.seg_admission.commit(
                SegmentGrant(
                    reservation_id=request.reservation,
                    demand=grant.demand,
                    granted=new.bandwidth,
                )
            )
        del previous
        return True

    # ================================================================== EERs ==

    @_workflow("eer.setup")
    def setup_eer(
        self,
        destination: IsdAs,
        src_host: HostAddr,
        dst_host: HostAddr,
        bandwidth: float,
        chain=None,
        retries: int = 1,
    ) -> EerHandle:
        """Initiate an EER for a local host (Fig. 1b).

        Finds a SegR chain to ``destination`` (Appendix C) — or uses the
        explicit ``(descriptors, path)`` pair a multipath caller picked —
        runs the hop-by-hop admission, decrypts the returned HopAuths
        (Eq. 5) and installs the reservation in the local gateway.

        When the failure looks like stale cached remote SegRs (Appendix
        C: "the remote CServ can indicate expiry of the SegR during
        setup of the EER, allowing the end host to retry"), the cache is
        invalidated and the chain search re-run up to ``retries`` times.
        """
        now = self._now()
        descriptors, path = chain if chain is not None else self.find_segment_chain(
            destination
        )
        res_id = ReservationId(self.isd_as, self._ids.allocate())
        res_info = ResInfo(
            reservation=res_id,
            bandwidth=bandwidth,
            expiry=now + EER_LIFETIME,
            version=1,
        )
        eer_info = EerInfo(src_host=src_host, dst_host=dst_host)
        request = EerSetupRequest(
            res_info=res_info,
            eer_info=eer_info,
            hops=path.hops,
            segment_ids=tuple(d.reservation_id for d in descriptors),
        )
        auth = AuthenticatedRequest.create(
            self.directory, self.isd_as, list(path.ases), request, now
        )
        try:
            response = self.handle_eer_setup(request, auth, 0)
        except TransportError:
            # Retries exhausted mid-path: hops beyond the loss point may
            # hold committed allocations whose response never returned.
            # Abort path-wide, then refetch descriptors on any retry.
            self._invalidate_remote_cache(descriptors)
            self._abort_eer(res_id, 1, path.hops)
            raise
        if not response.success:
            # A stale cached SegR is one failure cause (Appendix C):
            # invalidate the cache so a retry refetches fresh descriptors.
            self._invalidate_remote_cache(descriptors)
            expiry_soon = any(d.is_expired(now) for d in descriptors)
            if retries > 0 and chain is None and expiry_soon:
                return self.setup_eer(
                    destination,
                    src_host,
                    dst_host,
                    bandwidth,
                    retries=retries - 1,
                )
            bottleneck = min(response.grants, key=lambda g: g.granted, default=None)
            raise InsufficientBandwidth(
                f"EER setup failed; bottleneck at "
                f"{bottleneck.isd_as if bottleneck else 'unknown'}",
                granted=bottleneck.granted if bottleneck else 0.0,
                at_as=bottleneck.isd_as if bottleneck else None,
            )
        final_info = response.res_info
        hop_auths = self._open_hopauths(path.hops, response.sealed_hopauths, now)
        if self.gateway is not None:
            self.gateway.install(
                res_id,
                PathField.from_hops(path.hops),
                eer_info,
                final_info,
                tuple(hop_auths),
            )
        return EerHandle(
            reservation_id=res_id,
            res_info=final_info,
            eer_info=eer_info,
            hops=path.hops,
            segment_ids=request.segment_ids,
            granted=response.granted,
        )

    def _open_hopauths(self, hops: tuple, sealed_hopauths: tuple, now: float) -> list:
        """Decrypt the Eq. (5) HopAuth blobs, attributing any corruption.

        A malicious transit AS could corrupt another AS's sealed blob on
        the response path.  The AEAD tag detects it; we convert the raw
        crypto error into a typed failure naming the affected hop so the
        initiator knows where the response was tampered with.  The
        already-committed allocations along the path simply expire with
        the EER lifetime (16 s) — bounded, unusable state for the
        attacker, since without the HopAuths nobody can stamp packets.
        """
        from repro.errors import AeadError

        if len(sealed_hopauths) != len(hops):
            raise AdmissionDenied(
                f"response carries {len(sealed_hopauths)} HopAuths for "
                f"{len(hops)} hops — tampered on the return path"
            )
        hop_auths = []
        for hop, sealed in zip(hops, sealed_hopauths):
            key = self.directory.fetch_key(hop.isd_as, self.isd_as, now)
            try:
                hop_auths.append(aead_open(key, sealed))
            except AeadError as error:
                raise AdmissionDenied(
                    f"HopAuth from {hop.isd_as} failed authenticated "
                    f"decryption — response tampered in transit",
                    at_as=hop.isd_as,
                ) from error
        return hop_auths

    def _role_and_segments(self, request_segment_ids: tuple, hop_index: int, last_index: int):
        """Determine this AS's role (§4.1) and the SegRs it must check."""
        present = [
            sid for sid in request_segment_ids if self.store.has_segment(sid)
        ]
        if hop_index == 0:
            return AsRole.SOURCE, None, request_segment_ids[0]
        if hop_index == last_index:
            return AsRole.DESTINATION, request_segment_ids[-1], None
        if len(present) >= 2:
            for first, second in zip(request_segment_ids, request_segment_ids[1:]):
                if first in present and second in present:
                    return AsRole.TRANSFER, first, second
        if len(present) == 1:
            return AsRole.TRANSIT, present[0], None
        raise ReservationNotFound(
            f"AS {self.isd_as} stores none of the SegRs "
            f"{[str(s) for s in request_segment_ids]} named by the EEReq"
        )

    @traced(
        "admission.eer_setup",
        attrs=lambda self, request, auth, hop_index: {
            "isd_as": str(self.isd_as),
            "hop": hop_index,
            "reservation": str(request.res_info.reservation),
        },
    )
    def handle_eer_setup(
        self, request: EerSetupRequest, auth: AuthenticatedRequest, hop_index: int
    ) -> EerSetupResponse:
        """On-path processing of an EEReq (➌ of Fig. 1b) and its response."""
        now = self._now()
        hop = self._hop_of(request.hops, hop_index)
        source = request.res_info.src_as
        last_index = len(request.hops) - 1
        if hop_index > 0:
            self._admission_gate(source, now)
            auth.verify_at(self.keys, now)
        idem_key = (
            "eer_setup",
            request.res_info.reservation,
            request.res_info.version,
            hop_index,
        )
        cached = self.idempotency.get(idem_key)
        if cached is not None:
            return cached

        def fail(granted: float) -> EerSetupResponse:
            self._decided(
                request.res_info.reservation, "eer", hop_index, granted, False
            )
            return EerSetupResponse(
                res_info=request.res_info,
                success=False,
                granted=0.0,
                grants=request.grants + (AsGrant(self.isd_as, granted),),
            )

        try:
            role, segment_in, segment_out = self._role_and_segments(
                request.segment_ids, hop_index, last_index
            )
        except ReservationNotFound:
            return fail(0.0)

        host = None
        if role is AsRole.SOURCE:
            host = request.eer_info.src_host
        elif role is AsRole.DESTINATION:
            host = request.eer_info.dst_host
            # The destination host must explicitly accept the EER (§4.4).
            if not self.host_acceptor(request.eer_info, request.res_info.bandwidth):
                return fail(0.0)

        core_contention = False
        if role is AsRole.TRANSFER:
            seg_in = self.store.get_segment(segment_in)
            seg_out = self.store.get_segment(segment_out)
            core_contention = (
                seg_in.segment.segment_type is SegmentType.UP
                and seg_out.segment.segment_type is SegmentType.CORE
            )
        try:
            decision = self.eer_admission.decide(
                role,
                request.res_info.bandwidth,
                now,
                segment_in=segment_in,
                segment_out=segment_out,
                host=host,
                core_contention=core_contention,
                flow=request.res_info.reservation,
            )
        except (InsufficientBandwidth, PolicyDenied) as denial:
            return fail(denial.granted)
        except ReservationExpired:
            return fail(0.0)

        self._decided(
            request.res_info.reservation, "eer", hop_index, decision.granted, True
        )
        as_grant = AsGrant(self.isd_as, decision.granted)
        forwarded = request.with_grant(as_grant)
        auth.add_grant_mac(self.keys, as_grant, now)

        if hop_index == last_index:
            final = min(g.granted for g in forwarded.grants)
            success = final > 0
            response = EerSetupResponse(
                res_info=replace(request.res_info, bandwidth=final),
                success=success,
                granted=final,
                grants=forwarded.grants,
            )
        else:
            next_as = request.hops[hop_index + 1].isd_as
            try:
                response = self._call(
                    next_as, "handle_eer_setup", forwarded, auth, hop_index + 1
                )
            except TransportError:
                # Nothing committed here yet, but `decide` charged policy
                # budget / transfer demand — return it before the error
                # climbs back towards the initiator (§3.3 cleanup).
                self._release_eer_decision(
                    role, host, request.res_info.bandwidth,
                    core_contention, request.res_info.reservation,
                )
                raise

        if response.success:
            final_info = response.res_info
            eer_id = final_info.reservation
            with self.store.transaction():
                self.eer_admission.commit(eer_id, decision, response.granted)
                self.store.add_eer(
                    E2EReservation(
                        reservation_id=eer_id,
                        eer_info=request.eer_info,
                        hops=request.hops,
                        segment_ids=request.segment_ids,
                        first_version=E2EVersion(
                            version=final_info.version,
                            bandwidth=response.granted,
                            expiry=final_info.expiry,
                        ),
                    )
                )
            sigma = hop_authenticator(
                self.keys.hop_key(now),
                final_info,
                request.eer_info,
                hop.ingress,
                hop.egress,
            )
            sealed = aead_seal(self.keys.control_key(source, now), sigma)
            response = replace(
                response, sealed_hopauths=(sealed,) + response.sealed_hopauths
            )
            self.idempotency.put(idem_key, response)
        else:
            # Release everything the failed attempt's `decide` consumed:
            # policy budget at host-facing roles, and — previously leaked
            # — the transfer AS's registered core-SegR demand, which
            # would otherwise shrink other up-SegRs' quotas forever.
            self._release_eer_decision(
                role, host, request.res_info.bandwidth,
                core_contention, request.res_info.reservation,
            )
        return response

    def _release_eer_decision(
        self,
        role: AsRole,
        host,
        bandwidth: float,
        core_contention: bool,
        eer_id: ReservationId,
    ) -> None:
        """Undo the temporary state :meth:`EerAdmission.decide` created
        for a request that will not commit here (§3.3 cleanup)."""
        if host is not None and role is AsRole.SOURCE:
            self.eer_admission.source_policy.release(host, bandwidth)
        elif host is not None and role is AsRole.DESTINATION:
            self.eer_admission.destination_policy.release(host, bandwidth)
        if role is AsRole.TRANSFER and core_contention:
            # Keyed release: exactly the capped increment `decide`
            # registered, not the (possibly larger) requested amount.
            self.eer_admission.distributor.release_key(eer_id)

    @_workflow("eer.renewal")
    def renew_eer(self, handle: EerHandle, new_bandwidth: float = None) -> EerHandle:
        """Renew an own EER ahead of expiry (§4.2); returns the updated
        handle with the new version installed at the gateway."""
        now = self._now()
        self.renewal_limiter.check(handle.reservation_id, now)
        reservation = self.store.get_eer(handle.reservation_id)
        if new_bandwidth is None:
            new_bandwidth = handle.res_info.bandwidth
        request = EerRenewalRequest(
            reservation=handle.reservation_id,
            new_bandwidth=new_bandwidth,
            new_expiry=now + EER_LIFETIME,
            new_version=reservation.next_version_number(),
        )
        on_path = [hop.isd_as for hop in handle.hops]
        auth = AuthenticatedRequest.create(
            self.directory, self.isd_as, on_path, request, now
        )
        try:
            response = self.handle_eer_renewal(request, auth, 0)
        except TransportError:
            # Drop the half-installed renewal version everywhere; the
            # base version keeps carrying traffic (§4.2).
            self._abort_eer(handle.reservation_id, request.new_version, handle.hops)
            raise
        if not response.success:
            bottleneck = min(response.grants, key=lambda g: g.granted, default=None)
            raise InsufficientBandwidth(
                f"EER renewal failed; bottleneck at "
                f"{bottleneck.isd_as if bottleneck else 'unknown'}",
                granted=bottleneck.granted if bottleneck else 0.0,
                at_as=bottleneck.isd_as if bottleneck else None,
            )
        final_info = response.res_info
        hop_auths = self._open_hopauths(
            handle.hops, response.sealed_hopauths, now
        )
        if self.gateway is not None:
            self.gateway.install(
                handle.reservation_id,
                PathField.from_hops(handle.hops),
                handle.eer_info,
                final_info,
                tuple(hop_auths),
            )
        emit(
            self.obs,
            RESERVATION_RENEWED,
            isd_as=str(self.isd_as),
            reservation=str(handle.reservation_id),
            kind="eer",
            version=final_info.version,
            granted=response.granted,
        )
        return EerHandle(
            reservation_id=handle.reservation_id,
            res_info=final_info,
            eer_info=handle.eer_info,
            hops=handle.hops,
            segment_ids=handle.segment_ids,
            granted=response.granted,
        )

    @traced(
        "admission.eer_renewal",
        attrs=lambda self, request, auth, hop_index: {
            "isd_as": str(self.isd_as),
            "hop": hop_index,
            "reservation": str(request.reservation),
        },
    )
    def handle_eer_renewal(
        self, request: EerRenewalRequest, auth: AuthenticatedRequest, hop_index: int
    ) -> EerSetupResponse:
        now = self._now()
        source = request.reservation.src_as

        def fail(granted: float) -> EerSetupResponse:
            self._decided(
                request.reservation, "eer_renewal", hop_index, granted, False
            )
            return EerSetupResponse(
                res_info=ResInfo(
                    reservation=request.reservation,
                    bandwidth=0.0,
                    expiry=request.new_expiry,
                    version=request.new_version,
                ),
                success=False,
                granted=0.0,
                grants=request.grants + (AsGrant(self.isd_as, granted),),
            )

        try:
            reservation = self.store.get_eer(request.reservation)
        except ReservationNotFound:
            return fail(0.0)
        hops = reservation.hops
        hop = self._hop_of(hops, hop_index)
        last_index = len(hops) - 1
        if hop_index > 0:
            self._admission_gate(source, now)
            auth.verify_at(self.keys, now)
        idem_key = (
            "eer_renewal", request.reservation, request.new_version, hop_index
        )
        cached = self.idempotency.get(idem_key)
        if cached is not None:
            return cached

        try:
            role, segment_in, segment_out = self._role_and_segments(
                reservation.segment_ids, hop_index, last_index
            )
        except ReservationNotFound:
            return fail(0.0)

        # Renewal is a delta-recompute, not a fresh admission: versions
        # share the EER's budget (§4.2), so each SegR offers its current
        # allocation plus whatever is free, in two O(1) reads — no
        # release-and-readmit through the full bounded-tube path, and no
        # policy/demand charge to unwind on failure (policy budget was
        # charged at setup).  An AS that cannot cover the full growth
        # offers a *partial* grant, so service never regresses below
        # what already runs.
        try:
            decision = self.eer_admission.renew_delta(
                request.reservation,
                decisions_segments(segment_in, segment_out),
                request.new_bandwidth,
                now,
                role=role,
            )
        except (ReservationExpired, ReservationNotFound):
            return fail(0.0)
        offered = decision.granted
        if offered <= 0:
            return fail(0.0)

        self._decided(
            request.reservation, "eer_renewal", hop_index, offered, True
        )
        as_grant = AsGrant(self.isd_as, offered)
        forwarded = request.with_grant(as_grant)
        auth.add_grant_mac(self.keys, as_grant, now)

        if hop_index == last_index:
            final = min(g.granted for g in forwarded.grants)
            response = EerSetupResponse(
                res_info=ResInfo(
                    reservation=request.reservation,
                    bandwidth=final,
                    expiry=request.new_expiry,
                    version=request.new_version,
                ),
                success=final > 0,
                granted=final,
                grants=forwarded.grants,
            )
        else:
            # Renewal's `decide` ran with host=None and no contention
            # flag, so a transport failure here leaves no temp state to
            # release — the error just climbs back to the initiator.
            response = self._call(
                hops[hop_index + 1].isd_as,
                "handle_eer_renewal",
                forwarded,
                auth,
                hop_index + 1,
            )

        if response.success:
            final_info = response.res_info
            with self.store.transaction():
                reservation.add_version(
                    E2EVersion(
                        version=final_info.version,
                        bandwidth=response.granted,
                        expiry=final_info.expiry,
                    )
                )
                reservation.prune(now)
                self.eer_admission.commit_renewal(
                    request.reservation, decision, response.granted
                )
                # The new version moved the expiry: re-index the EER so
                # the time-indexed sweep sees the extension immediately.
                self.store.touch(request.reservation)
            sigma = hop_authenticator(
                self.keys.hop_key(now),
                final_info,
                reservation.eer_info,
                hop.ingress,
                hop.egress,
            )
            sealed = aead_seal(self.keys.control_key(source, now), sigma)
            response = replace(
                response, sealed_hopauths=(sealed,) + response.sealed_hopauths
            )
            self.idempotency.put(idem_key, response)
        return response

    # ==================================================== abort paths (§3.3) ==
    #
    # When a setup/renewal response is lost, the hops beyond the loss
    # point have already committed; the initiator knows the full hop list
    # and tells every on-path AS *directly* (not hop-by-hop — any single
    # link can be the broken one) to drop the half-installed state.
    # Aborts use the CLEANUP retry policy: more attempts, and they bypass
    # the circuit breaker, because cleanup towards a flaky AS is exactly
    # the call that must not be refused.

    def _abort_segment(self, res_id: ReservationId, version: int, ases) -> None:
        """Release a half-committed SegR setup (version 1) or renewal
        (version > 1) at every on-path AS."""
        self.aborts["segments"] += 1
        now = self._now()
        request = SegAbortNotice(reservation=res_id, version=version)
        targets = [isd_as for isd_as in ases if isd_as != self.isd_as]
        auth = AuthenticatedRequest.create(
            self.directory, self.isd_as, targets, request, now
        )
        self._local_seg_abort(res_id, version)
        for isd_as in targets:
            try:
                self._call(isd_as, "handle_seg_abort", request, auth)
            except TransportError:
                # Even the generous cleanup budget ran dry; that AS's
                # residue now expires with the reservation lifetime.
                self.aborts["undeliverable"] += 1

    def handle_seg_abort(
        self, request: SegAbortNotice, auth: AuthenticatedRequest
    ) -> bool:
        now = self._now()
        auth.verify_at(self.keys, now)
        # Only the initiator may tear down its own half-committed state.
        if request.reservation.src_as != auth.source:
            raise AdmissionDenied(
                f"abort of {request.reservation} not requested by its owner"
            )
        self._local_seg_abort(request.reservation, request.version)
        return True

    def _local_seg_abort(self, res_id: ReservationId, version: int) -> None:
        # Forget replay answers for the aborted request so a later
        # legitimate retry is admitted fresh, not served stale state.
        self.idempotency.invalidate(
            lambda key: key[1] == res_id and (version <= 1 or key[2] == version)
        )
        try:
            reservation = self.store.get_segment(res_id)
        except ReservationNotFound:
            return  # the request never committed here: nothing to undo
        emit(
            self.obs,
            RESERVATION_TORN_DOWN,
            isd_as=str(self.isd_as),
            reservation=str(res_id),
            kind="segment",
            reason="abort",
            version=version,
        )
        if version <= 1:
            self.seg_admission.release(res_id)
            self.store.remove_segment(res_id)
            self.registry.unregister(res_id)
            self._segment_tokens.pop(res_id, None)
            return
        try:
            reservation.drop_pending(version)
        except VersionError:
            pass  # renewal never landed here, or was already activated

    def _abort_eer(self, res_id: ReservationId, version: int, hops) -> None:
        """Release a half-committed EER setup (version 1) or renewal
        version (version > 1) at every on-path AS."""
        self.aborts["eers"] += 1
        now = self._now()
        request = EerAbortNotice(reservation=res_id, version=version)
        targets = [hop.isd_as for hop in hops if hop.isd_as != self.isd_as]
        auth = AuthenticatedRequest.create(
            self.directory, self.isd_as, targets, request, now
        )
        self._local_eer_abort(res_id, version)
        for isd_as in targets:
            try:
                self._call(isd_as, "handle_eer_abort", request, auth)
            except TransportError:
                self.aborts["undeliverable"] += 1

    def handle_eer_abort(
        self, request: EerAbortNotice, auth: AuthenticatedRequest
    ) -> bool:
        now = self._now()
        auth.verify_at(self.keys, now)
        if request.reservation.src_as != auth.source:
            raise AdmissionDenied(
                f"abort of {request.reservation} not requested by its owner"
            )
        self._local_eer_abort(request.reservation, request.version)
        return True

    def _local_eer_abort(self, res_id: ReservationId, version: int) -> None:
        self.idempotency.invalidate(
            lambda key: key[1] == res_id and (version <= 1 or key[2] == version)
        )
        try:
            reservation = self.store.get_eer(res_id)
        except ReservationNotFound:
            return
        emit(
            self.obs,
            RESERVATION_TORN_DOWN,
            isd_as=str(self.isd_as),
            reservation=str(res_id),
            kind="eer",
            reason="abort",
            version=version,
        )
        now = self._now()
        if version <= 1:
            # Abort of the initial setup: the whole EER goes, and every
            # SegR this AS holds gets its allocation back — exact zero,
            # not "wait 16 s for expiry" (§3.3).  The keyed ledger
            # returns exactly the transfer demand this EER registered.
            self.eer_admission.distributor.release_key(res_id)
            with self.store.transaction():
                for segment_id in reservation.segment_ids:
                    self.store.release_on_segment(segment_id, res_id)
                self.store.remove_eer(res_id)
            return
        try:
            reservation.drop_version(version)
        except VersionError:
            return  # the renewal version never landed here
        # Shrink the allocation back to what the surviving versions need.
        remaining = reservation.effective_bandwidth(now)
        with self.store.transaction():
            for segment_id in reservation.segment_ids:
                if not self.store.has_segment(segment_id):
                    continue
                if self.store.eer_allocation(segment_id, res_id) > remaining:
                    self.store.allocate_on_segment(segment_id, res_id, remaining)
            # Dropping the version may have *shrunk* the expiry; the
            # lazy index only heals extensions, so re-index explicitly.
            self.store.touch(res_id)

    # ====================================================== host front door ==

    def provision_host_key(self, host: HostAddr) -> bytes:
        """The host-specific key a subscriber receives at sign-up.

        Footnote 2 of the paper: protocol- and host-specific keys are
        derived below the AS-level DRKey.  For the host -> local-CServ
        channel the parent key is ``K_{A->A}`` (the AS's key with
        itself), so the CServ can re-derive any host's key on the fly —
        no per-host key storage.
        """
        from repro.crypto.drkey import derive_host_key

        parent = self.keys.control_key(self.isd_as)
        return derive_host_key(parent, host.packed)

    @staticmethod
    def _host_request_bytes(
        src_host: HostAddr, destination: IsdAs, dst_host: HostAddr, bandwidth: float
    ) -> bytes:
        from repro.packets.wire import Writer

        return (
            Writer()
            .raw(src_host.packed)
            .raw(destination.packed)
            .raw(dst_host.packed)
            .f64(bandwidth)
            .finish()
        )

    def request_eer(
        self,
        src_host: HostAddr,
        destination: IsdAs,
        dst_host: HostAddr,
        bandwidth: float,
        tag: bytes,
    ) -> EerHandle:
        """The authenticated host-facing entry point for EER setup.

        The host MACs its request under its provisioned key; the CServ
        re-derives the key and verifies before doing any work, so hosts
        cannot spoof each other's identity towards their own AS (which
        would subvert per-host policies, §4.7) and cannot flood the CServ
        with requests charged to someone else.
        """
        from repro.crypto.mac import verify_mac

        key = self.provision_host_key(src_host)
        payload = self._host_request_bytes(src_host, destination, dst_host, bandwidth)
        verify_mac(key, payload, tag)
        return self.setup_eer(destination, src_host, dst_host, bandwidth)

    # ======================================================== dissemination ==

    def query_registry(self, first_as: IsdAs, last_as: IsdAs, requester: IsdAs) -> list:
        """Remote-facing registry lookup (Appendix C)."""
        return self.registry.query(first_as, last_as, requester, self._now())

    def _fetch_descriptors(self, owner: IsdAs, first: IsdAs, last: IsdAs) -> list:
        """Local registry, then cache, then a remote CServ query."""
        return self.remote_client.fetch(owner, first, last)

    def _invalidate_remote_cache(self, descriptors: list) -> None:
        self.remote_client.invalidate(descriptors)

    def find_segment_chain(self, destination: IsdAs):
        """Assemble 1-3 SegRs covering a path to ``destination``.

        Mirrors the SCION segment-combination rules over *reserved*
        segments instead of raw ones, fetching remote descriptors with
        hierarchical caching (Appendix C).  Returns
        ``(descriptors, combined_path)`` for the first chain found.
        """
        for chain in self.iter_segment_chains(destination):
            return chain
        raise NoPathError(
            f"no SegR chain from {self.isd_as} to {destination}; "
            "set up the missing segment reservations first"
        )

    def find_segment_chains(self, destination: IsdAs, limit: int = 5) -> list:
        """Up to ``limit`` distinct SegR chains to ``destination``,
        deduplicated on the combined AS path — the raw material for
        multipath reservations (§2.1)."""
        chains = []
        seen = set()
        for descriptors, path in self.iter_segment_chains(destination):
            if path.ases in seen:
                continue
            seen.add(path.ases)
            chains.append((descriptors, path))
            if len(chains) >= limit:
                break
        if not chains:
            raise NoPathError(
                f"no SegR chain from {self.isd_as} to {destination}; "
                "set up the missing segment reservations first"
            )
        return chains

    def iter_segment_chains(self, destination: IsdAs):
        """Yield every combinable SegR chain towards ``destination``."""
        if self.topology is None:
            raise ColibriError(
                f"CServ of {self.isd_as} has no topology reference for chain search"
            )
        if destination == self.isd_as:
            raise NoPathError("source and destination AS are identical")
        now = self._now()
        src_core = self.node.is_core
        dst_core = self.topology.node(destination).is_core

        if src_core:
            up_options = [(None, self.isd_as)]
        else:
            up_options = []
            for core in self.topology.core_ases(self.node.isd):
                for descriptor in self.registry.query(
                    self.isd_as, core.isd_as, self.isd_as, now
                ):
                    up_options.append((descriptor, core.isd_as))
        if dst_core:
            down_options = [(None, destination)]
        else:
            down_options = []
            for core in self.topology.core_ases(destination.isd):
                for descriptor in self._fetch_descriptors(
                    core.isd_as, core.isd_as, destination
                ):
                    down_options.append((descriptor, core.isd_as))

        for up_descriptor, up_core in up_options:
            for down_descriptor, down_core in down_options:
                if up_core == down_core:
                    chain = [d for d in (up_descriptor, down_descriptor) if d]
                    if not chain:
                        continue
                    path = self._combine_chain(chain)
                    if path is not None:
                        yield chain, path
                    continue
                for core_descriptor in self._fetch_descriptors(
                    up_core, up_core, down_core
                ):
                    chain = [
                        d
                        for d in (up_descriptor, core_descriptor, down_descriptor)
                        if d
                    ]
                    path = self._combine_chain(chain)
                    if path is not None:
                        yield chain, path

    @staticmethod
    def _combine_chain(descriptors: list):
        try:
            return combine_segments(
                [d.segment for d in descriptors], allow_shortcut=False
            )
        except ColibriError:
            return None

    # ============================================================== policing ==

    def report_offense(self, source: IsdAs, reservation_id: ReservationId) -> None:
        """Border-router report of confirmed overuse (§4.8).

        "It is possible for the service to take drastic measures such as
        completely denying future reservations originating from that AS."
        """
        self.offenses_reported += 1
        self.denied_sources.add(source)

    def pardon(self, source: IsdAs) -> None:
        self.denied_sources.discard(source)

    # ========================================================== housekeeping ==

    def housekeeping(self) -> dict:
        """Periodic sweep: expire reservations, release admission state,
        purge the registry.  Returns counts for observability.

        Cost is proportional to what actually died: the store's expiry
        wheel surfaces exactly the due reservations (no full scan), and
        the returned id lists drive the per-reservation cleanup —
        segment-admission entries, registry rows, Eq. (3) tokens, and
        the transfer-quota demand of expired EERs, which would otherwise
        accumulate forever and starve other up-SegRs' quotas.
        """
        now = self._now()
        removed, dead_eers, dead_segments = self.store.sweep_expired_details(now)
        for reservation_id in dead_segments:
            self.seg_admission.release(reservation_id)
            self.registry.unregister(reservation_id)
            self._segment_tokens.pop(reservation_id, None)
        for reservation_id in dead_eers:
            self.eer_admission.distributor.release_key(reservation_id)
        removed["registry"] = self.registry.sweep_expired(now)
        if self.obs is not None:
            metrics = self.obs.metrics
            metrics.counter("store_swept_eers_total").inc(removed["eers"])
            metrics.counter("store_swept_segments_total").inc(
                removed["segments"]
            )
            metrics.gauge("store_live_eers").set(self.store.eer_count())
            metrics.gauge("store_live_segments").set(self.store.segment_count())
            emit(
                self.obs,
                STORE_SWEPT,
                isd_as=str(self.isd_as),
                eers=removed["eers"],
                segments=removed["segments"],
                registry=removed["registry"],
                live_eers=self.store.eer_count(),
                live_segments=self.store.segment_count(),
            )
        return removed

    def segment_tokens(self, reservation_id: ReservationId) -> tuple:
        """The Eq. (3) tokens returned at setup, for building SegR packets."""
        return self._segment_tokens[reservation_id]


def decisions_segments(segment_in, segment_out):
    """The non-None segment IDs an EER decision touches."""
    return [sid for sid in (segment_in, segment_out) if sid is not None]
