"""Distributed Colibri service (Appendix D).

A core AS handling very many reservations can decompose its CServ:

* the **coordinator** sub-service handles all SegReqs (they need the
  complete per-egress view);
* **ingress sub-services** handle EEReqs arriving on a given ingress
  interface;
* **egress sub-services** (transfer ASes only) handle the outgoing-SegR
  side of transfer admissions.

The decomposition is sound because "the decision of an AS to admit an
EER depends only on the state of the adjacent SegRs used in the
requested reservation" — so a load balancer may shard EEReqs freely as
long as "all EEReqs based on the same underlying SegR are processed by
the same sub-service".

:class:`DistributedCServ` implements that sharding in front of a regular
:class:`~repro.control.cserv.ColibriService`.  Sub-services are modelled
as independent workers with their own queues and counters; the
correctness invariant (same SegR -> same worker) is enforced by hashing
the underlying SegR ID, and verified by tests.  The Fig. 3/4 benches use
the worker counters to show the load spreads evenly, which is what makes
the "scaled out to multiple cores … and distributed across multiple
CServ replicas" claim (§6.2) credible.
"""

from __future__ import annotations

from repro.control.cserv import ColibriService
from repro.errors import ReservationNotFound
from repro.reservation.ids import ReservationId


class _SubService:
    """One worker: processes requests routed to it and keeps stats."""

    def __init__(self, name: str, parent: ColibriService):
        self.name = name
        self.parent = parent
        self.handled = 0

    def handle(self, method: str, *args, **kwargs):
        self.handled += 1
        return getattr(self.parent, method)(*args, **kwargs)


class DistributedCServ:
    """Shards one AS's control-plane load across sub-services.

    Exposes the same handler methods as :class:`ColibriService`, so it
    can be registered on the message bus in its place.
    """

    def __init__(
        self, parent: ColibriService, eer_workers: int = 4, egress_workers: int = 0
    ):
        if eer_workers < 1:
            raise ValueError(f"need at least one EER worker, got {eer_workers}")
        self.parent = parent
        self.coordinator = _SubService("coordinator", parent)
        self.eer_workers = [
            _SubService(f"eer-{index}", parent) for index in range(eer_workers)
        ]
        #: Egress sub-services (Appendix D: "only necessary at transfer
        #: ASes"): they co-decide transfer admissions on the outgoing
        #: SegR's state.  With 0 (non-transfer ASes) the ingress worker
        #: handles everything.
        self.egress_workers = [
            _SubService(f"egress-{index}", parent) for index in range(egress_workers)
        ]
        #: SegR id -> worker index; populated deterministically by hashing
        #: so restarts keep the assignment stable.
        self._assignment_log: dict[ReservationId, int] = {}
        self._egress_log: dict[ReservationId, int] = {}
        parent.bus.register(parent.isd_as, self)

    # -- routing -------------------------------------------------------------------

    def _worker_for(self, segment_ids: tuple) -> _SubService:
        """The load-balancer rule: shard by the underlying SegR.

        We key on the first SegR this AS stores out of the request's
        list — for a transfer AS that is the *incoming* SegR, matching
        Appendix D's ingress sub-service.
        """
        for segment_id in segment_ids:
            if self.parent.store.has_segment(segment_id):
                index = hash(segment_id) % len(self.eer_workers)
                self._assignment_log[segment_id] = index
                return self.eer_workers[index]
        # Unknown SegRs fail admission anyway; give them to worker 0.
        return self.eer_workers[0]

    def _egress_for(self, segment_ids: tuple):
        """At a transfer AS, the second stored SegR is the outgoing one;
        its admission state belongs to a dedicated egress sub-service
        (Appendix D splits the transfer decision into '(i) admission
        based on the incoming SegR, and (ii) admission based on the
        outgoing SegR')."""
        if not self.egress_workers:
            return None
        stored = [
            sid for sid in segment_ids if self.parent.store.has_segment(sid)
        ]
        if len(stored) < 2:
            return None  # not a transfer request: no egress side
        egress_segment = stored[1]
        index = hash(egress_segment) % len(self.egress_workers)
        self._egress_log[egress_segment] = index
        return self.egress_workers[index]

    def assignment_of(self, segment_id: ReservationId):
        """Which ingress worker handles EEReqs over a SegR."""
        return self._assignment_log.get(segment_id)

    def egress_assignment_of(self, segment_id: ReservationId):
        """Which egress worker co-decides over an outgoing SegR."""
        return self._egress_log.get(segment_id)

    # -- bus-facing handlers (same surface as ColibriService) ------------------------

    def handle_seg_setup(self, request, auth, hop_index):
        return self.coordinator.handle("handle_seg_setup", request, auth, hop_index)

    def handle_seg_renewal(self, request, auth, hop_index):
        return self.coordinator.handle("handle_seg_renewal", request, auth, hop_index)

    def handle_seg_activation(self, request, auth, hop_index):
        return self.coordinator.handle(
            "handle_seg_activation", request, auth, hop_index
        )

    def handle_seg_teardown(self, request, auth, hop_index):
        return self.coordinator.handle("handle_seg_teardown", request, auth, hop_index)

    def handle_seg_abort(self, request, auth):
        return self.coordinator.handle("handle_seg_abort", request, auth)

    def handle_eer_setup(self, request, auth, hop_index):
        egress = self._egress_for(request.segment_ids)
        if egress is not None:
            egress.handled += 1  # the egress side of a transfer decision
        worker = self._worker_for(request.segment_ids)
        return worker.handle("handle_eer_setup", request, auth, hop_index)

    def handle_eer_renewal(self, request, auth, hop_index):
        try:
            reservation = self.parent.store.get_eer(request.reservation)
            segment_ids = reservation.segment_ids
        except ReservationNotFound:
            # Renewal of an EER we never stored: admission rejects it
            # downstream; route deterministically via worker 0.
            segment_ids = ()
        worker = self._worker_for(segment_ids)
        return worker.handle("handle_eer_renewal", request, auth, hop_index)

    def handle_eer_abort(self, request, auth):
        # Same-SegR-same-worker invariant: the abort must reach the
        # worker whose admission state holds the EER's allocations.
        try:
            reservation = self.parent.store.get_eer(request.reservation)
            segment_ids = reservation.segment_ids
        except ReservationNotFound:
            segment_ids = ()
        worker = self._worker_for(segment_ids)
        return worker.handle("handle_eer_abort", request, auth)

    def query_registry(self, first_as, last_as, requester):
        return self.coordinator.handle("query_registry", first_as, last_as, requester)

    # -- observability ---------------------------------------------------------------

    def load_report(self) -> dict:
        return {
            "coordinator": self.coordinator.handled,
            **{worker.name: worker.handled for worker in self.eer_workers},
            **{worker.name: worker.handled for worker in self.egress_workers},
        }
