"""Colibri control plane: the CServ and its supporting machinery."""

from repro.control.billing import BillingAgent, Invoice, PricingModel, UsageLedger
from repro.control.cserv import ColibriService
from repro.control.forecast import TrafficForecaster
from repro.control.multipath import (
    FallbackResult,
    MultipathEer,
    reserve_segments_with_fallback,
)
from repro.control.dissemination import (
    RemoteQueryClient,
    SegmentDescriptor,
    SegmentRegistry,
)
from repro.control.distributed import DistributedCServ
from repro.control.protected import (
    ControlDelivery,
    build_control_packet,
    walk_control_packet,
)
from repro.control.rate_limit import RateLimiter
from repro.control.renewal import RenewalScheduler
from repro.control.retry import (
    CircuitBreaker,
    IdempotencyCache,
    PolicyTable,
    RetryingCaller,
    RetryPolicy,
)
from repro.control.rpc import FaultInjector, LinkFaults, MessageBus, Unreachable

__all__ = [
    "ColibriService",
    "MessageBus",
    "FaultInjector",
    "LinkFaults",
    "Unreachable",
    "SegmentRegistry",
    "SegmentDescriptor",
    "RemoteQueryClient",
    "RateLimiter",
    "RenewalScheduler",
    "RetryPolicy",
    "PolicyTable",
    "RetryingCaller",
    "CircuitBreaker",
    "IdempotencyCache",
    "DistributedCServ",
    "TrafficForecaster",
    "BillingAgent",
    "UsageLedger",
    "PricingModel",
    "Invoice",
    "MultipathEer",
    "FallbackResult",
    "reserve_segments_with_fallback",
    "build_control_packet",
    "walk_control_packet",
    "ControlDelivery",
]
