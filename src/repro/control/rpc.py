"""Inter-AS control-plane transport.

The paper's CServs talk "via gRPC calls on top of QUIC" (§6.1).  The
reproduction replaces the network with an in-process :class:`MessageBus`:
each AS registers its service, and a call names the destination AS and a
method.  The bus preserves what the evaluation depends on — the exact
request/response state machine and per-AS processing — while §6's
measurements explicitly "disregard propagation delays".

The bus doubles as the failure-injection point for tests: individual
ASes can be partitioned (calls to them raise) or made lossy.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import ColibriError
from repro.topology.addresses import IsdAs


class Unreachable(ColibriError):
    """The destination AS is partitioned away or not registered."""


class MessageBus:
    """Synchronous in-process RPC between per-AS services."""

    def __init__(self):
        self._services: dict[IsdAs, object] = {}
        self._partitioned: set = set()
        self.calls = 0
        self.calls_by_method: dict[str, int] = defaultdict(int)

    def register(self, isd_as: IsdAs, service: object) -> None:
        self._services[isd_as] = service

    def service_of(self, isd_as: IsdAs) -> object:
        service = self._services.get(isd_as)
        if service is None:
            raise Unreachable(f"no service registered for AS {isd_as}")
        return service

    def call(self, isd_as: IsdAs, method: str, *args, **kwargs):
        """Invoke ``method`` on the service of ``isd_as``."""
        if isd_as in self._partitioned:
            raise Unreachable(f"AS {isd_as} is partitioned")
        service = self.service_of(isd_as)
        handler = getattr(service, method, None)
        if handler is None:
            raise ColibriError(
                f"service of AS {isd_as} has no control-plane method {method!r}"
            )
        self.calls += 1
        self.calls_by_method[method] += 1
        return handler(*args, **kwargs)

    # -- failure injection ---------------------------------------------------------

    def partition(self, isd_as: IsdAs) -> None:
        """Make an AS unreachable (network partition / service crash)."""
        self._partitioned.add(isd_as)

    def heal(self, isd_as: IsdAs) -> None:
        self._partitioned.discard(isd_as)
