"""Inter-AS control-plane transport.

The paper's CServs talk "via gRPC calls on top of QUIC" (§6.1).  The
reproduction replaces the network with an in-process :class:`MessageBus`:
each AS registers its service, and a call names the destination AS and a
method.  The bus preserves what the evaluation depends on — the exact
request/response state machine and per-AS processing — while §6's
measurements explicitly "disregard propagation delays".

The bus doubles as the failure-injection point for tests: individual
ASes can be partitioned (calls to them raise), links can be made lossy
(per-link request/response loss from a seeded RNG), calls can be delayed
against virtual latency budgets, and ASes can flap (deterministic
call-window outages).  All injection is deterministic: loss draws come
from one ``random.Random(seed)`` owned by the :class:`FaultInjector`,
latency is virtual (never the wall clock), and flaps are keyed to the
bus's call counter — the same seed always produces the same failure
trace (see docs/robustness.md).

A *request* loss raises :class:`Unreachable` before the handler runs; a
*response* loss (or a blown latency budget, :class:`CallTimeout`) raises
*after* the handler ran — the destination committed state the caller
never learned about.  The distinction is what makes the retry layer's
idempotency caching (:mod:`repro.control.retry`) necessary and testable.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from repro.errors import CallTimeout, ColibriError, TransportError, Unreachable
from repro.obs.distributed import TraceContext
from repro.topology.addresses import IsdAs

__all__ = ["FaultInjector", "LinkFaults", "MessageBus", "Unreachable"]


@dataclass(frozen=True)
class LinkFaults:
    """Failure characteristics of one (caller, destination) link.

    ``request_loss`` drops the call before the handler runs; the callee
    never sees it.  ``response_loss`` drops the answer after the handler
    ran and committed — the adversarial case for idempotency.
    ``latency`` is virtual seconds charged per direction against the
    caller's latency budget (the bus never sleeps).
    """

    request_loss: float = 0.0
    response_loss: float = 0.0
    latency: float = 0.0

    def __post_init__(self):
        for name in ("request_loss", "response_loss"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")


@dataclass(frozen=True)
class _Flap:
    """A scheduled transient outage of one AS, in bus-call counts."""

    isd_as: IsdAs
    start_call: int
    end_call: int


class FaultInjector:
    """Deterministic failure plan for a :class:`MessageBus`.

    Faults are looked up most-specific first: exact ``(caller, dest)``
    link, then ``(None, dest)``, then ``(caller, None)``, then the
    default.  All probabilistic draws come from one seeded RNG so a
    fixed seed replays the exact same loss pattern.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._links: dict = {}  # (caller|None, dest|None) -> LinkFaults
        self._default = LinkFaults()
        self._flaps: list[_Flap] = []
        self.injected = defaultdict(int)  # kind -> count

    # -- plan construction ---------------------------------------------------------

    def set_default(self, faults: LinkFaults) -> None:
        """Faults applied to every link without a more specific entry."""
        self._default = faults

    def set_link(
        self,
        caller: Optional[IsdAs],
        dest: Optional[IsdAs],
        faults: LinkFaults,
    ) -> None:
        """Faults for one link; ``None`` on either side is a wildcard."""
        self._links[(caller, dest)] = faults

    def flap(self, isd_as: IsdAs, start_call: int, duration_calls: int) -> None:
        """Schedule a transient outage: ``isd_as`` is unreachable for
        calls numbered ``[start_call, start_call + duration_calls)`` of
        the bus's global call counter — deterministic without a clock."""
        self._flaps.append(
            _Flap(isd_as, start_call, start_call + duration_calls)
        )

    # -- queries the bus makes -----------------------------------------------------

    def faults_for(self, caller: Optional[IsdAs], dest: IsdAs) -> LinkFaults:
        for key in ((caller, dest), (None, dest), (caller, None)):
            faults = self._links.get(key)
            if faults is not None:
                return faults
        return self._default

    def is_flapping(self, isd_as: IsdAs, call_number: int) -> bool:
        return any(
            flap.isd_as == isd_as and flap.start_call <= call_number < flap.end_call
            for flap in self._flaps
        )

    def draw(self, probability: float) -> bool:
        if probability <= 0.0:
            return False
        return self._rng.random() < probability


class MessageBus:
    """Synchronous in-process RPC between per-AS services."""

    def __init__(self, faults: Optional[FaultInjector] = None):
        self._services: dict[IsdAs, object] = {}
        self._partitioned: set = set()
        self.calls = 0
        self.calls_by_method: dict[str, int] = defaultdict(int)
        self.faults = faults
        #: Optional :class:`repro.obs.trace.TraceCollector`; when set,
        #: every call records a ``bus.call`` span (errored on raise).
        self.tracer = None
        #: Trace contexts framing in-flight calls, innermost last — the
        #: RPC equivalent of a propagation header.  Handlers (and
        #: anything they fan out to, e.g. shard specs) read the
        #: innermost via :meth:`current_trace`.
        self._trace_frames: list = []
        #: Virtual time spent inside calls (injected latency only); the
        #: bus never touches the wall clock (§6.1 disregards propagation
        #: delay — injected latency exists purely to exercise budgets).
        self.virtual_elapsed = 0.0

    def register(self, isd_as: IsdAs, service: object) -> None:
        self._services[isd_as] = service

    def service_of(self, isd_as: IsdAs) -> object:
        service = self._services.get(isd_as)
        if service is None:
            raise Unreachable(f"no service registered for AS {isd_as}")
        return service

    def install_faults(self, faults: Optional[FaultInjector]) -> None:
        """Attach (or clear) the failure plan driving this bus."""
        self.faults = faults

    def current_trace(self) -> Optional[TraceContext]:
        """The :class:`~repro.obs.distributed.TraceContext` framing the
        in-flight call, or ``None`` outside any traced call.  This is
        the bus's propagation header: a handler that fans work out
        across a process boundary (shard specs, nested buses) forwards
        it so the remote spans graft onto the caller's trace."""
        return self._trace_frames[-1] if self._trace_frames else None

    def call(
        self,
        isd_as: IsdAs,
        method: str,
        *args,
        caller: Optional[IsdAs] = None,
        timeout: Optional[float] = None,
        trace: Optional[TraceContext] = None,
        **kwargs,
    ):
        """Invoke ``method`` on the service of ``isd_as``.

        ``caller`` selects the per-link fault entry; ``timeout`` is a
        virtual-latency budget in seconds — when the injected latency of
        the call (including nested downstream calls) exceeds it, the
        call raises :class:`CallTimeout` *after* the handler ran, i.e.
        the response was too late, not the request.

        ``trace`` is a framing field, not a handler argument: the bus
        consumes it (never forwarding it into ``kwargs``) and exposes it
        to the handler via :meth:`current_trace`.  When omitted and the
        tracer is armed, the call's own ``bus.call`` span becomes the
        propagated context — so downstream work parents correctly even
        when no caller threaded a context explicitly.
        """
        tracer = self.tracer
        if tracer is None and trace is None:
            return self._call(isd_as, method, args, caller, timeout, kwargs)
        span = None
        if tracer is not None:
            attributes = {"method": method, "dest": str(isd_as)}
            if caller is not None:
                attributes["caller"] = str(caller)
            span = tracer.start("bus.call", attributes)
            if trace is None and span is not None:
                trace = TraceContext.from_span(span)
        self._trace_frames.append(trace)
        try:
            result = self._call(isd_as, method, args, caller, timeout, kwargs)
        except BaseException as error:
            if tracer is not None:
                tracer.finish(span, status="error", error=type(error).__name__)
            raise
        finally:
            self._trace_frames.pop()
        if tracer is not None:
            tracer.finish(span)
        return result

    def _call(
        self,
        isd_as: IsdAs,
        method: str,
        args: tuple,
        caller: Optional[IsdAs],
        timeout: Optional[float],
        kwargs: dict,
    ):
        self.calls += 1
        call_number = self.calls
        self.calls_by_method[method] += 1
        faults = self.faults
        link = faults.faults_for(caller, isd_as) if faults is not None else None

        if faults is not None and faults.is_flapping(isd_as, call_number):
            faults.injected["flap"] += 1
            raise Unreachable(f"AS {isd_as} is flapping (call {call_number})")
        if isd_as in self._partitioned:
            raise Unreachable(f"AS {isd_as} is partitioned")
        if link is not None and faults.draw(link.request_loss):
            faults.injected["request_loss"] += 1
            raise Unreachable(f"request to AS {isd_as} lost in transit")

        service = self.service_of(isd_as)
        handler = getattr(service, method, None)
        if handler is None:
            raise ColibriError(
                f"service of AS {isd_as} has no control-plane method {method!r}"
            )

        started = self.virtual_elapsed
        if link is not None:
            self.virtual_elapsed += link.latency  # request leg
        result = handler(*args, **kwargs)
        if link is not None:
            self.virtual_elapsed += link.latency  # response leg
        elapsed = self.virtual_elapsed - started

        # From here on the handler HAS run: any failure is a lost/late
        # response and the destination holds state the caller never saw.
        if link is not None and faults.draw(link.response_loss):
            faults.injected["response_loss"] += 1
            raise Unreachable(f"response from AS {isd_as} lost in transit")
        if timeout is not None and elapsed > timeout:
            if faults is not None:
                faults.injected["timeout"] += 1
            raise CallTimeout(
                f"call {method!r} to AS {isd_as} took {elapsed:.3f}s of "
                f"injected latency against a {timeout:.3f}s budget"
            )
        return result

    # -- failure injection ---------------------------------------------------------

    def partition(self, isd_as: IsdAs) -> None:
        """Make an AS unreachable (network partition / service crash)."""
        self._partitioned.add(isd_as)

    def heal(self, isd_as: IsdAs) -> None:
        self._partitioned.discard(isd_as)
