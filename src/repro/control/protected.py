"""Protected control traffic: control messages as real SegR packets.

"The only packets that are sent over SegRs are control-plane packets
(SegR renewal and EER setup requests)" (§4.5) — and riding the SegR is
what makes them immune to best-effort floods (§5.3).  On the wire such a
packet is an ordinary Colibri SEGMENT packet: Path + ResInfo from the
SegR, the Eq. (3) tokens as HVFs, and the serialized control message as
payload.  Border routers validate the token statelessly and hand the
packet to the local CServ (Verdict.DELIVER_CSERV, §4.6).

The hop-by-hop *processing* of the message itself stays on the
:class:`~repro.control.rpc.MessageBus` (our gRPC stand-in, DESIGN.md §2);
this module provides the packet-level envelope so the data-plane
protection of control traffic is real and testable:

* :func:`build_control_packet` — initiator side;
* :func:`walk_control_packet` — drive it through every border router.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataplane.router import Verdict
from repro.errors import ReservationExpired
from repro.packets.colibri import ColibriPacket, PacketType
from repro.packets.control import ControlMessage
from repro.packets.fields import PathField, ResInfo, Timestamp
from repro.reservation.ids import ReservationId


@dataclass
class ControlDelivery:
    """Outcome of walking a control packet along its SegR."""

    delivered: bool
    verdicts: list  # [(IsdAs, Verdict)]

    @property
    def dropped_at(self):
        for isd_as, verdict in self.verdicts:
            if verdict.is_drop:
                return isd_as
        return None


def build_control_packet(
    cserv, segment_id: ReservationId, message: ControlMessage
) -> ColibriPacket:
    """Wrap a control message in a packet riding the given SegR.

    Only the SegR's initiator holds the Eq. (3) tokens (returned at
    setup/renewal), so only it can emit valid control packets — exactly
    the §5.3 property that keeps renewals DoC-proof.
    """
    reservation = cserv.store.get_segment(segment_id)
    now = cserv.clock.now()
    if reservation.is_expired(now):
        raise ReservationExpired(f"SegR {segment_id} has expired")
    tokens = cserv.segment_tokens(segment_id)
    active = reservation.active
    res_info = ResInfo(
        reservation=segment_id,
        bandwidth=active.bandwidth,
        expiry=active.expiry,
        version=active.version,
    )
    return ColibriPacket(
        packet_type=PacketType.SEGMENT,
        path=PathField.from_hops(reservation.segment.hops),
        res_info=res_info,
        timestamp=Timestamp.create(now, active.expiry),
        hvfs=list(tokens),
        payload=message.to_bytes(),
    )


def walk_control_packet(network, packet: ColibriPacket) -> ControlDelivery:
    """Push a SegR control packet through every on-path border router.

    At each AS the router validates the Eq. (3) token and delivers to
    the local CServ (§4.6); the CServ would process the payload and
    re-inject towards the next hop — modelled here by advancing the hop
    pointer and continuing.
    """
    source_cserv = network.cserv(packet.res_info.src_as)
    reservation = source_cserv.store.get_segment(packet.res_info.reservation)
    hops = reservation.segment.hops
    verdicts = []
    while True:
        isd_as = hops[packet.hop_index].isd_as
        result = network.router(isd_as).process(packet)
        verdicts.append((isd_as, result.verdict))
        if result.verdict is not Verdict.DELIVER_CSERV:
            return ControlDelivery(delivered=False, verdicts=verdicts)
        if packet.hop_index == packet.hop_count - 1:
            return ControlDelivery(delivered=True, verdicts=verdicts)
        packet.advance_hop()
