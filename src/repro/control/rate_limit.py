"""CServ request rate limiting (§4.2, §5.3).

Two limiters defend the control plane:

* :class:`RateLimiter` — per-key (usually per source AS) token-bucket on
  request *counts*: "the CServ can very efficiently filter unauthentic
  packets and employ per-AS rate limiting" against DoC floods;
* the same class keyed by reservation ID implements the per-EER renewal
  limit — "CServs can rate-limit the amount of renewal requests for an
  EER (e.g., to one per second)".
"""

from __future__ import annotations

from repro.errors import RateLimited


class RateLimiter:
    """Per-key token bucket counting requests per second."""

    def __init__(self, rate_per_second: float, burst: float = None):
        if rate_per_second <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_second}")
        self.rate = rate_per_second
        self.burst = burst if burst is not None else max(1.0, rate_per_second)
        self._state: dict = {}  # key -> (tokens, last_update)
        self.rejected = 0

    def allow(self, key, now: float) -> bool:
        """Consume one request slot for ``key``; False = rate limited."""
        tokens, updated = self._state.get(key, (self.burst, now))
        tokens = min(self.burst, tokens + (now - updated) * self.rate)
        if tokens >= 1.0:
            self._state[key] = (tokens - 1.0, now)
            return True
        self._state[key] = (tokens, now)
        self.rejected += 1
        return False

    def check(self, key, now: float) -> None:
        """Like :meth:`allow` but raises :class:`RateLimited`."""
        if not self.allow(key, now):
            raise RateLimited(f"request rate for {key} exceeded {self.rate}/s")

    def forget(self, key) -> None:
        """Drop state for a key (e.g. an expired reservation)."""
        self._state.pop(key, None)

    def tracked_keys(self) -> int:
        return len(self._state)
