"""Neighbor-to-neighbor settlement (§4.7, §9).

"Any two neighboring ASes agree on the bandwidth available for Colibri
traffic on their inter-domain link and negotiate the pricing model.
These typically long-term contractual agreements — in the order of
months — are always bilateral" … "billing can be implemented with
scalable neighbor-to-neighbor settlements, similarly to today's AS
peering agreements" (§9).

The model: each AS keeps a :class:`UsageLedger` per neighbor interface.
Whenever a SegR is granted (or renewed) over an interface pair, the
ledger accrues *reserved bandwidth × time* against the upstream
neighbor the traffic arrives from — the locality property the paper
stresses: no end-to-end information, no multilateral clearing.  At the
end of a billing period, :meth:`UsageLedger.settle` prices the accrued
gigabit-seconds under the bilateral :class:`PricingModel` and emits an
:class:`Invoice`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.reservation.ids import ReservationId
from repro.topology.addresses import IsdAs
from repro.util.units import GBPS


@dataclass(frozen=True)
class PricingModel:
    """One bilateral contract: price per gigabit-second, plus a flat
    per-period base fee (the 'long-term contractual agreement')."""

    price_per_gbit_second: float
    base_fee: float = 0.0

    def price(self, gbit_seconds: float) -> float:
        if gbit_seconds < 0:
            raise ValueError(f"usage must be non-negative, got {gbit_seconds}")
        return self.base_fee + gbit_seconds * self.price_per_gbit_second


@dataclass(frozen=True)
class Invoice:
    """One settlement: issuer bills neighbor for a closed period."""

    issuer: IsdAs
    neighbor: IsdAs
    period_start: float
    period_end: float
    gbit_seconds: float
    amount: float
    line_items: tuple  # ((reservation_id, gbit_seconds), ...) largest first


@dataclass
class _Accrual:
    """An open accrual for one reservation's current bandwidth."""

    reservation_id: ReservationId
    bandwidth: float  # bits per second currently reserved
    since: float  # accruing from this time


class UsageLedger:
    """Per-neighbor accrual of reserved bandwidth x time.

    Driven by three events: :meth:`start` when a SegR is granted,
    :meth:`adjust` when a renewal activates a different bandwidth, and
    :meth:`stop` when it expires or is torn down.  :meth:`settle` closes
    the period.
    """

    def __init__(self, issuer: IsdAs, neighbor: IsdAs, pricing: PricingModel):
        self.issuer = issuer
        self.neighbor = neighbor
        self.pricing = pricing
        self._open: dict[ReservationId, _Accrual] = {}
        self._closed_gbit_seconds: dict[ReservationId, float] = {}
        self._period_start: Optional[float] = None

    def _accrue(self, accrual: _Accrual, until: float) -> None:
        elapsed = max(0.0, until - accrual.since)
        gbit_seconds = accrual.bandwidth * elapsed / GBPS
        self._closed_gbit_seconds[accrual.reservation_id] = (
            self._closed_gbit_seconds.get(accrual.reservation_id, 0.0) + gbit_seconds
        )
        accrual.since = until

    def start(self, reservation_id: ReservationId, bandwidth: float, now: float) -> None:
        if self._period_start is None:
            self._period_start = now
        existing = self._open.get(reservation_id)
        if existing is not None:
            self._accrue(existing, now)
            existing.bandwidth = bandwidth
            return
        self._open[reservation_id] = _Accrual(
            reservation_id=reservation_id, bandwidth=bandwidth, since=now
        )

    def adjust(self, reservation_id: ReservationId, bandwidth: float, now: float) -> None:
        """A renewal activated a new bandwidth: close the old accrual
        rate and continue at the new one."""
        accrual = self._open.get(reservation_id)
        if accrual is None:
            self.start(reservation_id, bandwidth, now)
            return
        self._accrue(accrual, now)
        accrual.bandwidth = bandwidth

    def stop(self, reservation_id: ReservationId, now: float) -> None:
        accrual = self._open.pop(reservation_id, None)
        if accrual is not None:
            self._accrue(accrual, now)

    def accrued_gbit_seconds(self, now: float) -> float:
        total = sum(self._closed_gbit_seconds.values())
        for accrual in self._open.values():
            total += accrual.bandwidth * max(0.0, now - accrual.since) / GBPS
        return total

    def settle(self, now: float) -> Invoice:
        """Close the billing period and emit the invoice."""
        for accrual in self._open.values():
            self._accrue(accrual, now)
        items = sorted(
            self._closed_gbit_seconds.items(), key=lambda kv: kv[1], reverse=True
        )
        total = sum(usage for _, usage in items)
        invoice = Invoice(
            issuer=self.issuer,
            neighbor=self.neighbor,
            period_start=self._period_start if self._period_start is not None else now,
            period_end=now,
            gbit_seconds=total,
            amount=self.pricing.price(total),
            line_items=tuple(items),
        )
        self._closed_gbit_seconds.clear()
        self._period_start = now if self._open else None
        return invoice


class BillingAgent:
    """One AS's billing state: a ledger per neighbor interface.

    Hook it to a CServ by calling :meth:`on_grant` / :meth:`on_adjust` /
    :meth:`on_release` from the reservation lifecycle (the integration
    tests show the wiring).  The ingress interface identifies which
    bilateral contract the usage bills to — the neighbor the Colibri
    traffic arrives from pays, mirroring provider-customer settlement.
    """

    def __init__(self, isd_as: IsdAs, default_pricing: PricingModel):
        self.isd_as = isd_as
        self.default_pricing = default_pricing
        self._pricing: dict[IsdAs, PricingModel] = {}
        self._ledgers: dict[IsdAs, UsageLedger] = {}

    def set_pricing(self, neighbor: IsdAs, pricing: PricingModel) -> None:
        self._pricing[neighbor] = pricing

    def ledger_for(self, neighbor: IsdAs) -> UsageLedger:
        ledger = self._ledgers.get(neighbor)
        if ledger is None:
            pricing = self._pricing.get(neighbor, self.default_pricing)
            ledger = UsageLedger(self.isd_as, neighbor, pricing)
            self._ledgers[neighbor] = ledger
        return ledger

    def on_grant(
        self, neighbor: IsdAs, reservation_id: ReservationId, bandwidth: float, now: float
    ) -> None:
        self.ledger_for(neighbor).start(reservation_id, bandwidth, now)

    def on_adjust(
        self, neighbor: IsdAs, reservation_id: ReservationId, bandwidth: float, now: float
    ) -> None:
        self.ledger_for(neighbor).adjust(reservation_id, bandwidth, now)

    def on_release(self, neighbor: IsdAs, reservation_id: ReservationId, now: float) -> None:
        self.ledger_for(neighbor).stop(reservation_id, now)

    def settle_all(self, now: float) -> list:
        """Close the period with every neighbor; returns the invoices."""
        return [
            ledger.settle(now)
            for ledger in self._ledgers.values()
        ]
