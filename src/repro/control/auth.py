"""Control-plane message authentication with DRKey (§4.5).

"The source AS calculates a MAC over the payload for each on-path AS,
using the key K_{AS_i -> SrcAS}.  AS_i can then efficiently recompute
this key on the fly and verify the authenticity of the payload.  The same
key is used to authenticate the information that AS_i itself adds to the
payload."

Key asymmetry does the heavy lifting here:

* **AS_i** (the verifier of the base payload, the author of a grant)
  *derives* ``K_{AS_i -> SrcAS}`` locally from its secret value — one
  PRF call, no state, no network;
* **the source AS** must *fetch* that key once per epoch from AS_i's key
  server — acceptable because it initiates requests deliberately, and
  impossible to exploit for DoS because the verifier side never fetches.

An :class:`AuthenticatedRequest` carries the immutable base payload, the
source's per-AS MACs over it, and a MAC per appended grant.  The response
path lets the initiator verify each AS's grant with the same keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.keyserver import KeyServerDirectory
from repro.crypto.mac import constant_time_equal, mac
from repro.dataplane.hvf import ColibriKeys
from repro.errors import MacVerificationError
from repro.packets.control import AsGrant, ControlMessage
from repro.packets.wire import Writer
from repro.topology.addresses import IsdAs


def _grant_bytes(grant: AsGrant, base: bytes) -> bytes:
    """MAC input binding a grant to the request it answers."""
    return Writer().raw(grant.isd_as.packed).f64(grant.granted).blob(base).finish()


@dataclass
class AuthenticatedRequest:
    """A control message plus its DRKey authentication material."""

    source: IsdAs
    base_payload: bytes  # the initiator's immutable message bytes
    source_macs: dict  # IsdAs -> MAC_{K_{ASi->Src}}(base_payload)
    grant_macs: list = field(default_factory=list)  # [(IsdAs, mac)] per grant

    @classmethod
    def create(
        cls,
        directory: KeyServerDirectory,
        source: IsdAs,
        on_path: list,
        message: ControlMessage,
        when: float = None,
    ) -> "AuthenticatedRequest":
        """Initiator side: fetch ``K_{ASi->Src}`` for every on-path AS
        and MAC the payload once per AS."""
        base = message.authenticated_bytes
        macs = {}
        for isd_as in on_path:
            if isd_as == source:
                continue  # no MAC to self
            key = directory.fetch_key(isd_as, source, when)
            macs[isd_as] = mac(key, base)
        return cls(source=source, base_payload=base, source_macs=macs)

    def verify_at(self, keys: ColibriKeys, when: float = None) -> None:
        """On-path AS side: derive the key on the fly and check the MAC."""
        local = keys.local_as
        if local == self.source:
            return
        tag = self.source_macs.get(local)
        if tag is None:
            raise MacVerificationError(
                f"request from {self.source} carries no MAC for AS {local}"
            )
        key = keys.control_key(self.source, when)
        if not constant_time_equal(mac(key, self.base_payload), tag):
            raise MacVerificationError(
                f"control-plane MAC from {self.source} failed at AS {local}"
            )

    def add_grant_mac(self, keys: ColibriKeys, grant: AsGrant, when: float = None) -> None:
        """On-path AS side: authenticate the grant it appends, under the
        same ``K_{ASi->Src}`` key (derived, not fetched)."""
        key = keys.control_key(self.source, when)
        self.grant_macs.append(
            (grant.isd_as, mac(key, _grant_bytes(grant, self.base_payload)))
        )

    def verify_grants(
        self,
        directory: KeyServerDirectory,
        grants: tuple,
        when: float = None,
    ) -> None:
        """Initiator side: verify every accumulated grant MAC.

        Raises on any mismatch — a transit AS manipulating another AS's
        grant is detected here, so bottleneck diagnosis can be trusted.
        """
        tags = dict()
        for isd_as, tag in self.grant_macs:
            tags[isd_as] = tag
        for grant in grants:
            if grant.isd_as == self.source:
                continue
            tag = tags.get(grant.isd_as)
            if tag is None:
                raise MacVerificationError(
                    f"grant from {grant.isd_as} carries no MAC"
                )
            key = directory.fetch_key(grant.isd_as, self.source, when)
            if not constant_time_equal(
                mac(key, _grant_bytes(grant, self.base_payload)), tag
            ):
                raise MacVerificationError(
                    f"grant MAC from {grant.isd_as} failed verification"
                )
