"""Renewal scheduling (§4.2).

Reservations expire on their own; an initiator that wants to keep one
must renew ahead of time — seamlessly for EERs (overlapping versions) and
with an explicit activation step for SegRs.  :class:`RenewalScheduler`
automates that for one CServ: tracked reservations are renewed whenever
:meth:`tick` finds them within ``lead_time`` of expiry.

The scheduler is deliberately simple — the paper notes ASes "can forecast
future requirements"; forecasting hooks in via the ``bandwidth_fn``
callbacks, which are consulted at each renewal so a traffic predictor can
resize reservations over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ColibriError, TransportError
from repro.obs.events import RESERVATION_TORN_DOWN, emit
from repro.obs.trace import traced
from repro.reservation.ids import ReservationId

#: Renew when this many seconds remain before expiry.
DEFAULT_SEGR_LEAD = 60.0
DEFAULT_EER_LEAD = 4.0


@dataclass
class _TrackedSegment:
    reservation_id: ReservationId
    bandwidth_fn: Callable[[], float]
    minimum: float


@dataclass
class _TrackedEer:
    handle: object  # EerHandle; refreshed after every renewal
    bandwidth_fn: Callable[[], float]


class RenewalScheduler:
    """Keeps a CServ's own reservations alive across expiry boundaries."""

    def __init__(
        self,
        cserv,
        segr_lead: float = DEFAULT_SEGR_LEAD,
        eer_lead: float = DEFAULT_EER_LEAD,
    ):
        self.cserv = cserv
        self.segr_lead = segr_lead
        self.eer_lead = eer_lead
        self._segments: dict[ReservationId, _TrackedSegment] = {}
        self._eers: dict[ReservationId, _TrackedEer] = {}
        self.renewals = {"segments": 0, "eers": 0, "failures": 0, "transient": 0}

    # -- registration ------------------------------------------------------------

    def track_segment(
        self,
        reservation_id: ReservationId,
        bandwidth: float = None,
        bandwidth_fn: Optional[Callable[[], float]] = None,
        minimum: float = 0.0,
    ) -> None:
        """Keep a SegR renewed; exactly one of ``bandwidth`` (fixed) or
        ``bandwidth_fn`` (forecast hook) must be given."""
        if (bandwidth is None) == (bandwidth_fn is None):
            raise ValueError("give exactly one of bandwidth or bandwidth_fn")
        if bandwidth_fn is None:
            fixed = float(bandwidth)
            bandwidth_fn = lambda: fixed  # noqa: E731 - tiny closure
        self._segments[reservation_id] = _TrackedSegment(
            reservation_id=reservation_id,
            bandwidth_fn=bandwidth_fn,
            minimum=minimum,
        )

    def track_eer(self, handle, bandwidth_fn: Optional[Callable[[], float]] = None) -> None:
        if bandwidth_fn is None:
            fixed = handle.res_info.bandwidth
            bandwidth_fn = lambda: fixed  # noqa: E731
        self._eers[handle.reservation_id] = _TrackedEer(
            handle=handle, bandwidth_fn=bandwidth_fn
        )

    def untrack(self, reservation_id: ReservationId) -> None:
        self._segments.pop(reservation_id, None)
        self._eers.pop(reservation_id, None)

    def eer_handle(self, reservation_id: ReservationId):
        """The freshest handle for a tracked EER (updated by renewals)."""
        return self._eers[reservation_id].handle

    # -- driving -----------------------------------------------------------------

    @property
    def obs(self):
        """The owning CServ's observability context (tick spans nest the
        renewal/activation spans the CServ records itself)."""
        return getattr(self.cserv, "obs", None)

    @traced("renewal.tick")
    def tick(self) -> dict:
        """Renew everything within its lead window; returns action counts.

        A vanished reservation (torn down, aborted, or swept after
        expiry) is untracked rather than renewed forever into failures —
        for EERs exactly as for SegRs.  Transport errors count separately
        from admission failures: the reservation stays tracked, because
        the next tick may reach a healed path (§4.2's overlap window
        exists precisely to ride out such gaps).
        """
        now = self.cserv.clock.now()
        actions = {"segments": 0, "eers": 0, "failures": 0, "transient": 0}
        for tracked in list(self._segments.values()):
            try:
                reservation = self.cserv.store.get_segment(tracked.reservation_id)
            except ColibriError:
                self._segments.pop(tracked.reservation_id, None)
                emit(
                    self.obs,
                    RESERVATION_TORN_DOWN,
                    isd_as=str(self.cserv.isd_as),
                    reservation=str(tracked.reservation_id),
                    kind="segment",
                    reason="vanished",
                )
                continue
            if reservation.expiry - now > self.segr_lead:
                continue
            try:
                version = self.cserv.renew_segment(
                    tracked.reservation_id, tracked.bandwidth_fn(), tracked.minimum
                )
                self.cserv.activate_segment(tracked.reservation_id, version)
                actions["segments"] += 1
                self.renewals["segments"] += 1
            except TransportError:
                actions["transient"] += 1
                self.renewals["transient"] += 1
            except ColibriError:
                actions["failures"] += 1
                self.renewals["failures"] += 1
        for tracked in list(self._eers.values()):
            eer_id = tracked.handle.reservation_id
            if not self.cserv.store.has_eer(eer_id):
                self._eers.pop(eer_id, None)
                emit(
                    self.obs,
                    RESERVATION_TORN_DOWN,
                    isd_as=str(self.cserv.isd_as),
                    reservation=str(eer_id),
                    kind="eer",
                    reason="vanished",
                )
                continue
            if tracked.handle.res_info.expiry - now > self.eer_lead:
                continue
            try:
                tracked.handle = self.cserv.renew_eer(
                    tracked.handle, tracked.bandwidth_fn()
                )
                actions["eers"] += 1
                self.renewals["eers"] += 1
            except TransportError:
                actions["transient"] += 1
                self.renewals["transient"] += 1
            except ColibriError:
                actions["failures"] += 1
                self.renewals["failures"] += 1
        return actions
