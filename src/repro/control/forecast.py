"""Traffic forecasting for SegR sizing (§3.2).

"The CServ requests and renews SegRs according to expected traffic
requirements.  Since link utilization often exhibits repeating patterns
over time, an AS can forecast future requirements and reserve
appropriate bandwidth for segments in advance."

:class:`TrafficForecaster` provides that predictor: an exponentially
weighted moving average for the trend plus per-time-of-period seasonal
buckets (daily patterns in the paper's framing; the period is
configurable so tests can compress a "day" into seconds).  Its
:meth:`forecast` plugs directly into
:class:`~repro.control.renewal.RenewalScheduler`'s ``bandwidth_fn``.
"""

from __future__ import annotations

from repro.util.clock import Clock

#: A day — the natural seasonality of link utilization.
DEFAULT_PERIOD = 24 * 3600.0
DEFAULT_BUCKETS = 24


class TrafficForecaster:
    """EWMA + seasonal-bucket bandwidth predictor."""

    def __init__(
        self,
        clock: Clock,
        period: float = DEFAULT_PERIOD,
        buckets: int = DEFAULT_BUCKETS,
        smoothing: float = 0.3,
        headroom: float = 1.2,
        floor: float = 0.0,
    ):
        if period <= 0 or buckets <= 0:
            raise ValueError("period and bucket count must be positive")
        if not 0 < smoothing <= 1:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if headroom < 1:
            raise ValueError(f"headroom must be >= 1, got {headroom}")
        self.clock = clock
        self.period = period
        self.buckets = buckets
        self.smoothing = smoothing
        self.headroom = headroom
        self.floor = floor
        self._trend: float = 0.0
        self._trend_initialized = False
        self._seasonal: list = [None] * buckets  # EWMA per bucket
        self.observations = 0

    def _bucket_of(self, when: float) -> int:
        return int((when % self.period) / self.period * self.buckets)

    def observe(self, bandwidth_used: float, when: float = None) -> None:
        """Record one utilization sample (bits per second)."""
        if bandwidth_used < 0:
            raise ValueError(f"utilization must be non-negative, got {bandwidth_used}")
        if when is None:
            when = self.clock.now()
        self.observations += 1
        if not self._trend_initialized:
            self._trend = bandwidth_used
            self._trend_initialized = True
        else:
            self._trend += self.smoothing * (bandwidth_used - self._trend)
        bucket = self._bucket_of(when)
        previous = self._seasonal[bucket]
        if previous is None:
            self._seasonal[bucket] = bandwidth_used
        else:
            self._seasonal[bucket] = previous + self.smoothing * (
                bandwidth_used - previous
            )

    def forecast(self, when: float = None) -> float:
        """Predicted bandwidth need at ``when`` (default: now), with
        headroom applied — the amount to request at the next renewal."""
        if when is None:
            when = self.clock.now()
        seasonal = self._seasonal[self._bucket_of(when)]
        if seasonal is not None:
            # Blend the time-of-period pattern with the recent trend.
            base = 0.5 * seasonal + 0.5 * self._trend
        elif self._trend_initialized:
            base = self._trend
        else:
            return self.floor  # no data yet: the configured minimum
        return max(self.floor, base * self.headroom)

    def bandwidth_fn(self, lead: float = 0.0):
        """A zero-argument callable for ``RenewalScheduler``: forecasts
        the bucket ``lead`` seconds ahead (the window the renewed SegR
        will actually serve)."""

        def predict() -> float:
            return self.forecast(self.clock.now() + lead)

        return predict
