"""Path choice and multipath reservations (§2.1).

Path-aware networking gives Colibri two abilities the paper calls out:

* **fallback** — "in case the reservation request cannot be met on the
  first path, Colibri can attempt to make a reservation on the
  alternative paths, which increases the probability of a successful
  reservation";
* **multipath** — "multiple reservations across multiple paths can also
  be used, e.g., by a multipath transport protocol."

:func:`reserve_segments_with_fallback` implements the first over a
:class:`~repro.sim.scenario.ColibriNetwork`;
:class:`MultipathEer` implements the second: several EERs over distinct
SegR chains with weighted scheduling and failover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import AdmissionDenied, ColibriError, InsufficientBandwidth, NoPathError
from repro.topology.addresses import HostAddr, IsdAs


@dataclass
class FallbackResult:
    """What :func:`reserve_segments_with_fallback` achieved."""

    reservations: list  # SegmentReservation records of the winning path
    path_index: int  # which candidate path succeeded (0 = first choice)
    attempts: int  # paths tried
    failures: list  # [(path, error)] for the paths that did not admit


def reserve_segments_with_fallback(
    network,
    source: IsdAs,
    destination: IsdAs,
    bandwidth: float,
    minimum: float = 0.0,
    max_paths: int = 5,
) -> FallbackResult:
    """Set up a SegR chain, falling back across alternative paths.

    Tries the candidate paths the path-aware substrate offers, shortest
    first.  A path fails cleanly — the admission rollback guarantees no
    temporary reservations linger (§3.3) — before the next is tried.
    """
    paths = network.path_lookup.paths(source, destination, limit=max_paths)
    failures = []
    for index, path in enumerate(paths):
        created = []
        try:
            for segment in path.segments:
                initiator = network.cserv(segment.first_as)
                created.append(
                    initiator.setup_segment(segment, bandwidth, minimum=minimum)
                )
            return FallbackResult(
                reservations=created,
                path_index=index,
                attempts=index + 1,
                failures=failures,
            )
        except AdmissionDenied as denial:
            failures.append((path, denial))
            # Earlier segments of this chain admitted; they simply expire
            # (no explicit removal exists for SegRs, §4.2) — but free the
            # admission state right away so fallbacks see true capacity.
            for reservation in created:
                for hop in reservation.segment.hops:
                    cserv = network.cserv(hop.isd_as)
                    if cserv.store.has_segment(reservation.reservation_id):
                        cserv.seg_admission.release(reservation.reservation_id)
                        cserv.store.remove_segment(reservation.reservation_id)
                        cserv.registry.unregister(reservation.reservation_id)
    raise InsufficientBandwidth(
        f"no path from {source} to {destination} admits "
        f"{bandwidth:.0f} bps (tried {len(paths)})",
        granted=max(
            (denial.granted for _, denial in failures), default=0.0
        ),
    )


@dataclass
class _Subflow:
    handle: object  # EerHandle
    weight: float
    sent: int = 0
    delivered: int = 0
    alive: bool = True


class MultipathEer:
    """Several EERs over distinct paths, used as one logical pipe.

    Packets are scheduled across subflows by deficit weighted round
    robin on the reserved bandwidths; a subflow whose packets start
    dying (path failure, expiry) is marked dead and its share shifts to
    the survivors — the availability benefit §2.1 promises.
    """

    def __init__(self, network, source: IsdAs):
        self.network = network
        self.source = source
        self._subflows: list[_Subflow] = []
        self._deficits: list[float] = []

    @classmethod
    def establish(
        cls,
        network,
        source: IsdAs,
        destination: IsdAs,
        bandwidth_each: float,
        subflows: int = 2,
        src_host: HostAddr = HostAddr(1),
        dst_host: HostAddr = HostAddr(2),
    ) -> "MultipathEer":
        """Open up to ``subflows`` EERs over *distinct* SegR chains.

        Distinctness is judged on the AS sequence; fewer chains than
        requested is fine as long as at least one admits.
        """
        multipath = cls(network, source)
        cserv = network.cserv(source)
        candidates = {}
        for descriptors, path in cserv.find_segment_chains(
            destination, limit=subflows * 3
        ):
            candidates.setdefault(path.ases, (descriptors, path))
        # Prefer maximally AS-disjoint chains: subflows that share no
        # transit AS share no fate (§2.1).
        from repro.topology.selection import most_disjoint

        ordered = most_disjoint(
            [path for _, path in candidates.values()], count=len(candidates)
        )
        for path in ordered:
            descriptors, path = candidates[path.ases]
            try:
                handle = cserv.setup_eer(
                    destination,
                    src_host,
                    dst_host,
                    bandwidth_each,
                    chain=(descriptors, path),
                )
            except ColibriError:
                continue
            multipath.add_subflow(handle)
            if len(multipath._subflows) >= subflows:
                break
        if not multipath._subflows:
            raise NoPathError(
                f"no EER could be established from {source} to {destination}"
            )
        return multipath

    def add_subflow(self, handle, weight: Optional[float] = None) -> None:
        if weight is None:
            weight = handle.res_info.bandwidth
        self._subflows.append(_Subflow(handle=handle, weight=weight))
        self._deficits.append(0.0)

    @property
    def subflow_count(self) -> int:
        return len(self._subflows)

    def live_subflows(self) -> list:
        return [subflow for subflow in self._subflows if subflow.alive]

    @property
    def aggregate_bandwidth(self) -> float:
        return sum(s.handle.res_info.bandwidth for s in self.live_subflows())

    def _pick(self) -> int:
        """Deficit-weighted choice among live subflows."""
        live = [
            (index, subflow)
            for index, subflow in enumerate(self._subflows)
            if subflow.alive
        ]
        if not live:
            raise ColibriError("all multipath subflows are dead")
        total = sum(subflow.weight for _, subflow in live)
        for index, subflow in live:
            self._deficits[index] += subflow.weight / total
        index = max(live, key=lambda pair: self._deficits[pair[0]])[0]
        self._deficits[index] -= 1.0
        return index

    def send(self, payload: bytes):
        """Send one packet over the next scheduled subflow; on network
        drop, mark the subflow dead and retry over a survivor."""
        while True:
            index = self._pick()
            subflow = self._subflows[index]
            subflow.sent += 1
            try:
                report = self.network.send(self.source, subflow.handle, payload)
            except ColibriError:
                subflow.alive = False
                continue
            if report.delivered:
                subflow.delivered += 1
                return report
            subflow.alive = False

    def distribution(self) -> dict:
        """Delivered-packet counts per subflow path (for tests/telemetry)."""
        return {
            tuple(hop.isd_as for hop in subflow.handle.hops): subflow.delivered
            for subflow in self._subflows
        }
