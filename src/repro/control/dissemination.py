"""SegR registration and hierarchical dissemination (Appendix C).

"Once a SegR is established, the initiator can choose to share it
publicly by registering it at its CServ along with a whitelist of ASes
that are allowed to use the SegR to create EERs.  An end host can then
query its local CServ for SegRs to the intended destination, which looks
up SegRs in its database and contacts remote CServs if necessary […]
These additional SegRs are then also cached at the local CServ."

:class:`SegmentRegistry` is the per-CServ database; the remote-query and
caching side is :class:`RemoteQueryClient`, which a CServ drives from
:meth:`repro.control.cserv.ColibriService.find_segment_chain`.  Entries
travel between CServs as plain :class:`SegmentDescriptor` values (no
live object sharing — the consumer AS never holds another AS's
reservation state, only the public description).

Remote queries go through the CServ's retrying caller
(:mod:`repro.control.retry`), so a lossy link costs a bounded number of
re-asks.  A query that still fails falls back to the cached previous
answer even past its freshness window (descriptors carry their own
expiry, and a stale-but-valid SegR beats no path at all); with nothing
cached the transport error propagates, so callers can tell "the remote
CServ is unreachable" apart from "the remote CServ knows no SegRs".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from repro.errors import ColibriError, TransportError
from repro.obs.trace import traced
from repro.reservation.ids import ReservationId
from repro.reservation.segment import SegmentReservation
from repro.topology.addresses import IsdAs
from repro.topology.segments import Segment
from repro.util.clock import Clock


@dataclass(frozen=True)
class SegmentDescriptor:
    """The public description of a registered SegR."""

    reservation_id: ReservationId
    segment: Segment
    bandwidth: float
    expiry: float
    version: int

    @property
    def first_as(self) -> IsdAs:
        return self.segment.first_as

    @property
    def last_as(self) -> IsdAs:
        return self.segment.last_as

    def is_expired(self, now: float) -> bool:
        return now >= self.expiry

    @classmethod
    def of(cls, reservation: SegmentReservation) -> "SegmentDescriptor":
        active = reservation.active
        return cls(
            reservation_id=reservation.reservation_id,
            segment=reservation.segment,
            bandwidth=active.bandwidth,
            expiry=active.expiry,
            version=active.version,
        )


class SegmentRegistry:
    """Registered SegRs of one CServ, indexed by endpoint pair.

    ``whitelist=None`` means public; otherwise only listed ASes may learn
    of (and thus build EERs over) the SegR.
    """

    def __init__(self):
        self._by_pair: dict = defaultdict(dict)  # (first, last) -> {res_id: desc}
        self._whitelists: dict[ReservationId, Optional[frozenset]] = {}

    def register(
        self, descriptor: SegmentDescriptor, whitelist: Optional[set] = None
    ) -> None:
        key = (descriptor.first_as, descriptor.last_as)
        self._by_pair[key][descriptor.reservation_id] = descriptor
        self._whitelists[descriptor.reservation_id] = (
            frozenset(whitelist) if whitelist is not None else None
        )

    def update(self, descriptor: SegmentDescriptor) -> None:
        """Refresh a descriptor after renewal/activation, keeping the
        existing whitelist."""
        key = (descriptor.first_as, descriptor.last_as)
        if descriptor.reservation_id not in self._by_pair[key]:
            raise KeyError(f"SegR {descriptor.reservation_id} is not registered")
        self._by_pair[key][descriptor.reservation_id] = descriptor

    def unregister(self, reservation_id: ReservationId) -> None:
        for bucket in self._by_pair.values():
            bucket.pop(reservation_id, None)
        self._whitelists.pop(reservation_id, None)

    def query(
        self,
        first_as: IsdAs,
        last_as: IsdAs,
        requester: IsdAs,
        now: float,
    ) -> list:
        """Usable descriptors from ``first_as`` to ``last_as`` for
        ``requester``, freshest (latest expiry) first."""
        bucket = self._by_pair.get((first_as, last_as), {})
        result = []
        for descriptor in bucket.values():
            if descriptor.is_expired(now):
                continue
            whitelist = self._whitelists.get(descriptor.reservation_id)
            if whitelist is not None and requester not in whitelist:
                continue
            result.append(descriptor)
        result.sort(key=lambda d: d.expiry, reverse=True)
        return result

    def destinations_from(self, first_as: IsdAs) -> list:
        """All last-AS endpoints registered from ``first_as``."""
        return sorted(
            last for (first, last), bucket in self._by_pair.items()
            if first == first_as and bucket
        )

    def sweep_expired(self, now: float) -> int:
        removed = 0
        for bucket in self._by_pair.values():
            stale = [rid for rid, desc in bucket.items() if desc.is_expired(now)]
            for rid in stale:
                del bucket[rid]
                self._whitelists.pop(rid, None)
                removed += 1
        return removed

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._by_pair.values())


#: How long cached remote SegR descriptors stay fresh (Appendix C).
REMOTE_CACHE_TTL = 10.0


class RemoteQueryClient:
    """Hierarchical descriptor lookup with caching (Appendix C).

    Resolution order: the local registry, then the freshness-bounded
    cache of earlier remote answers, then a remote ``query_registry``
    call issued through ``caller`` (a retrying caller or the raw bus —
    anything with the same ``call`` signature).  When the remote query
    fails at the transport layer, unexpired descriptors from a stale
    cache entry are served instead (they remain individually valid until
    their own expiry); only with an empty cache does the transport error
    propagate.  Authoritative remote refusals still degrade to "no
    remote SegRs known".
    """

    def __init__(
        self,
        caller,
        registry: SegmentRegistry,
        clock: Clock,
        isd_as: IsdAs,
        cache_ttl: float = REMOTE_CACHE_TTL,
    ):
        self.caller = caller
        self.registry = registry
        self.clock = clock
        self.isd_as = isd_as
        self.cache_ttl = cache_ttl
        self._cache: dict = {}  # (first, last) -> (descriptors, fetched_at)
        self.remote_queries = 0
        self.remote_failures = 0
        self.stale_served = 0
        #: Optional :class:`repro.obs.ObsContext`; when set, each fetch
        #: records a ``dissemination.fetch`` span.
        self.obs = None

    @traced(
        "dissemination.fetch",
        attrs=lambda self, owner, first, last: {
            "owner": str(owner),
            "first": str(first),
            "last": str(last),
        },
    )
    def fetch(self, owner: IsdAs, first: IsdAs, last: IsdAs) -> list:
        """Local registry, then cache, then a remote CServ query."""
        now = self.clock.now()
        local = self.registry.query(first, last, self.isd_as, now)
        if local:
            return local
        cached = self._cache.get((first, last))
        if cached is not None:
            descriptors, fetched_at = cached
            fresh = [d for d in descriptors if not d.is_expired(now)]
            if fresh and now - fetched_at < self.cache_ttl:
                return fresh
        self.remote_queries += 1
        try:
            descriptors = self.caller.call(
                owner, "query_registry", first, last, self.isd_as
            )
        except TransportError:
            self.remote_failures += 1
            if cached is not None:
                stale = [d for d in cached[0] if not d.is_expired(now)]
                if stale:
                    self.stale_served += 1
                    return stale
            raise
        except ColibriError:
            self.remote_failures += 1
            return []
        self._cache[(first, last)] = (list(descriptors), now)
        return [d for d in descriptors if not d.is_expired(now)]

    def invalidate(self, descriptors: list) -> None:
        """Drop cache entries covering the given descriptors — called
        after a setup failure that smells like stale remote SegRs, so
        the retry refetches fresh state (Appendix C)."""
        for descriptor in descriptors:
            self._cache.pop((descriptor.first_as, descriptor.last_as), None)

    def cached_pairs(self) -> list:
        return sorted(self._cache)
