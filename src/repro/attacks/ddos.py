"""Volumetric DDoS orchestration (§5.1, threats 1-3 of §7.1).

Drives the three congestion vectors against a victim link —

1. best-effort floods (defeated by traffic-class isolation),
2. bogus Colibri floods (defeated by authentication),
3. reservation overuse by a rogue AS (defeated by monitoring/policing)

— and reports whether a benign reservation's traffic kept flowing.
:class:`VolumetricAttack` is the scenario driver behind both the §5
security tests and the Table 2 bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DataPlaneError
from repro.sim.scenario import ColibriNetwork
from repro.topology.addresses import IsdAs


@dataclass
class AttackOutcome:
    benign_sent: int = 0
    benign_delivered: int = 0
    attack_sent: int = 0
    attack_delivered: int = 0
    attacker_blocked: bool = False
    drop_reasons: dict = field(default_factory=dict)

    @property
    def benign_delivery_rate(self) -> float:
        return self.benign_delivered / self.benign_sent if self.benign_sent else 0.0

    @property
    def attack_delivery_rate(self) -> float:
        return self.attack_delivered / self.attack_sent if self.attack_sent else 0.0


class VolumetricAttack:
    """Overuse attack: a rogue AS floods over a legitimate reservation.

    The rogue AS's gateway "fails" to monitor (the worst case of §7.1's
    threat 3): we disable its deterministic monitor, so every flood packet
    leaves the source AS validly stamped.  Transit policing must catch it.
    """

    def __init__(
        self,
        network: ColibriNetwork,
        attacker: IsdAs,
        benign: IsdAs,
        destination: IsdAs,
    ):
        self.network = network
        self.attacker = attacker
        self.benign = benign
        self.destination = destination

    def run(
        self,
        attack_handle,
        benign_handle,
        rounds: int = 2000,
        overuse_factor: float = 10.0,
        tick: float = 0.001,
    ) -> AttackOutcome:
        """Interleave benign (conforming) and attack (overusing) traffic.

        Per tick the benign source sends exactly its reserved share while
        the attacker sends ``overuse_factor`` times its own.  Packet sizes
        are chosen so one benign packet per tick equals the reserved rate.
        """
        outcome = AttackOutcome()
        rogue_gateway = self.network.gateway(self.attacker)
        # The rogue AS does not monitor its customers (§7.1 threat 3) —
        # neither at its gateway nor at its own border router.  Catching
        # the overuse is the job of the *other* on-path ASes (§4.8).
        rogue_gateway.monitor.unwatch(attack_handle.reservation_id.packed)
        rogue_router = self.network.router(self.attacker)
        rogue_router.ofd.overuse_factor = float("inf")

        benign_bytes = int(
            benign_handle.res_info.bandwidth * tick / 8
        )
        attack_bytes_per_tick = int(
            attack_handle.res_info.bandwidth * tick * overuse_factor / 8
        )
        attack_packet = max(200, benign_bytes)
        attack_count = max(1, attack_bytes_per_tick // attack_packet)

        for _ in range(rounds):
            # Benign conforming packet.
            outcome.benign_sent += 1
            try:
                report = self.network.send(
                    self.benign, benign_handle, b"b" * max(0, benign_bytes - 120)
                )
                if report.delivered:
                    outcome.benign_delivered += 1
                else:
                    self._count_drop(outcome, report)
            except DataPlaneError:
                pass
            # Attack burst.
            for _ in range(attack_count):
                outcome.attack_sent += 1
                try:
                    report = self.network.send(
                        self.attacker,
                        attack_handle,
                        b"a" * max(0, attack_packet - 120),
                    )
                    if report.delivered:
                        outcome.attack_delivered += 1
                    else:
                        self._count_drop(outcome, report)
                except DataPlaneError:
                    # Rogue gateway re-arms its monitor? No: we unwatched,
                    # so this only happens on expiry.
                    pass
            self.network.advance(tick)

        on_path = [hop.isd_as for hop in attack_handle.hops[1:]]
        now = self.network.clock.now()
        outcome.attacker_blocked = any(
            self.network.router(isd_as).blocklist.is_blocked(self.attacker, now)
            for isd_as in on_path
        )
        return outcome

    @staticmethod
    def _count_drop(outcome: AttackOutcome, report) -> None:
        for _, verdict in report.verdicts:
            if verdict.is_drop:
                outcome.drop_reasons[verdict] = (
                    outcome.drop_reasons.get(verdict, 0) + 1
                )
