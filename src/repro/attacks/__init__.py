"""Adversary implementations for the DDoS-resilience analysis (§5).

Each attack class drives a :class:`~repro.sim.scenario.ColibriNetwork`
the way the corresponding adversary of §2's model would, and reports what
it achieved — tests then assert the paper's defence claims hold.
"""

from repro.attacks.ddos import VolumetricAttack
from repro.attacks.doc import DocAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.spoofing import SpoofingAttack

__all__ = [
    "VolumetricAttack",
    "ReplayAttack",
    "SpoofingAttack",
    "DocAttack",
]
