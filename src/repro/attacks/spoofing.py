"""Source-spoofing / bogus-traffic adversary (§5.1).

Two variants of the off-path adversary's forged Colibri traffic:

* **header forgery** — fabricate packets claiming a victim's SrcAS and
  reservation ID with guessed authentication tags; defeated by the HVF
  check (the adversary lacks every key involved);
* **tag reuse** — take an authentic packet and modify any authenticated
  field (source, bandwidth, payload size); defeated because Eqs. (4)/(6)
  bind all of them.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, replace

from repro.dataplane.router import Verdict
from repro.packets.colibri import ColibriPacket, PacketType
from repro.packets.fields import EerInfo, PathField, ResInfo, Timestamp
from repro.reservation.ids import ReservationId
from repro.sim.scenario import ColibriNetwork
from repro.topology.addresses import HostAddr, IsdAs


@dataclass
class SpoofingReport:
    sent: int = 0
    accepted: int = 0
    rejected_bad_hvf: int = 0
    rejected_other: int = 0

    @property
    def all_rejected(self) -> bool:
        return self.accepted == 0 and self.sent > 0


class SpoofingAttack:
    """Forge Colibri packets naming ``victim`` as the source AS."""

    def __init__(self, network: ColibriNetwork, victim: IsdAs, target: IsdAs, seed: int = 1):
        self.network = network
        self.victim = victim
        self.target = target  # AS whose router receives the forgeries
        self._rng = random.Random(seed)

    def forge_fresh(self, count: int, path_pairs=((0, 1), (2, 0))) -> SpoofingReport:
        """Fabricated packets with random reservation IDs and random tags."""
        report = SpoofingReport()
        router = self.network.router(self.target)
        now = self.network.clock.now()
        for _ in range(count):
            res_info = ResInfo(
                reservation=ReservationId(self.victim, self._rng.randrange(1 << 31)),
                bandwidth=1e9,
                expiry=now + 10.0,
                version=1,
            )
            packet = ColibriPacket(
                packet_type=PacketType.EER_DATA,
                path=PathField(path_pairs),
                res_info=res_info,
                timestamp=Timestamp.create(now, res_info.expiry),
                hvfs=[
                    self._rng.getrandbits(32).to_bytes(4, "big")
                    for _ in range(len(path_pairs))
                ],
                eer_info=EerInfo(HostAddr(66), HostAddr(67)),
                payload=b"attack",
            )
            report.sent += 1
            self._classify(router.process(packet).verdict, report)
        return report

    def mutate_authentic(self, packet: ColibriPacket, count: int) -> SpoofingReport:
        """Field-tampering attempts against one captured authentic packet."""
        report = SpoofingReport()
        router = self.network.router(self.target)
        mutations = [
            lambda p: setattr(p, "res_info", replace(p.res_info, bandwidth=1e12)),
            lambda p: setattr(p, "payload", p.payload + b"pad"),
            lambda p: setattr(
                p,
                "res_info",
                replace(
                    p.res_info,
                    reservation=ReservationId(
                        self.victim, (p.res_info.reservation.local_id + 1) % (1 << 31)
                    ),
                ),
            ),
            lambda p: setattr(p, "eer_info", EerInfo(HostAddr(66), HostAddr(67))),
        ]
        for index in range(count):
            mutant = copy.deepcopy(packet)
            mutant.hop_index = packet.hop_index
            mutations[index % len(mutations)](mutant)
            report.sent += 1
            self._classify(router.process(mutant).verdict, report)
        return report

    @staticmethod
    def _classify(verdict: Verdict, report: SpoofingReport) -> None:
        if verdict is Verdict.DROP_BAD_HVF:
            report.rejected_bad_hvf += 1
        elif verdict.is_drop:
            report.rejected_other += 1
        else:
            report.accepted += 1
