"""Denial-of-capability attacks on reservation setup (§5.3).

"The only remaining avenue for malicious actors is to try and prevent
legitimate ASes or end hosts to set up Colibri reservations in the first
place": (i) exhaust the CServ with bogus requests, (ii) congest the
network so setup packets never arrive.

Defences exercised here:

* per-AS rate limiting at the CServ drops the flood cheaply;
* renewals travel *over existing reservations* and are therefore immune
  to best-effort congestion — modelled by the bus staying reachable for
  reservation-borne control traffic while the "best-effort path" is
  saturated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ColibriError, RateLimited
from repro.sim.scenario import ColibriNetwork
from repro.topology.addresses import IsdAs


@dataclass
class DocReport:
    flood_sent: int = 0
    flood_rejected: int = 0
    victim_renewal_succeeded: bool = False

    @property
    def rejection_rate(self) -> float:
        return self.flood_rejected / self.flood_sent if self.flood_sent else 0.0


class DocAttack:
    """Request-flood the CServ of ``target`` from ``attacker``."""

    def __init__(self, network: ColibriNetwork, attacker: IsdAs, target: IsdAs):
        self.network = network
        self.attacker = attacker
        self.target = target

    def flood_requests(self, count: int) -> DocReport:
        """Hammer the target CServ with setup requests from one AS.

        The attacker uses syntactically valid, DRKey-authenticated
        requests (it is a real AS) — rate limiting, not authentication,
        is the defence being measured.
        """
        report = DocReport()
        attacker_cserv = self.network.cserv(self.attacker)
        # Find any segment from attacker towards the target to flood over.
        segments = self.network.beaconing.core_segments(self.attacker, self.target)
        if not segments:
            paths = self.network.path_lookup.paths(self.attacker, self.target, limit=1)
            segments = [paths[0].segments[0]]
        segment = segments[0]
        for _ in range(count):
            report.flood_sent += 1
            try:
                attacker_cserv.setup_segment(segment, 1e6, register=False)
            except RateLimited:
                report.flood_rejected += 1
            except ColibriError:
                report.flood_rejected += 1
        return report

    def victim_renewal_under_flood(self, victim_handle, victim: IsdAs) -> bool:
        """Can the victim still renew its EER during the flood?

        Renewals ride the existing reservation (protected control
        traffic, §5.3), so they bypass the congested best-effort path and
        the per-AS limiter state of the *attacker* — the victim's own
        budget is untouched.
        """
        try:
            self.network.cserv(victim).renew_eer(victim_handle)
            return True
        except ColibriError:
            return False
