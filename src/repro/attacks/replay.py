"""On-path capture-and-replay adversary (§5.1, framing DoS).

"An adversary could try to turn the monitoring subsystem against benign
ASes by […] capturing and replaying legitimate packets to overuse the
reserved bandwidth, thus framing the legitimate source."

The attacker sits at an on-path AS, records authenticated packets
crossing it, and re-injects copies at a later hop at high rate.  The
defence is the in-network duplicate suppression at benign ASes: "all
copies of the same packet are thus discarded."
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.dataplane.router import Verdict
from repro.packets.colibri import ColibriPacket
from repro.sim.scenario import ColibriNetwork
from repro.topology.addresses import IsdAs


@dataclass
class ReplayReport:
    captured: int = 0
    replayed: int = 0
    replays_delivered: int = 0
    replays_suppressed: int = 0
    victim_blocked: bool = False


class ReplayAttack:
    """Capture packets at ``vantage`` and replay them ``copies`` times."""

    def __init__(self, network: ColibriNetwork, vantage: IsdAs):
        self.network = network
        self.vantage = vantage
        self._captured: list = []

    def capture(self, packet: ColibriPacket) -> None:
        """Record a packet as it crosses the compromised AS.

        A deep copy models the wire tap: the original continues unchanged.
        """
        self._captured.append(copy.deepcopy(packet))

    def observe_delivery(self, report) -> None:
        """Convenience: capture from a :class:`DeliveryReport` if the
        packet crossed the vantage AS."""
        if any(isd_as == self.vantage for isd_as, _ in report.verdicts):
            self.capture(report.packet)

    def replay(self, copies: int = 10) -> ReplayReport:
        """Re-inject every captured packet ``copies`` times at the
        vantage point's router."""
        report = ReplayReport(captured=len(self._captured))
        router = self.network.router(self.vantage)
        for original in self._captured:
            for _ in range(copies):
                packet = copy.deepcopy(original)
                # Reset the hop pointer to the vantage AS's position so
                # the replay looks exactly like the original arrival.
                packet.hop_index = self._vantage_index(packet)
                report.replayed += 1
                result = router.process(packet)
                if result.verdict is Verdict.DROP_DUPLICATE:
                    report.replays_suppressed += 1
                elif not result.verdict.is_drop:
                    report.replays_delivered += 1
        victim = self._captured[0].res_info.src_as if self._captured else None
        if victim is not None:
            report.victim_blocked = router.blocklist.is_blocked(
                victim, self.network.clock.now()
            )
        return report

    def _vantage_index(self, packet: ColibriPacket) -> int:
        source_cserv = self.network.cserv(packet.res_info.src_as)
        reservation = source_cserv.store.get_eer(packet.res_info.reservation)
        for index, hop in enumerate(reservation.hops):
            if hop.isd_as == self.vantage:
                return index
        raise ValueError(f"vantage AS {self.vantage} is not on the packet's path")
