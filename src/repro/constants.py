"""Paper constants and protocol parameters.

Every number here is taken from the Colibri paper (CoNEXT 2021); the
section that defines it is cited next to each constant. Tests assert the
values so accidental drift from the paper is caught.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Traffic split (§3.4): fixed minimum share of link capacity per class.
# Best-effort always keeps at least 20 %; Colibri control traffic (SegR
# renewals, EER setup over SegRs) gets 5 %; EER data traffic gets 75 %.
# Unused Colibri bandwidth is scavenged by best-effort.
# --------------------------------------------------------------------------
BEST_EFFORT_SHARE = 0.20
CONTROL_SHARE = 0.05
EER_SHARE = 0.75

# --------------------------------------------------------------------------
# Reservation lifetimes.
# SegRs are intermediate-term, "valid for approximately five minutes"
# (§3.3).  EERs are short-term with "a fixed validity period (16 seconds
# in our implementation)" (§3.3).
# --------------------------------------------------------------------------
SEGR_LIFETIME = 300.0  # seconds
EER_LIFETIME = 16.0  # seconds

# Renewal-request rate limiting at CServs, "e.g., to one per second" (§4.2).
EER_RENEWAL_MIN_INTERVAL = 1.0  # seconds

# --------------------------------------------------------------------------
# Cryptography (§4.5).
# HVFs and SegR tokens are MACs truncated to the first l_hvf bytes;
# "we use l_hvf = 4".  HopAuths (Eq. 4) are NOT truncated: full MAC length.
# --------------------------------------------------------------------------
L_HVF = 4  # bytes
MAC_LENGTH = 16  # bytes, AES-128-CBC-MAC block size stand-in

# DRKey AS-level key validity "on the order of a day" (§2.3).
DRKEY_VALIDITY = 24 * 3600.0  # seconds

# --------------------------------------------------------------------------
# Time synchronization (§2.3): "we assume that all ASes are synchronized
# within ±0.1 seconds".
# --------------------------------------------------------------------------
MAX_CLOCK_SKEW = 0.1  # seconds

# Packet-freshness acceptance window at border routers.  The timestamp Ts
# is relative to ExpT (§4.3); routers accept packets whose Ts is within
# the reservation lifetime plus clock skew.
FRESHNESS_WINDOW = 2 * MAX_CLOCK_SKEW + 1.0  # seconds

# --------------------------------------------------------------------------
# Segment / path structure (§2.2, §4.4).
# An end-to-end path combines at most one up-, one core-, and one
# down-segment; an EER therefore spans one, two, or three SegRs.
# --------------------------------------------------------------------------
MAX_SEGMENTS_PER_PATH = 3

# The current Internet has "over 70 000 ASes" (§3.3); used for scaling of
# synthetic topologies and the blocklist sizing argument (§4.8).
INTERNET_AS_COUNT = 70_000

# Average Internet AS-path length is 4-5 hops (§7, footnote 3).
TYPICAL_PATH_LENGTH = 4

# --------------------------------------------------------------------------
# Monitoring (§4.8).
# Token-bucket burst tolerance: how long a flow may exceed its rate before
# packets are dropped, expressed as a multiple of the per-second budget.
# --------------------------------------------------------------------------
DEFAULT_BURST_SECONDS = 0.1

# Probabilistic overuse-flow-detector default geometry.  Chosen so the OFD
# fits in cache-like footprints while bounding false-positive rates; the
# suspicious flows it reports are confirmed deterministically (§4.8).
OFD_DEFAULT_DEPTH = 4
OFD_DEFAULT_WIDTH = 4096
OFD_DEFAULT_WINDOW = 1.0  # seconds per measurement window
OFD_OVERUSE_FACTOR = 1.05  # report flows above 105 % of reserved rate

# Duplicate-suppression window: packets older than this cannot be replayed
# because the freshness check already drops them, so the filter only has
# to remember identifiers for this long (§2.3).
DUPLICATE_WINDOW = FRESHNESS_WINDOW

# --------------------------------------------------------------------------
# Control-plane fault tolerance (§3.3, §4.2).
# The paper requires that "in case of an unsuccessful request, the ASes
# clean up their temporary reservations" (§3.3) and that renewals keep
# reservations alive across expiry boundaries (§4.2).  The reproduction
# adds retry/timeout/backoff machinery around the §6.1 RPC layer; these
# parameters size it.  Attempt budgets are chosen so a 20 % per-call loss
# rate still converges with > 99 % probability within one EER lifetime
# (0.2^4 ≈ 0.16 % residual failure per hop), and cleanup gets a larger
# budget because a failed cleanup — unlike a failed setup — leaves
# residual allocations that violate the §3.3 invariant.
# --------------------------------------------------------------------------
RETRY_MAX_ATTEMPTS = 4  # setup/renewal attempts per hop-to-hop call (§3.3)
CLEANUP_MAX_ATTEMPTS = 8  # abort/teardown attempts; 0.2^8 ≈ 2.6e-6 (§3.3)
RETRY_BASE_DELAY = 0.05  # seconds before the first retry (§4.2 renewals
#   must finish well inside the 16 s EER lifetime, §3.3)
RETRY_MAX_DELAY = 1.0  # backoff cap: stay inside the EER lead time (§4.2)
RETRY_MULTIPLIER = 2.0  # capped exponential backoff growth factor (§3.3)

# Per-method-class call-latency budgets (virtual seconds on the bus; §6.1
# "disregard[s] propagation delays", so budgets are measured against
# injected latency, never the wall clock).  Setups traverse whole paths
# of ~4-5 ASes (§7 footnote 3); queries are single-hop.
CALL_TIMEOUT_SETUP = 4.0  # seconds, multi-hop setup/renewal chain (§3.3)
CALL_TIMEOUT_QUERY = 1.0  # seconds, single registry lookup (Appendix C)

# Circuit breaker: after this many consecutive transport failures the
# destination AS is considered down and calls fail fast; after the reset
# timeout one probe is let through (half-open).  Sized against the SegR
# renewal lead time so a recovered AS is re-probed before SegRs lapse
# (§4.2: renewals happen within the 60 s lead window).
CIRCUIT_FAILURE_THRESHOLD = 5  # consecutive failures to open (§4.2)
CIRCUIT_RESET_TIMEOUT = 10.0  # seconds until a half-open probe (§4.2)

# Idempotency cache: handlers remember successful setup/renewal responses
# by request identity so a retry after a *lost response* replays the
# answer instead of double-admitting bandwidth (§3.3 cleanup invariant).
# Entries must outlive the longest retry storm: attempts x capped backoff
# plus the call budget, comfortably under one EER lifetime (§3.3).
IDEMPOTENCY_TTL = 2 * EER_LIFETIME  # seconds (§3.3)
IDEMPOTENCY_MAX_ENTRIES = 4096  # bounded memory at busy CServs (§5.3)

# --------------------------------------------------------------------------
# Evaluation geometry (§7.1, Table 2).
# --------------------------------------------------------------------------
EVAL_LINK_GBPS = 40.0
EVAL_INPUT_PORTS = 3
TABLE2_RESERVATION_1_GBPS = 0.4
TABLE2_RESERVATION_2_GBPS = 0.8
