"""Sample-and-hold overuse detection — an alternative OFD.

§4.8 cites a family of limited-memory detectors [11, 44, 49, 64, 67];
the default :class:`~repro.dataplane.ofd.OveruseFlowDetector` is a
count-min sketch.  This module implements the other classic point in
the design space, *sample and hold* (Estan & Varghese style): packets
are sampled with a size-proportional probability; once a flow is
sampled, it is **held** — tracked with an exact counter until the
window ends.

Tradeoff vs. the count-min OFD (measured by the ablation bench):

* sample-and-hold has (near-)zero false positives — a reported flow's
  counter is exact from the moment it was held (it can only miss volume
  sent *before* sampling, so true usage is at least the estimate);
* but it can false-negative: a flow whose packets are never sampled
  escapes (probability shrinks geometrically with overuse volume);
* count-min never false-negatives but can false-positive on collisions.

Colibri's architecture tolerates either: suspects are confirmed by
deterministic monitoring before punishment (§4.8).
"""

from __future__ import annotations

import random

from repro.constants import OFD_DEFAULT_WINDOW, OFD_OVERUSE_FACTOR


class SampleAndHoldDetector:
    """Windowed sample-and-hold overuse detector.

    ``sample_budget`` is the expected number of samples per window per
    reserved-rate-equivalent of traffic: a flow sending exactly its
    reservation is sampled ``sample_budget`` times per window on
    average, so overusers are held almost surely while the held-flow
    table stays near the number of active heavy flows.
    """

    def __init__(
        self,
        max_held: int = 4096,
        sample_budget: float = 8.0,
        window: float = OFD_DEFAULT_WINDOW,
        overuse_factor: float = OFD_OVERUSE_FACTOR,
        seed: int = 1234,
    ):
        if max_held <= 0:
            raise ValueError(f"held-table size must be positive, got {max_held}")
        if sample_budget <= 0:
            raise ValueError(f"sample budget must be positive, got {sample_budget}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.max_held = max_held
        self.sample_budget = sample_budget
        self.window = window
        self.overuse_factor = overuse_factor
        self._rng = random.Random(seed)
        self._held: dict[bytes, float] = {}  # flow -> normalized volume
        self._suspects: set = set()
        self._window_start = 0.0
        self.packets_seen = 0
        self.reports = 0
        self.table_full_events = 0

    def _maybe_roll(self, now: float) -> None:
        if now - self._window_start >= self.window:
            self._held.clear()
            self._suspects.clear()
            self._window_start = now

    def observe(self, flow_label: bytes, packet_size: int, bandwidth: float, now: float) -> bool:
        """Record one packet; ``True`` when the flow becomes suspect."""
        self._maybe_roll(now)
        self.packets_seen += 1
        if bandwidth <= 0:
            self._suspects.add(flow_label)
            self.reports += 1
            return True
        normalized = (packet_size * 8) / bandwidth  # seconds of budget
        held = self._held.get(flow_label)
        if held is None:
            # Size-proportional sampling: P = budget * share-of-window.
            probability = min(1.0, self.sample_budget * normalized / self.window)
            if self._rng.random() >= probability:
                return False
            if len(self._held) >= self.max_held:
                self.table_full_events += 1
                return False
            held = 0.0
        held += normalized
        self._held[flow_label] = held
        threshold = self.window * self.overuse_factor
        if held > threshold and flow_label not in self._suspects:
            self._suspects.add(flow_label)
            self.reports += 1
            return True
        return False

    def is_suspect(self, flow_label: bytes) -> bool:
        return flow_label in self._suspects

    def suspects(self) -> set:
        return set(self._suspects)

    @property
    def memory_cells(self) -> int:
        """Current held-flow table occupancy (bounded by ``max_held``)."""
        return len(self._held)
