"""Probabilistic overuse-flow detection (§4.8).

"The probabilistic overuse flow detector (OFD) represents the centerpiece
of the monitoring architecture in transit and transfer ASes."  It must
track an enormous number of flows in a cache-sized footprint, so exact
per-flow counters are out; Colibri cites sketch-based detectors
(LOFT [44], large-flow detection [64]).

This implementation is a **count-min sketch over normalized packet
sizes**, reset every measurement window:

* input per packet: the flow label ``(SrcAS, ResId)`` — all versions of
  an EER share it — and the *normalized* size
  ``total packet size / reservation bandwidth`` (§4.8), which is the
  fraction of one second's budget the packet consumes;
* a flow is reported when its estimated normalized volume within the
  window exceeds ``window * overuse_factor`` — i.e. it consumed more
  than its reserved share of the window (plus slack against noise).

Count-min estimates never under-count, so the OFD has **no false
negatives**: every truly overusing flow is reported.  Collisions can
over-count, producing false positives — exactly why §4.8 sends suspects
to deterministic monitoring instead of punishing them directly.
"""

from __future__ import annotations

import hashlib

from repro.constants import (
    OFD_DEFAULT_DEPTH,
    OFD_DEFAULT_WIDTH,
    OFD_DEFAULT_WINDOW,
    OFD_OVERUSE_FACTOR,
)
from repro.obs.events import OFD_FLAGGED


class OveruseFlowDetector:
    """Windowed count-min sketch reporting suspected overuse flows."""

    #: Optional :class:`repro.obs.ObsContext` + owning-AS label, wired by
    #: ``enable_observability``; class-level defaults so the
    #: un-instrumented observe path is unchanged (the journal branch runs
    #: only when a flow is newly flagged).
    obs = None
    isd_as = ""

    def __init__(
        self,
        width: int = OFD_DEFAULT_WIDTH,
        depth: int = OFD_DEFAULT_DEPTH,
        window: float = OFD_DEFAULT_WINDOW,
        overuse_factor: float = OFD_OVERUSE_FACTOR,
    ):
        if width <= 0 or depth <= 0:
            raise ValueError(f"sketch geometry must be positive: {width}x{depth}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.width = width
        self.depth = depth
        self.window = window
        self.overuse_factor = overuse_factor
        self._rows = [[0.0] * width for _ in range(depth)]
        self._window_start = 0.0
        self._suspects: set = set()
        # Cumulative per-flow observations while flagged; survives window
        # rolls (evidence wants the whole history, not one window's).
        self._hits: dict = {}
        self.packets_seen = 0
        self.reports = 0

    def _positions(self, label: bytes):
        digest = hashlib.blake2b(label, digest_size=4 * self.depth).digest()
        for row in range(self.depth):
            chunk = digest[4 * row : 4 * (row + 1)]
            yield row, int.from_bytes(chunk, "big") % self.width

    def _maybe_roll(self, now: float) -> None:
        if now - self._window_start >= self.window:
            for row in self._rows:
                for index in range(self.width):
                    row[index] = 0.0
            self._suspects.clear()
            self._window_start = now

    def observe(self, flow_label: bytes, packet_size: int, bandwidth: float, now: float) -> bool:
        """Record one packet; returns ``True`` if the flow is now suspect.

        ``packet_size`` is the total size in bytes (header included);
        ``bandwidth`` the reservation's guaranteed bits per second.
        Normalization makes one detector serve every bandwidth class.
        """
        self._maybe_roll(now)
        self.packets_seen += 1
        if bandwidth <= 0:
            # A packet on a zero-bandwidth (fully expired) reservation is
            # overusing by definition.
            self._flag(flow_label, now)
            return True
        normalized = (packet_size * 8) / bandwidth  # seconds of budget
        estimate = float("inf")
        for row, position in self._positions(flow_label):
            self._rows[row][position] += normalized
            estimate = min(estimate, self._rows[row][position])
        if flow_label in self._suspects:
            self._hits[flow_label] = self._hits.get(flow_label, 0) + 1
            return False  # already flagged in this window
        if estimate > self.window * self.overuse_factor:
            self._flag(flow_label, now)
            return True
        return False

    def _flag(self, flow_label: bytes, now: float) -> None:
        """A flow crossed the sketch threshold: flag it for deterministic
        monitoring and remember the hit."""
        self._suspects.add(flow_label)
        self._hits[flow_label] = self._hits.get(flow_label, 0) + 1
        self.reports += 1
        if self.obs is not None and self.obs.journal is not None:
            self.obs.journal.record(
                OFD_FLAGGED,
                isd_as=self.isd_as,
                flow=flow_label.hex(),
                hits=self._hits[flow_label],
            )

    def is_suspect(self, flow_label: bytes) -> bool:
        return flow_label in self._suspects

    def hit_count(self, flow_label: bytes) -> int:
        """Cumulative observations of ``flow_label`` while flagged —
        the per-flow evidence counter forensics reads."""
        return self._hits.get(flow_label, 0)

    def suspect_count(self) -> int:
        """Flows flagged in the current window — feeds the
        ``ofd_suspects`` registry gauge."""
        return len(self._suspects)

    def total_hits(self) -> int:
        """Cumulative flagged-flow observations across all flows — feeds
        the ``ofd_hits_total`` registry gauge (monotone)."""
        return sum(self._hits.values())

    def suspects(self) -> set:
        """Flows flagged in the current window, for handoff to the
        deterministic monitor (§4.8)."""
        return set(self._suspects)

    @property
    def memory_cells(self) -> int:
        """Sketch size — fixed, independent of the number of flows."""
        return self.width * self.depth
