"""The Colibri gateway (§3.2, §4.6).

All Colibri traffic of an AS's end hosts passes through the gateway,
which is the *stateful* half of the data plane:

* it maps the ResId of incoming EER packets to the Path, ResInfo,
  EERInfo, and HopAuths obtained during setup/renewal;
* it performs **deterministic traffic monitoring** (token bucket per
  flow) — the duty other ASes hold this AS accountable for;
* it generates the high-precision timestamp Ts and computes the HVFs for
  all on-path ASes (Eq. 6), confirming "that it has performed the
  mandatory flow monitoring and authorized this packet".

HopAuths are **per version**: Eq. (4) covers ResInfo, which contains the
version number, so a renewal installs a fresh HopAuth set.  The gateway
stamps packets with the latest live version (§4.2) while the monitor
keys on the reservation ID alone, so using several versions can never
exceed the maximum version bandwidth (§4.8).

Fast-path engineering (docs/performance.md): installation builds either
a native key-schedule block (cffi BLAKE2s kernel — all hop HVFs of a
packet in one C call) or prehashed hashlib states per σ, and caches the
latest live version, the monitor's token bucket and the header size per
reservation.  :meth:`ColibriGateway.send_batch` runs a fully inlined
per-burst loop; bursts addressed to a single reservation vectorize the
whole burst's stamping into one C call; and
:meth:`ColibriGateway.send_batch_wire` serializes straight into a
preallocated :class:`~repro.packets.wire.PacketArena` with in-place
header patching — no per-packet ``bytes`` materialization at all.
Every variant is byte- and counter-identical to calling :meth:`send`
per request (tests/test_batch_equivalence.py).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.dataplane.hvf import (
    burst_stamper,
    sigma_schedule,
    sigma_states,
    stamp_hvfs,
)
from repro.dataplane.monitor import DeterministicMonitor
from repro.obs.profile import profiled
from repro.errors import (
    BandwidthExceeded,
    DataPlaneError,
    PacketFieldError,
    ReservationError,
    ReservationExpired,
    ReservationNotFound,
)
from repro.packets.colibri import ColibriPacket, HvfVector, PacketType, WirePacketView
from repro.packets.fields import EerInfo, PathField, ResInfo, Timestamp
from repro.packets.wire import PacketArena
from repro.reservation.ids import ReservationId
from repro.topology.addresses import IsdAs
from repro.util.clock import Clock

#: A stamped packet, or the error that dropped the request (send_batch).
SendOutcome = Union[ColibriPacket, ReservationError, DataPlaneError]

#: The Eq. (6) MAC input ``Ts || PktSize`` in one struct: byte-identical
#: to ``eer_hvf_message(Timestamp(micros, seq), size)`` (``!Q`` of the
#: packed Ts word followed by ``!I`` of PktSize), built with a single C
#: call on the send fast path.
_HVF_MESSAGE = struct.Struct("!QI")

#: Wire forms patched in place by the zero-copy path: the 8-byte Ts word
#: at its header offset and the 32-bit payload length prefix (the same
#: layout ``ColibriPacket.to_bytes`` emits).
_TS_WIRE = Timestamp.WIRE
_PAYLOAD_LEN_WIRE = struct.Struct("!I")

_SEQ_BITS = Timestamp._SEQ_BITS
_SEQ_MASK = Timestamp._SEQ_MASK


@dataclass
class GatewayVersion:
    """One installed EER version: its ResInfo and per-AS HopAuths."""

    res_info: ResInfo
    hop_auths: tuple  # one sigma_i per on-path AS, in path order
    #: Prehashed Eq. (6) MAC states, one per σ.  Built at control-plane
    #: time — the software analogue of expanding AES round keys at setup
    #: — so no data packet ever pays a key schedule.  Not part of the
    #: version's identity and not picklable.
    _states: Optional[tuple] = field(default=None, repr=False, compare=False)
    #: Native key-schedule block (all σs contiguous in C memory), when
    #: the cffi kernel is available; byte-identical to ``_states``.
    _schedule: Optional[object] = field(default=None, repr=False, compare=False)
    #: Serialized header prefix up to (excluding) Ts — constant per
    #: version, copied into each arena slot by the zero-copy path.
    _wire_template: Optional[bytes] = field(default=None, repr=False, compare=False)

    @property
    def version(self) -> int:
        return self.res_info.version

    @property
    def expiry(self) -> float:
        return self.res_info.expiry

    def is_live(self, now: float) -> bool:
        return now < self.res_info.expiry

    def prepare(self) -> None:
        """Pay the per-σ key schedules now, at control-plane rate.

        Prefers one native schedule block (lighter than a tuple of
        hashlib objects at 2^17 installed reservations); hosts without
        the native backend prehash hashlib states instead.
        """
        if self._schedule is None:
            self._schedule = sigma_schedule(self.hop_auths)
        if self._schedule is None and self._states is None:
            self._states = sigma_states(self.hop_auths)

    def states(self) -> tuple:
        """Prehashed σ states (one per hop), built on first demand for
        versions not installed through :meth:`ColibriGateway.install`."""
        states = self._states
        if states is None:
            states = sigma_states(self.hop_auths)
            self._states = states
        return states

    def stamp(self, message: bytes):
        """All per-hop HVFs (Eq. 6) of one packet over ``message``."""
        schedule = self._schedule
        if schedule is not None:
            return HvfVector(schedule.stamp_flat(message))
        states = self._states
        if states is None:
            states = self.states()
        return stamp_hvfs(states, message)


@dataclass
class GatewayReservation:
    """Everything the gateway keeps per EER."""

    reservation_id: ReservationId
    path: PathField
    eer_info: EerInfo
    versions: dict  # version number -> GatewayVersion
    #: Header bytes of every packet on this EER (fixed by path length).
    header_size: int = 0
    #: :class:`~repro.packets.colibri.WireOffsets` of this EER's packets
    #: — fixed by path length, resolved once at install so the zero-copy
    #: loop never pays the per-packet layout lookup.
    wire: Optional[tuple] = None
    #: ``reservation_id.packed``, computed once: the monitor's flow label
    #: and part of every replay identifier — packing 12 bytes per packet
    #: would shadow the MAC cost on short paths.
    packed_id: bytes = b""
    #: ``(micros, sequence)`` of the latest stamped packet, for Ts
    #: uniqueness (kept here so the fast path does not hash the
    #: ReservationId a second time against a side table).
    last_micros: Optional[tuple] = field(default=None, repr=False, compare=False)
    #: The monitor's token bucket for this flow.  Owned by the gateway:
    #: install/refresh_monitor keep it in sync with ``monitor.watch``,
    #: so the burst loops account packets against it directly instead of
    #: re-probing the monitor's flow table per packet.
    bucket: Optional[object] = field(default=None, repr=False, compare=False)
    # Soft per-reservation caches, invalidated on install/uninstall and
    # (for expiry-driven changes) by refresh_monitor; latest_live also
    # self-invalidates the moment the cached version stops being live.
    _latest: Optional[GatewayVersion] = field(default=None, repr=False, compare=False)
    _bandwidth: Optional[tuple] = field(default=None, repr=False, compare=False)

    def invalidate_caches(self) -> None:
        self._latest = None
        self._bandwidth = None

    def latest_live(self, now: float) -> Optional[GatewayVersion]:
        cached = self._latest
        if cached is not None and now < cached.res_info.expiry:
            return cached
        live = [v for v in self.versions.values() if v.is_live(now)]
        latest = max(live, key=lambda v: v.version) if live else None
        # Installing a higher version invalidates, and expiry is checked
        # above, so the cached answer can never outlive its validity.
        self._latest = latest
        return latest

    def effective_bandwidth(self, now: float) -> float:
        cached = self._bandwidth
        if cached is not None and now < cached[1]:
            return cached[0]
        live = [v for v in self.versions.values() if v.is_live(now)]
        if not live:
            self._bandwidth = None
            return 0.0
        value = max(v.res_info.bandwidth for v in live)
        # Valid until the first live version expires: only an expiry (or
        # an install, which invalidates) can change the live set.
        valid_until = min(v.res_info.expiry for v in live)
        self._bandwidth = (value, valid_until)
        return value


class ColibriGateway:
    """The source AS's gateway: monitor, stamp, and forward EER packets."""

    #: Optional :class:`repro.obs.ObsContext`.  Class-level ``None`` so
    #: the disabled wire path pays one attribute read and no per-instance
    #: slot; when set *and* carrying a ``sampler``, every Nth
    #: :meth:`send_batch_wire` burst runs with per-stage wall timings
    #: (plan vs native stamp) recorded into fixed-bucket histograms —
    #: the other N-1 bursts take the untouched fast path
    #: (docs/performance.md §6 still holds, enforced by
    #: ``tools/obs_overhead.py``).
    obs = None

    def __init__(self, isd_as: IsdAs, clock: Clock, monitor: DeterministicMonitor = None):
        self.isd_as = isd_as
        self.clock = clock
        self.monitor = monitor or DeterministicMonitor()
        self._reservations: dict[ReservationId, GatewayReservation] = {}
        #: The same entries keyed by ``ReservationId.packed``.  A dict
        #: probe under a bytes key costs a C-level hash; under a
        #: ReservationId it calls the Python ``__hash__`` — a function
        #: call per packet the burst loops cannot afford, while
        #: ``.packed`` is a cached attribute read on the request's id.
        self._by_packed: dict[bytes, GatewayReservation] = {}
        self.packets_sent = 0
        self.packets_dropped = 0
        #: Lazily built native scatter stamper shared by the burst loops
        #: (``None`` until first use, and stays ``None`` without the
        #: native backend — the loops then keep their per-packet paths).
        self._burst = None

    # -- reservation installation (fed by the CServ after EER setup) -----------

    def install(
        self,
        reservation_id: ReservationId,
        path: PathField,
        eer_info: EerInfo,
        res_info: ResInfo,
        hop_auths: tuple,
    ) -> None:
        """Install a new EER or an additional version of an existing one.

        Called by the CServ with the HopAuths it decrypted from the setup
        or renewal response (step 5 of Fig. 1b).
        """
        if len(hop_auths) != len(path):
            raise ValueError(
                f"need one HopAuth per hop: {len(hop_auths)} vs {len(path)} hops"
            )
        entry = self._reservations.get(reservation_id)
        if entry is None:
            entry = GatewayReservation(
                reservation_id=reservation_id,
                path=path,
                eer_info=eer_info,
                versions={},
                header_size=ColibriPacket.header_size_for(len(path)),
                wire=ColibriPacket.wire_offsets(len(path)),
                packed_id=reservation_id.packed,
            )
            self._reservations[reservation_id] = entry
            self._by_packed[entry.packed_id] = entry
        version = GatewayVersion(res_info=res_info, hop_auths=tuple(hop_auths))
        version.prepare()
        entry.versions[res_info.version] = version
        entry.invalidate_caches()
        # (Re-)arm the deterministic monitor at the new effective
        # bandwidth, and prime the latest-live cache so a reservation's
        # first data packet takes the same path as its millionth.
        now = self.clock.now()
        entry.latest_live(now)
        self.monitor.watch(entry.packed_id, entry.effective_bandwidth(now), now)
        entry.bucket = self.monitor.bucket_for(entry.packed_id)

    def uninstall(self, reservation_id: ReservationId) -> None:
        entry = self._reservations.pop(reservation_id, None)
        if entry is not None:
            entry.invalidate_caches()
            entry.bucket = None
        self._by_packed.pop(reservation_id.packed, None)
        self.monitor.unwatch(reservation_id.packed)

    def reservation_count(self) -> int:
        return len(self._reservations)

    def known_reservations(self) -> list:
        return list(self._reservations)

    # -- the per-packet fast path (§4.6) ------------------------------------------

    def send(self, reservation_id: ReservationId, payload: bytes) -> ColibriPacket:
        """Process one packet from a local end host.

        The host hands the gateway its ResId and payload (its packet's
        "header fields are empty, with the exception of the ResId and the
        Payload").  Returns the fully stamped packet ready for the border
        router, or raises — a raise is a drop.
        """
        return self._send_one(reservation_id, payload, self.clock.now())

    @profiled("gateway.send_batch")
    def send_batch(self, requests) -> List[SendOutcome]:
        """Stamp a burst of ``(reservation_id, payload)`` requests.

        Semantically identical to calling :meth:`send` per request, in
        order — same packets, same monitor accounting, same counters —
        except that drops come back as error *values* (aligned with their
        request) instead of raised exceptions, and the clock is read once
        for the whole burst, the fixed cost the paper's DPDK gateway
        amortizes across NIC bursts.

        A burst addressed entirely to one reservation (the common shape
        when an application streams over its EER) additionally vectorizes
        all its Eq. (6) stamps into a single native call; the pre-scan
        below exits on the first differing ID, so mixed bursts pay two
        extra compares, not a grouping pass.
        """
        if type(requests) is not list:
            requests = list(requests)
        if not requests:
            return []
        now = self.clock.now()
        first_id = requests[0][0]
        for request in requests:
            identifier = request[0]
            if identifier is not first_id and identifier != first_id:
                break
        else:
            outcomes = self._send_burst_same(first_id, requests, now)
            if outcomes is not None:
                return outcomes
        return self._send_burst_mixed(requests, now)

    def _send_burst_mixed(self, requests, now: float) -> List[SendOutcome]:
        """The general burst loop, scatter-stamped in one native call.

        Two passes: the first resolves each request (reservation, Ts,
        monitor — same order and error strings as :meth:`_send_one`) and
        records its stamping plan straight into the shared
        :class:`~repro.crypto.native.BurstStamper` arrays; one
        ``colibri_stamp_scatter`` call then computes every Eq. (6) tag
        of the burst, and the second pass assembles the packet objects
        over zero-copy :class:`HvfVector` windows into the flat result.
        Counters follow the :meth:`_send_burst_same` convention: a
        request that passed monitoring counts as sent once planned.
        Hosts without the native backend (and versions installed without
        a schedule) take :meth:`_send_burst_mixed_python` instead.
        """
        stamper = self._burst
        if stamper is None:
            stamper = self._burst = burst_stamper(slots=len(requests))
            if stamper is None:
                return self._send_burst_mixed_python(requests, now)
        get_entry = self._by_packed.get
        monitor = self.monitor
        pack_message = _HVF_MESSAGE.pack
        make_ts = Timestamp
        tag_len = stamper.tag_len
        stamper.reserve(len(requests))
        plan_scheds = stamper.scheds
        plan_counts = stamper.counts
        plan_offsets = stamper.offsets
        messages = stamper.messages
        del messages[:]
        count = len(requests)
        outcomes: List[SendOutcome] = [None] * count
        plan = []  # (outcome index, entry, res_info, Timestamp, payload, row, hops)
        add_plan = plan.append
        slow = None  # (outcome index, packet) pairs stamped per packet
        planned = 0
        position = 0
        passed = 0
        sent = 0
        dropped = 0
        try:
            for index in range(count):
                reservation_id, payload = requests[index]
                entry = get_entry(reservation_id.packed)
                if entry is None:
                    dropped += 1
                    outcomes[index] = ReservationNotFound(
                        f"gateway has no EER {reservation_id}"
                    )
                    continue
                version = entry._latest
                if version is None or now >= version.res_info.expiry:
                    version = entry.latest_live(now)
                    if version is None:
                        dropped += 1
                        outcomes[index] = ReservationExpired(
                            f"all versions of EER {reservation_id} expired"
                        )
                        continue
                res_info = version.res_info
                micros = int((res_info.expiry - now) * 1e6)
                last = entry.last_micros
                sequence = last[1] + 1 if last is not None and last[0] == micros else 0
                entry.last_micros = (micros, sequence)
                timestamp = make_ts(micros, sequence)
                size = entry.header_size + len(payload)
                bucket = entry.bucket
                if bucket is None:
                    passed += 1
                else:
                    # TokenBucket.conforms inlined (same arithmetic, same
                    # state writes): two Python frames per packet are the
                    # price of the method calls, and this loop is the
                    # Fig. 5 hot path.
                    tokens = bucket._tokens
                    if now > bucket._updated:
                        depth = bucket.depth
                        tokens += (now - bucket._updated) * bucket.rate
                        if tokens > depth:
                            tokens = depth
                        bucket._updated = now
                    bits = size * 8
                    if bits <= tokens:
                        bucket._tokens = tokens - bits
                        passed += 1
                    else:
                        bucket._tokens = tokens
                        monitor.record_drop(entry.packed_id, now, bucket)
                        dropped += 1
                        outcomes[index] = BandwidthExceeded(
                            f"EER {reservation_id} exceeded its reserved rate"
                        )
                        continue
                message = pack_message((micros << _SEQ_BITS) | sequence, size)
                schedule = version._schedule
                if schedule is not None:
                    hops = schedule.count
                    plan_scheds[planned] = schedule._scatter
                    plan_counts[planned] = hops
                    plan_offsets[planned] = position
                    messages += message
                    add_plan((index, entry, res_info, timestamp, payload, position, hops))
                    position += hops * tag_len
                    planned += 1
                else:
                    # Version without a native schedule (e.g. the probe
                    # was flipped after install): stamp it on the spot.
                    if slow is None:
                        slow = []
                    slow.append((index, ColibriPacket.trusted(
                        PacketType.EER_DATA,
                        entry.path,
                        res_info,
                        timestamp,
                        version.stamp(message),
                        entry.eer_info,
                        payload,
                    )))
                sent += 1
        finally:
            monitor.packets_passed += passed
            self.packets_sent += sent
            self.packets_dropped += dropped
        if planned:
            flat = stamper.stamp_flat(planned, _HVF_MESSAGE.size, position)
            trusted = ColibriPacket.trusted
            make_vector = HvfVector
            eer_data = PacketType.EER_DATA
            for index, entry, res_info, timestamp, payload, row, hops in plan:
                outcomes[index] = trusted(
                    eer_data,
                    entry.path,
                    res_info,
                    timestamp,
                    make_vector(flat, row, hops),
                    entry.eer_info,
                    payload,
                )
        if slow is not None:
            for index, packet in slow:
                outcomes[index] = packet
        return outcomes

    def _send_burst_mixed_python(self, requests, now: float) -> List[SendOutcome]:
        """The pure-Python burst loop: :meth:`_send_one` inlined, one pass.

        Attribute lookups are hoisted and the latest-live / token-bucket
        caches are read directly; every branch mirrors :meth:`_send_one`
        (same order of Ts assignment, monitor accounting and error
        strings) so outcomes and counters are indistinguishable from the
        serial path.
        """
        get_entry = self._reservations.get
        monitor = self.monitor
        pack_message = _HVF_MESSAGE.pack
        trusted = ColibriPacket.trusted
        make_ts = Timestamp
        outcomes: List[SendOutcome] = []
        append = outcomes.append
        sent = 0
        dropped = 0
        try:
            for reservation_id, payload in requests:
                entry = get_entry(reservation_id)
                if entry is None:
                    dropped += 1
                    append(ReservationNotFound(f"gateway has no EER {reservation_id}"))
                    continue
                version = entry._latest
                if version is None or now >= version.res_info.expiry:
                    version = entry.latest_live(now)
                    if version is None:
                        dropped += 1
                        append(
                            ReservationExpired(
                                f"all versions of EER {reservation_id} expired"
                            )
                        )
                        continue
                res_info = version.res_info
                micros = int((res_info.expiry - now) * 1e6)
                last = entry.last_micros
                sequence = last[1] + 1 if last is not None and last[0] == micros else 0
                entry.last_micros = (micros, sequence)
                timestamp = make_ts(micros, sequence)
                size = entry.header_size + len(payload)
                bucket = entry.bucket
                if bucket is None or bucket.conforms(size, now):
                    monitor.packets_passed += 1
                else:
                    monitor.record_drop(entry.packed_id, now, bucket)
                    dropped += 1
                    append(
                        BandwidthExceeded(
                            f"EER {reservation_id} exceeded its reserved rate"
                        )
                    )
                    continue
                message = pack_message((micros << _SEQ_BITS) | sequence, size)
                append(
                    trusted(
                        PacketType.EER_DATA,
                        entry.path,
                        res_info,
                        timestamp,
                        version.stamp(message),
                        entry.eer_info,
                        payload,
                    )
                )
                sent += 1
        finally:
            self.packets_sent += sent
            self.packets_dropped += dropped
        return outcomes

    def _send_burst_same(
        self, reservation_id: ReservationId, requests, now: float
    ) -> Optional[List[SendOutcome]]:
        """Vectorized stamping for a burst that hits one reservation.

        One native ``stamp_many`` call covers every conforming packet of
        the burst; the per-packet Python work shrinks to Ts bookkeeping,
        bucket accounting and packet-object assembly.  Returns ``None``
        when the vector path does not apply (unknown/expired reservation
        or no native schedule) — the mixed loop then produces the exact
        per-request outcomes.
        """
        entry = self._reservations.get(reservation_id)
        if entry is None:
            return None
        version = entry._latest
        if version is None or now >= version.res_info.expiry:
            version = entry.latest_live(now)
            if version is None:
                return None
        schedule = version._schedule
        if schedule is None:
            return None
        res_info = version.res_info
        micros = int((res_info.expiry - now) * 1e6)
        if not 0 <= micros < 1 << 48:
            return None  # mixed loop raises the exact Timestamp error
        last = entry.last_micros
        sequence = last[1] + 1 if last is not None and last[0] == micros else 0
        header_size = entry.header_size
        bucket = entry.bucket
        monitor = self.monitor
        packed_id = entry.packed_id
        pack_message = _HVF_MESSAGE.pack
        make_ts = Timestamp
        base = micros << _SEQ_BITS
        count = len(requests)
        outcomes: List[SendOutcome] = [None] * count
        messages = bytearray()
        stamped = []  # (outcome index, Timestamp, payload)
        add_stamped = stamped.append
        passed = 0
        dropped = 0
        current = sequence - 1
        try:
            for index in range(count):
                payload = requests[index][1]
                current += 1
                if current > _SEQ_MASK:
                    # Same exception (and last_micros state) the serial
                    # path produces when the sequence overflows.
                    raise PacketFieldError(
                        f"timestamp sequence {current} out of 16-bit range"
                    )
                size = header_size + len(payload)
                if bucket is None:
                    passed += 1
                else:
                    # TokenBucket.conforms inlined (identical arithmetic
                    # and state writes) — after the first packet the
                    # refill branch is dead because ``now`` is fixed for
                    # the burst, leaving two compares per packet.
                    tokens = bucket._tokens
                    if now > bucket._updated:
                        depth = bucket.depth
                        tokens += (now - bucket._updated) * bucket.rate
                        if tokens > depth:
                            tokens = depth
                        bucket._updated = now
                    bits = size * 8
                    if bits <= tokens:
                        bucket._tokens = tokens - bits
                        passed += 1
                    else:
                        bucket._tokens = tokens
                        monitor.record_drop(packed_id, now, bucket)
                        dropped += 1
                        outcomes[index] = BandwidthExceeded(
                            f"EER {reservation_id} exceeded its reserved rate"
                        )
                        continue
                messages += pack_message(base | current, size)
                add_stamped((index, make_ts(micros, current), payload))
        finally:
            if current >= 0:
                entry.last_micros = (micros, current)
            monitor.packets_passed += passed
            self.packets_sent += len(stamped)
            self.packets_dropped += dropped
        if stamped:
            flat = schedule.stamp_many_flat(messages, _HVF_MESSAGE.size, len(stamped))
            row = schedule.count * schedule.tag_len
            hop_count = schedule.count
            trusted = ColibriPacket.trusted
            path = entry.path
            eer_info = entry.eer_info
            eer_data = PacketType.EER_DATA
            position = 0
            for index, timestamp, payload in stamped:
                outcomes[index] = trusted(
                    eer_data,
                    path,
                    res_info,
                    timestamp,
                    HvfVector(flat, position, hop_count),
                    eer_info,
                    payload,
                )
                position += row
        return outcomes

    def _send_one(
        self, reservation_id: ReservationId, payload: bytes, now: float
    ) -> ColibriPacket:
        entry = self._reservations.get(reservation_id)
        if entry is None:
            self.packets_dropped += 1
            raise ReservationNotFound(f"gateway has no EER {reservation_id}")
        # Inline of entry.latest_live(now)'s hit path — one attribute read
        # and one float compare per packet; the miss path (expiry or fresh
        # install) takes the full recompute.
        version = entry._latest
        if version is None or now >= version.res_info.expiry:
            version = entry.latest_live(now)
            if version is None:
                self.packets_dropped += 1
                raise ReservationExpired(
                    f"all versions of EER {reservation_id} expired"
                )
        res_info = version.res_info

        # Unique Ts per packet (§4.3): microseconds before expiry plus a
        # sequence counter for packets created in the same microsecond.
        micros = int((res_info.expiry - now) * 1e6)
        last = entry.last_micros
        sequence = last[1] + 1 if last is not None and last[0] == micros else 0
        entry.last_micros = (micros, sequence)
        timestamp = Timestamp(micros, sequence)

        # Deterministic monitoring before stamping: a non-conforming
        # packet is dropped and never authorized.  PktSize is known from
        # the path geometry alone, so the drop path never builds a packet.
        size = entry.header_size + len(payload)
        if not self.monitor.check(entry.packed_id, size, now):
            self.packets_dropped += 1
            raise BandwidthExceeded(
                f"EER {reservation_id} exceeded its reserved rate"
            )
        message = _HVF_MESSAGE.pack(
            (micros << _SEQ_BITS) | sequence, size
        )
        packet = ColibriPacket.trusted(
            PacketType.EER_DATA,
            entry.path,
            res_info,
            timestamp,
            version.stamp(message),
            entry.eer_info,
            payload,
        )
        self.packets_sent += 1
        return packet

    # -- zero-copy wire path ------------------------------------------------------

    def send_batch_wire(self, requests, arena: PacketArena) -> list:
        """Stamp a burst straight into ``arena`` as wire-form packets.

        The zero-copy variant of :meth:`send_batch`: each conforming
        request claims an arena slot, gets the per-version header
        template copied in, the Ts word patched and the payload-length /
        payload written in place, and its HVFs stamped *directly into
        the slot* by the native kernel (or one flat copy on the Python
        backend).  Outcomes are request-aligned like :meth:`send_batch`,
        but successes are :class:`~repro.packets.colibri.WirePacketView`
        objects whose bytes equal ``packet.to_bytes()`` of the object
        path — no intermediate ``bytes`` is ever materialized.

        The arena is ``reset()`` at entry, so views from the previous
        burst die here (the mbuf lifetime contract).
        """
        if type(requests) is not list:
            requests = list(requests)
        obs = self.obs
        if obs is not None:
            sampler = obs.sampler
            if sampler is not None and sampler.tick():
                arena.reset()
                return self._send_burst_wire(
                    requests, arena, self.clock.now(), sampler
                )
        arena.reset()
        outcomes = self._send_burst_wire(requests, arena, self.clock.now())
        return outcomes

    @profiled("gateway.send_batch_wire")
    def _send_burst_wire(
        self, requests, arena: PacketArena, now: float, sampler=None
    ) -> list:
        if sampler is not None:
            begin = sampler.clock.now()
        stamper = self._burst
        if stamper is None:
            stamper = self._burst = burst_stamper(slots=len(requests))
        if stamper is not None:
            stamper.reserve(len(requests))
            plan_scheds = stamper.scheds
            plan_counts = stamper.counts
            plan_offsets = stamper.offsets
            messages = stamper.messages
            del messages[:]
        get_entry = self._by_packed.get
        monitor = self.monitor
        pack_message = _HVF_MESSAGE.pack
        ts_pack_into = _TS_WIRE.pack_into
        len_pack_into = _PAYLOAD_LEN_WIRE.pack_into
        buffer = arena.buffer
        # PacketArena.take inlined: cursor arithmetic in locals, written
        # back in the finally so views handed out before an error stay
        # owned by their slots.  Error messages match ``take`` exactly.
        cursor = arena._cursor
        slot_size = arena.slot_size
        nslots = arena.slots
        make_view = WirePacketView
        outcomes: list = []
        append = outcomes.append
        planned = 0
        passed = 0
        sent = 0
        dropped = 0
        arena_base = None
        try:
            for reservation_id, payload in requests:
                entry = get_entry(reservation_id.packed)
                if entry is None:
                    dropped += 1
                    append(ReservationNotFound(f"gateway has no EER {reservation_id}"))
                    continue
                version = entry._latest
                if version is None or now >= version.res_info.expiry:
                    version = entry.latest_live(now)
                    if version is None:
                        dropped += 1
                        append(
                            ReservationExpired(
                                f"all versions of EER {reservation_id} expired"
                            )
                        )
                        continue
                res_info = version.res_info
                micros = int((res_info.expiry - now) * 1e6)
                last = entry.last_micros
                sequence = last[1] + 1 if last is not None and last[0] == micros else 0
                entry.last_micros = (micros, sequence)
                if not 0 <= micros < 1 << 48 or sequence > _SEQ_MASK:
                    # Same errors Timestamp() raises on the object path.
                    Timestamp(micros, sequence)
                size = entry.header_size + len(payload)
                bucket = entry.bucket
                if bucket is None:
                    passed += 1
                else:
                    # TokenBucket.conforms inlined — same arithmetic and
                    # state writes as the method pair, minus two Python
                    # frames per packet.
                    tokens = bucket._tokens
                    if now > bucket._updated:
                        depth = bucket.depth
                        tokens += (now - bucket._updated) * bucket.rate
                        if tokens > depth:
                            tokens = depth
                        bucket._updated = now
                    bits = size * 8
                    if bits <= tokens:
                        bucket._tokens = tokens - bits
                        passed += 1
                    else:
                        bucket._tokens = tokens
                        monitor.record_drop(entry.packed_id, now, bucket)
                        dropped += 1
                        append(
                            BandwidthExceeded(
                                f"EER {reservation_id} exceeded its reserved rate"
                            )
                        )
                        continue
                template = version._wire_template
                if template is None:
                    template = ColibriPacket.wire_template(
                        PacketType.EER_DATA, entry.path, res_info, entry.eer_info
                    )
                    version._wire_template = template
                offsets = entry.wire
                if offsets is None:
                    offsets = entry.wire = ColibriPacket.wire_offsets(len(entry.path))
                ts_value = (micros << _SEQ_BITS) | sequence
                message = pack_message(ts_value, size)
                if size > slot_size:
                    raise ValueError(
                        f"packet of {size} B exceeds arena slot size {slot_size}"
                    )
                if cursor >= nslots:
                    raise ValueError(f"arena exhausted: all {nslots} slots in use")
                slot = cursor * slot_size
                cursor += 1
                buffer[slot : slot + offsets.ts] = template
                ts_pack_into(buffer, slot + offsets.ts, ts_value)
                hvf_at = slot + offsets.hvf
                schedule = version._schedule
                if schedule is not None:
                    if stamper is not None:
                        plan_scheds[planned] = schedule._scatter
                        plan_counts[planned] = schedule.count
                        plan_offsets[planned] = hvf_at
                        messages += message
                        planned += 1
                    else:
                        # Native schedule but no stamper (probe flipped
                        # after install): stamp this packet on the spot.
                        if arena_base is None:
                            arena_base = schedule.pointer(buffer)
                        schedule.stamp_into(message, arena_base + hvf_at)
                else:
                    states = version._states
                    if states is None:
                        states = version.states()
                    flat = b"".join(stamp_hvfs(states, message))
                    buffer[hvf_at : hvf_at + len(flat)] = flat
                length_at = slot + offsets.payload_len
                len_pack_into(buffer, length_at, len(payload))
                body = length_at + 4
                buffer[body : body + len(payload)] = payload
                append(make_view(buffer, slot, size))
                sent += 1
        finally:
            arena._cursor = cursor
            monitor.packets_passed += passed
            self.packets_sent += sent
            self.packets_dropped += dropped
        if sampler is not None:
            planned_at = sampler.clock.now()
        if planned:
            # One C call stamps every planned packet of the burst
            # straight into its arena slot.
            stamper.stamp_into(planned, _HVF_MESSAGE.size, stamper.pointer(buffer))
        if sampler is not None:
            # Stage split of a sampled burst: the fused per-packet loop
            # ("plan" — lookup, policing, template copy, HVF planning or
            # Python-backend stamping) vs the single native scatter-stamp
            # call ("stamp", zero when nothing was planned).
            finished = sampler.clock.now()
            sampler.observe_burst(
                len(requests),
                (
                    ("gateway.wire.plan", planned_at - begin),
                    ("gateway.wire.stamp", finished - planned_at),
                    ("gateway.wire.burst", finished - begin),
                ),
            )
        return outcomes

    # -- stage-factored variant (profiling instrumentation) -----------------------

    def send_batch_staged(self, requests) -> List[SendOutcome]:
        """:meth:`send_batch` factored into separately ``@profiled`` stages.

        Outcome- and counter-identical to :meth:`send_batch` (equivalence
        tested), but each phase — reservation dispatch, Eq. (6) stamping,
        packet assembly — runs under its own profile site, so the Fig. 5
        instrumented pass can attach a per-stage breakdown to
        ``BENCH_fig5.json``.  Slightly slower than the fused loop (it
        materializes a per-burst plan), so only the profiling pass and
        tests call it.
        """
        if type(requests) is not list:
            requests = list(requests)
        if not requests:
            return []
        now = self.clock.now()
        plan, outcomes = self._stage_dispatch(requests, now)
        stamped = self._stage_stamp(plan)
        return self._stage_serialize(plan, stamped, outcomes)

    @profiled("gateway.stage.dispatch")
    def _stage_dispatch(self, requests, now: float):
        """Resolve reservations, assign Ts, account the monitor."""
        get_entry = self._reservations.get
        monitor = self.monitor
        pack_message = _HVF_MESSAGE.pack
        outcomes: List[SendOutcome] = [None] * len(requests)
        plan = []  # (index, entry, version, Timestamp, message, payload)
        add = plan.append
        dropped = 0
        try:
            for index, (reservation_id, payload) in enumerate(requests):
                entry = get_entry(reservation_id)
                if entry is None:
                    dropped += 1
                    outcomes[index] = ReservationNotFound(
                        f"gateway has no EER {reservation_id}"
                    )
                    continue
                version = entry._latest
                if version is None or now >= version.res_info.expiry:
                    version = entry.latest_live(now)
                    if version is None:
                        dropped += 1
                        outcomes[index] = ReservationExpired(
                            f"all versions of EER {reservation_id} expired"
                        )
                        continue
                res_info = version.res_info
                micros = int((res_info.expiry - now) * 1e6)
                last = entry.last_micros
                sequence = last[1] + 1 if last is not None and last[0] == micros else 0
                entry.last_micros = (micros, sequence)
                timestamp = Timestamp(micros, sequence)
                size = entry.header_size + len(payload)
                bucket = entry.bucket
                if bucket is None or bucket.conforms(size, now):
                    monitor.packets_passed += 1
                else:
                    monitor.record_drop(entry.packed_id, now, bucket)
                    dropped += 1
                    outcomes[index] = BandwidthExceeded(
                        f"EER {reservation_id} exceeded its reserved rate"
                    )
                    continue
                message = pack_message((micros << _SEQ_BITS) | sequence, size)
                add((index, entry, version, timestamp, message, payload))
        finally:
            self.packets_dropped += dropped
        return plan, outcomes

    @profiled("gateway.stage.stamp")
    def _stage_stamp(self, plan) -> list:
        """Eq. (6) for every planned packet."""
        return [row[2].stamp(row[4]) for row in plan]

    @profiled("gateway.stage.serialize")
    def _stage_serialize(self, plan, stamped, outcomes) -> List[SendOutcome]:
        """Assemble packet objects from the plan and its stamps."""
        trusted = ColibriPacket.trusted
        eer_data = PacketType.EER_DATA
        sent = 0
        try:
            for (index, entry, version, timestamp, _message, payload), hvfs in zip(
                plan, stamped
            ):
                outcomes[index] = trusted(
                    eer_data,
                    entry.path,
                    version.res_info,
                    timestamp,
                    hvfs,
                    entry.eer_info,
                    payload,
                )
                sent += 1
        finally:
            self.packets_sent += sent
        return outcomes

    def refresh_monitor(self, reservation_id: ReservationId) -> None:
        """Re-sync the monitor rate after versions expired (called lazily
        by housekeeping; expiry of a high-bandwidth version lowers the
        effective budget)."""
        entry = self._reservations.get(reservation_id)
        if entry is None:
            return
        entry.invalidate_caches()
        now = self.clock.now()
        self.monitor.watch(entry.packed_id, entry.effective_bandwidth(now), now)
        entry.bucket = self.monitor.bucket_for(entry.packed_id)


def split_batch(outcomes: List[SendOutcome]) -> Tuple[list, list]:
    """Partition :meth:`ColibriGateway.send_batch` outcomes.

    Returns ``(packets, drops)`` where drops are ``(index, error)`` pairs
    in request order.
    """
    packets = []
    drops = []
    for index, outcome in enumerate(outcomes):
        if isinstance(outcome, ColibriPacket):
            packets.append(outcome)
        else:
            drops.append((index, outcome))
    return packets, drops
