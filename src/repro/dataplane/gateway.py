"""The Colibri gateway (§3.2, §4.6).

All Colibri traffic of an AS's end hosts passes through the gateway,
which is the *stateful* half of the data plane:

* it maps the ResId of incoming EER packets to the Path, ResInfo,
  EERInfo, and HopAuths obtained during setup/renewal;
* it performs **deterministic traffic monitoring** (token bucket per
  flow) — the duty other ASes hold this AS accountable for;
* it generates the high-precision timestamp Ts and computes the HVFs for
  all on-path ASes (Eq. 6), confirming "that it has performed the
  mandatory flow monitoring and authorized this packet".

HopAuths are **per version**: Eq. (4) covers ResInfo, which contains the
version number, so a renewal installs a fresh HopAuth set.  The gateway
stamps packets with the latest live version (§4.2) while the monitor
keys on the reservation ID alone, so using several versions can never
exceed the maximum version bandwidth (§4.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dataplane.hvf import eer_hvf
from repro.dataplane.monitor import DeterministicMonitor
from repro.errors import (
    BandwidthExceeded,
    ReservationExpired,
    ReservationNotFound,
)
from repro.packets.colibri import ColibriPacket, PacketType
from repro.packets.fields import EerInfo, PathField, ResInfo, Timestamp
from repro.reservation.ids import ReservationId
from repro.topology.addresses import IsdAs
from repro.util.clock import Clock


@dataclass
class GatewayVersion:
    """One installed EER version: its ResInfo and per-AS HopAuths."""

    res_info: ResInfo
    hop_auths: tuple  # one sigma_i per on-path AS, in path order

    @property
    def version(self) -> int:
        return self.res_info.version

    @property
    def expiry(self) -> float:
        return self.res_info.expiry

    def is_live(self, now: float) -> bool:
        return now < self.res_info.expiry


@dataclass
class GatewayReservation:
    """Everything the gateway keeps per EER."""

    reservation_id: ReservationId
    path: PathField
    eer_info: EerInfo
    versions: dict  # version number -> GatewayVersion

    def latest_live(self, now: float) -> Optional[GatewayVersion]:
        live = [v for v in self.versions.values() if v.is_live(now)]
        return max(live, key=lambda v: v.version) if live else None

    def effective_bandwidth(self, now: float) -> float:
        return max(
            (v.res_info.bandwidth for v in self.versions.values() if v.is_live(now)),
            default=0.0,
        )


class ColibriGateway:
    """The source AS's gateway: monitor, stamp, and forward EER packets."""

    def __init__(self, isd_as: IsdAs, clock: Clock, monitor: DeterministicMonitor = None):
        self.isd_as = isd_as
        self.clock = clock
        self.monitor = monitor or DeterministicMonitor()
        self._reservations: dict[ReservationId, GatewayReservation] = {}
        self._last_micros: dict[ReservationId, tuple] = {}  # (micros, seq)
        self.packets_sent = 0
        self.packets_dropped = 0

    # -- reservation installation (fed by the CServ after EER setup) -----------

    def install(
        self,
        reservation_id: ReservationId,
        path: PathField,
        eer_info: EerInfo,
        res_info: ResInfo,
        hop_auths: tuple,
    ) -> None:
        """Install a new EER or an additional version of an existing one.

        Called by the CServ with the HopAuths it decrypted from the setup
        or renewal response (step 5 of Fig. 1b).
        """
        if len(hop_auths) != len(path):
            raise ValueError(
                f"need one HopAuth per hop: {len(hop_auths)} vs {len(path)} hops"
            )
        entry = self._reservations.get(reservation_id)
        if entry is None:
            entry = GatewayReservation(
                reservation_id=reservation_id,
                path=path,
                eer_info=eer_info,
                versions={},
            )
            self._reservations[reservation_id] = entry
        entry.versions[res_info.version] = GatewayVersion(
            res_info=res_info, hop_auths=tuple(hop_auths)
        )
        # (Re-)arm the deterministic monitor at the new effective bandwidth.
        now = self.clock.now()
        self.monitor.watch(
            reservation_id.packed, entry.effective_bandwidth(now), now
        )

    def uninstall(self, reservation_id: ReservationId) -> None:
        self._reservations.pop(reservation_id, None)
        self._last_micros.pop(reservation_id, None)
        self.monitor.unwatch(reservation_id.packed)

    def reservation_count(self) -> int:
        return len(self._reservations)

    def known_reservations(self) -> list:
        return list(self._reservations)

    # -- the per-packet fast path (§4.6) ------------------------------------------

    def _timestamp(self, reservation_id: ReservationId, expiry: float, now: float) -> Timestamp:
        """Unique Ts per packet: microseconds before expiry + sequence
        counter for packets created in the same microsecond."""
        micros = int((expiry - now) * 1e6)
        last = self._last_micros.get(reservation_id)
        sequence = last[1] + 1 if last is not None and last[0] == micros else 0
        self._last_micros[reservation_id] = (micros, sequence)
        return Timestamp(micros, sequence)

    def send(self, reservation_id: ReservationId, payload: bytes) -> ColibriPacket:
        """Process one packet from a local end host.

        The host hands the gateway its ResId and payload (its packet's
        "header fields are empty, with the exception of the ResId and the
        Payload").  Returns the fully stamped packet ready for the border
        router, or raises — a raise is a drop.
        """
        now = self.clock.now()
        entry = self._reservations.get(reservation_id)
        if entry is None:
            self.packets_dropped += 1
            raise ReservationNotFound(f"gateway has no EER {reservation_id}")
        version = entry.latest_live(now)
        if version is None:
            self.packets_dropped += 1
            raise ReservationExpired(f"all versions of EER {reservation_id} expired")

        # Deterministic monitoring before stamping: a non-conforming
        # packet is dropped and never authorized.
        timestamp = self._timestamp(reservation_id, version.expiry, now)
        packet = ColibriPacket(
            packet_type=PacketType.EER_DATA,
            path=entry.path,
            res_info=version.res_info,
            timestamp=timestamp,
            hvfs=[ColibriPacket.EMPTY_HVF] * len(entry.path),
            eer_info=entry.eer_info,
            payload=payload,
        )
        size = packet.total_size
        if not self.monitor.check(reservation_id.packed, size, now):
            self.packets_dropped += 1
            raise BandwidthExceeded(
                f"EER {reservation_id} exceeded its reserved rate"
            )
        packet.hvfs = [
            eer_hvf(sigma, timestamp, size) for sigma in version.hop_auths
        ]
        self.packets_sent += 1
        return packet

    def refresh_monitor(self, reservation_id: ReservationId) -> None:
        """Re-sync the monitor rate after versions expired (called lazily
        by housekeeping; expiry of a high-bandwidth version lowers the
        effective budget)."""
        entry = self._reservations.get(reservation_id)
        if entry is None:
            return
        now = self.clock.now()
        self.monitor.watch(reservation_id.packed, entry.effective_bandwidth(now), now)
