"""The Colibri gateway (§3.2, §4.6).

All Colibri traffic of an AS's end hosts passes through the gateway,
which is the *stateful* half of the data plane:

* it maps the ResId of incoming EER packets to the Path, ResInfo,
  EERInfo, and HopAuths obtained during setup/renewal;
* it performs **deterministic traffic monitoring** (token bucket per
  flow) — the duty other ASes hold this AS accountable for;
* it generates the high-precision timestamp Ts and computes the HVFs for
  all on-path ASes (Eq. 6), confirming "that it has performed the
  mandatory flow monitoring and authorized this packet".

HopAuths are **per version**: Eq. (4) covers ResInfo, which contains the
version number, so a renewal installs a fresh HopAuth set.  The gateway
stamps packets with the latest live version (§4.2) while the monitor
keys on the reservation ID alone, so using several versions can never
exceed the maximum version bandwidth (§4.8).

Fast-path engineering (docs/performance.md): the latest live version and
the effective bandwidth are cached per reservation and invalidated on
install/uninstall/expiry; installation prehashes one MAC state per
on-path σ — key scheduling at control-plane time, like expanding AES
round keys at setup — so Eq. (6) stamping costs three C calls per hop;
and :meth:`ColibriGateway.send_batch` amortizes the clock read over a
burst.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.dataplane.hvf import sigma_states, stamp_hvfs
from repro.dataplane.monitor import DeterministicMonitor
from repro.obs.profile import profiled
from repro.errors import (
    BandwidthExceeded,
    DataPlaneError,
    ReservationError,
    ReservationExpired,
    ReservationNotFound,
)
from repro.packets.colibri import ColibriPacket, PacketType
from repro.packets.fields import EerInfo, PathField, ResInfo, Timestamp
from repro.reservation.ids import ReservationId
from repro.topology.addresses import IsdAs
from repro.util.clock import Clock

#: A stamped packet, or the error that dropped the request (send_batch).
SendOutcome = Union[ColibriPacket, ReservationError, DataPlaneError]

#: The Eq. (6) MAC input ``Ts || PktSize`` in one struct: byte-identical
#: to ``eer_hvf_message(Timestamp(micros, seq), size)`` (``!Q`` of the
#: packed Ts word followed by ``!I`` of PktSize), built with a single C
#: call on the send fast path.
_HVF_MESSAGE = struct.Struct("!QI")


@dataclass
class GatewayVersion:
    """One installed EER version: its ResInfo and per-AS HopAuths."""

    res_info: ResInfo
    hop_auths: tuple  # one sigma_i per on-path AS, in path order
    #: Prehashed Eq. (6) MAC states, one per σ.  :meth:`ColibriGateway.install`
    #: builds them at control-plane time — the software analogue of
    #: expanding AES round keys at setup — so no data packet ever pays a
    #: key schedule.  Not part of the version's identity and not picklable.
    _states: Optional[tuple] = field(default=None, repr=False, compare=False)

    @property
    def version(self) -> int:
        return self.res_info.version

    @property
    def expiry(self) -> float:
        return self.res_info.expiry

    def is_live(self, now: float) -> bool:
        return now < self.res_info.expiry

    def states(self) -> tuple:
        """Prehashed σ states (one per hop), built on first demand for
        versions not installed through :meth:`ColibriGateway.install`."""
        states = self._states
        if states is None:
            states = sigma_states(self.hop_auths)
            self._states = states
        return states

    def stamp(self, message: bytes) -> list:
        """All per-hop HVFs (Eq. 6) of one packet over ``message``."""
        states = self._states
        if states is None:
            states = self.states()
        return stamp_hvfs(states, message)


@dataclass
class GatewayReservation:
    """Everything the gateway keeps per EER."""

    reservation_id: ReservationId
    path: PathField
    eer_info: EerInfo
    versions: dict  # version number -> GatewayVersion
    #: Header bytes of every packet on this EER (fixed by path length).
    header_size: int = 0
    #: ``reservation_id.packed``, computed once: the monitor's flow label
    #: and part of every replay identifier — packing 12 bytes per packet
    #: would shadow the MAC cost on short paths.
    packed_id: bytes = b""
    #: ``(micros, sequence)`` of the latest stamped packet, for Ts
    #: uniqueness (kept here so the fast path does not hash the
    #: ReservationId a second time against a side table).
    last_micros: Optional[tuple] = field(default=None, repr=False, compare=False)
    # Soft per-reservation caches, invalidated on install/uninstall and
    # (for expiry-driven changes) by refresh_monitor; latest_live also
    # self-invalidates the moment the cached version stops being live.
    _latest: Optional[GatewayVersion] = field(default=None, repr=False, compare=False)
    _bandwidth: Optional[tuple] = field(default=None, repr=False, compare=False)

    def invalidate_caches(self) -> None:
        self._latest = None
        self._bandwidth = None

    def latest_live(self, now: float) -> Optional[GatewayVersion]:
        cached = self._latest
        if cached is not None and now < cached.res_info.expiry:
            return cached
        live = [v for v in self.versions.values() if v.is_live(now)]
        latest = max(live, key=lambda v: v.version) if live else None
        # Installing a higher version invalidates, and expiry is checked
        # above, so the cached answer can never outlive its validity.
        self._latest = latest
        return latest

    def effective_bandwidth(self, now: float) -> float:
        cached = self._bandwidth
        if cached is not None and now < cached[1]:
            return cached[0]
        live = [v for v in self.versions.values() if v.is_live(now)]
        if not live:
            self._bandwidth = None
            return 0.0
        value = max(v.res_info.bandwidth for v in live)
        # Valid until the first live version expires: only an expiry (or
        # an install, which invalidates) can change the live set.
        valid_until = min(v.res_info.expiry for v in live)
        self._bandwidth = (value, valid_until)
        return value


class ColibriGateway:
    """The source AS's gateway: monitor, stamp, and forward EER packets."""

    def __init__(self, isd_as: IsdAs, clock: Clock, monitor: DeterministicMonitor = None):
        self.isd_as = isd_as
        self.clock = clock
        self.monitor = monitor or DeterministicMonitor()
        self._reservations: dict[ReservationId, GatewayReservation] = {}
        self.packets_sent = 0
        self.packets_dropped = 0

    # -- reservation installation (fed by the CServ after EER setup) -----------

    def install(
        self,
        reservation_id: ReservationId,
        path: PathField,
        eer_info: EerInfo,
        res_info: ResInfo,
        hop_auths: tuple,
    ) -> None:
        """Install a new EER or an additional version of an existing one.

        Called by the CServ with the HopAuths it decrypted from the setup
        or renewal response (step 5 of Fig. 1b).
        """
        if len(hop_auths) != len(path):
            raise ValueError(
                f"need one HopAuth per hop: {len(hop_auths)} vs {len(path)} hops"
            )
        entry = self._reservations.get(reservation_id)
        if entry is None:
            entry = GatewayReservation(
                reservation_id=reservation_id,
                path=path,
                eer_info=eer_info,
                versions={},
                header_size=ColibriPacket.header_size_for(len(path)),
                packed_id=reservation_id.packed,
            )
            self._reservations[reservation_id] = entry
        version = GatewayVersion(res_info=res_info, hop_auths=tuple(hop_auths))
        # Pay the per-σ key schedules now, at control-plane rate: every
        # data packet of this version then stamps from prehashed states.
        version.states()
        entry.versions[res_info.version] = version
        entry.invalidate_caches()
        # (Re-)arm the deterministic monitor at the new effective
        # bandwidth, and prime the latest-live cache so a reservation's
        # first data packet takes the same path as its millionth.
        now = self.clock.now()
        entry.latest_live(now)
        self.monitor.watch(entry.packed_id, entry.effective_bandwidth(now), now)

    def uninstall(self, reservation_id: ReservationId) -> None:
        entry = self._reservations.pop(reservation_id, None)
        if entry is not None:
            entry.invalidate_caches()
        self.monitor.unwatch(reservation_id.packed)

    def reservation_count(self) -> int:
        return len(self._reservations)

    def known_reservations(self) -> list:
        return list(self._reservations)

    # -- the per-packet fast path (§4.6) ------------------------------------------

    def send(self, reservation_id: ReservationId, payload: bytes) -> ColibriPacket:
        """Process one packet from a local end host.

        The host hands the gateway its ResId and payload (its packet's
        "header fields are empty, with the exception of the ResId and the
        Payload").  Returns the fully stamped packet ready for the border
        router, or raises — a raise is a drop.
        """
        return self._send_one(reservation_id, payload, self.clock.now())

    @profiled("gateway.send_batch")
    def send_batch(self, requests) -> List[SendOutcome]:
        """Stamp a burst of ``(reservation_id, payload)`` requests.

        Semantically identical to calling :meth:`send` per request, in
        order — same packets, same monitor accounting, same counters —
        except that drops come back as error *values* (aligned with their
        request) instead of raised exceptions, and the clock is read once
        for the whole burst, the fixed cost the paper's DPDK gateway
        amortizes across NIC bursts.
        """
        now = self.clock.now()
        send_one = self._send_one
        outcomes: List[SendOutcome] = []
        append = outcomes.append
        for reservation_id, payload in requests:
            try:
                append(send_one(reservation_id, payload, now))
            except (ReservationError, DataPlaneError) as error:
                append(error)
        return outcomes

    def _send_one(
        self, reservation_id: ReservationId, payload: bytes, now: float
    ) -> ColibriPacket:
        entry = self._reservations.get(reservation_id)
        if entry is None:
            self.packets_dropped += 1
            raise ReservationNotFound(f"gateway has no EER {reservation_id}")
        # Inline of entry.latest_live(now)'s hit path — one attribute read
        # and one float compare per packet; the miss path (expiry or fresh
        # install) takes the full recompute.
        version = entry._latest
        if version is None or now >= version.res_info.expiry:
            version = entry.latest_live(now)
            if version is None:
                self.packets_dropped += 1
                raise ReservationExpired(
                    f"all versions of EER {reservation_id} expired"
                )
        res_info = version.res_info

        # Unique Ts per packet (§4.3): microseconds before expiry plus a
        # sequence counter for packets created in the same microsecond.
        micros = int((res_info.expiry - now) * 1e6)
        last = entry.last_micros
        sequence = last[1] + 1 if last is not None and last[0] == micros else 0
        entry.last_micros = (micros, sequence)
        timestamp = Timestamp(micros, sequence)

        # Deterministic monitoring before stamping: a non-conforming
        # packet is dropped and never authorized.  PktSize is known from
        # the path geometry alone, so the drop path never builds a packet.
        size = entry.header_size + len(payload)
        if not self.monitor.check(entry.packed_id, size, now):
            self.packets_dropped += 1
            raise BandwidthExceeded(
                f"EER {reservation_id} exceeded its reserved rate"
            )
        message = _HVF_MESSAGE.pack(
            (micros << Timestamp._SEQ_BITS) | sequence, size
        )
        packet = ColibriPacket.trusted(
            PacketType.EER_DATA,
            entry.path,
            res_info,
            timestamp,
            version.stamp(message),
            entry.eer_info,
            payload,
        )
        self.packets_sent += 1
        return packet

    def refresh_monitor(self, reservation_id: ReservationId) -> None:
        """Re-sync the monitor rate after versions expired (called lazily
        by housekeeping; expiry of a high-bandwidth version lowers the
        effective budget)."""
        entry = self._reservations.get(reservation_id)
        if entry is None:
            return
        entry.invalidate_caches()
        now = self.clock.now()
        self.monitor.watch(entry.packed_id, entry.effective_bandwidth(now), now)


def split_batch(outcomes: List[SendOutcome]) -> Tuple[list, list]:
    """Partition :meth:`ColibriGateway.send_batch` outcomes.

    Returns ``(packets, drops)`` where drops are ``(index, error)`` pairs
    in request order.
    """
    packets = []
    drops = []
    for index, outcome in enumerate(outcomes):
        if isinstance(outcome, ColibriPacket):
            packets.append(outcome)
        else:
            drops.append((index, outcome))
    return packets, drops
