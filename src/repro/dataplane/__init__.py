"""Data plane: gateway, border router, HVF crypto, monitoring, policing,
duplicate suppression, and traffic-class isolation."""

from repro.dataplane.blocklist import Blocklist
from repro.dataplane.dscp import InternalSwitch, MarkedFrame, classify_packet
from repro.dataplane.duplicate import DuplicateSuppressor
from repro.dataplane.gateway import ColibriGateway
from repro.dataplane.hvf import (
    ColibriKeys,
    eer_hvf,
    hop_authenticator,
    segment_token,
    verify_eer_hvf,
    verify_segment_token,
)
from repro.dataplane.monitor import DeterministicMonitor
from repro.dataplane.ofd import OveruseFlowDetector
from repro.dataplane.queueing import PriorityScheduler, TrafficClass
from repro.dataplane.router import BorderRouter
from repro.dataplane.sample_hold import SampleAndHoldDetector
from repro.dataplane.shards import ShardExecutor, shard_of
from repro.dataplane.sigma_cache import SigmaCache
from repro.dataplane.token_bucket import TokenBucket

__all__ = [
    "ColibriKeys",
    "segment_token",
    "hop_authenticator",
    "eer_hvf",
    "verify_segment_token",
    "verify_eer_hvf",
    "ColibriGateway",
    "BorderRouter",
    "SigmaCache",
    "ShardExecutor",
    "shard_of",
    "TokenBucket",
    "DuplicateSuppressor",
    "OveruseFlowDetector",
    "DeterministicMonitor",
    "Blocklist",
    "PriorityScheduler",
    "TrafficClass",
    "SampleAndHoldDetector",
    "InternalSwitch",
    "MarkedFrame",
    "classify_packet",
]
