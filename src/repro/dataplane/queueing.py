"""Traffic-class isolation on a shared link (§3.4, Appendix B).

Colibri defines three traffic classes — best-effort, Colibri control, and
Colibri data — separated by "queuing techniques such as priority queuing
or class-based weighted fair queuing".  Appendix B notes that *strict*
priority queuing is safe here: the CServ's admission guarantees that
active reservations never exceed the Colibri share of the link, so giving
Colibri queues absolute priority cannot starve best-effort below its
20 % floor.  Unused Colibri bandwidth is scavenged by best-effort, so "no
bandwidth is wasted".

:class:`PriorityScheduler` models one output port: per-class drop-tail
FIFO queues and a drain operation that serves one time slice in strict
priority order (control > Colibri data > best-effort).  The Table 2
bench drives three input mixes through it and reads the per-class output
rates.
"""

from __future__ import annotations

import enum
from collections import deque


class TrafficClass(enum.IntEnum):
    """Priority order: lower value = served first."""

    CONTROL = 0  # Colibri control traffic over SegRs (5 % share)
    EER_DATA = 1  # Colibri data traffic over EERs (75 % share)
    BEST_EFFORT = 2  # everything else (>= 20 % share by construction)


class PriorityScheduler:
    """Strict-priority link scheduler with per-class accounting."""

    #: Default queue depth per class, in bytes (a few ms at 40 Gbps).
    DEFAULT_QUEUE_BYTES = 32 * 1024 * 1024

    def __init__(self, capacity: float, queue_bytes: int = DEFAULT_QUEUE_BYTES):
        if capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity}")
        self.capacity = capacity  # bits per second
        self.queue_bytes = queue_bytes
        self._queues = {cls: deque() for cls in TrafficClass}
        self._queued_bytes = {cls: 0 for cls in TrafficClass}
        self.enqueued = {cls: 0 for cls in TrafficClass}
        self.tail_dropped = {cls: 0 for cls in TrafficClass}
        self.sent_bytes = {cls: 0 for cls in TrafficClass}

    def enqueue(self, size_bytes: int, traffic_class: TrafficClass) -> bool:
        """Queue one packet; ``False`` means tail-dropped (queue full)."""
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        if self._queued_bytes[traffic_class] + size_bytes > self.queue_bytes:
            self.tail_dropped[traffic_class] += 1
            return False
        self._queues[traffic_class].append(size_bytes)
        self._queued_bytes[traffic_class] += size_bytes
        self.enqueued[traffic_class] += 1
        return True

    def drain(self, duration: float) -> dict:
        """Serve one time slice; returns bytes sent per class.

        The budget is ``capacity * duration`` bits, spent on queues in
        strict priority order.  A packet is sent only if it fits the
        remaining budget entirely (no preemption mid-packet), which gives
        the same long-run rates as a fluid model while staying
        packet-accurate.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        budget_bits = self.capacity * duration
        sent = {cls: 0 for cls in TrafficClass}
        for traffic_class in TrafficClass:
            queue = self._queues[traffic_class]
            while queue and queue[0] * 8 <= budget_bits:
                size = queue.popleft()
                self._queued_bytes[traffic_class] -= size
                budget_bits -= size * 8
                sent[traffic_class] += size
                self.sent_bytes[traffic_class] += size
        return sent

    def backlog_bytes(self, traffic_class: TrafficClass) -> int:
        return self._queued_bytes[traffic_class]

    def total_backlog(self) -> int:
        return sum(self._queued_bytes.values())

    def output_rate(self, traffic_class: TrafficClass, elapsed: float) -> float:
        """Average output in bits per second over ``elapsed`` seconds."""
        if elapsed <= 0:
            raise ValueError(f"elapsed must be positive, got {elapsed}")
        return self.sent_bytes[traffic_class] * 8 / elapsed
