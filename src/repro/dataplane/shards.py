"""Shared-nothing shard executor for the data-plane fast paths (Fig. 6).

The paper's multi-core claim — "for both components, the performance is
almost perfectly linear in the number of cores dedicated to packet
processing" (§7.1) — rests on a structural property: the fast paths
share no mutable state.  The border router is fully stateless (§4.6),
and the gateway's state partitions cleanly by reservation ID, so k cores
can each run a complete, independent stack.

This module makes that structure executable rather than argued:

* :func:`shard_of` is the partition rule — a process-stable hash of the
  reservation ID's wire bytes (CPython's builtin ``hash`` is salted per
  process and would assign the same reservation to different shards in
  different workers);
* :func:`run_shard` is a picklable worker that builds its *own* gateway
  or router, its own monitor, its own clock — nothing is shared, not
  even read-only — installs only the reservations :func:`shard_of` maps
  to it, and times a batched packet loop with
  :class:`~repro.util.clock.PerfClock` (setup is control-plane work and
  excluded, as in the paper's measurements);
* :class:`ShardWorkerPool` keeps those workers *alive*: long-lived
  daemon processes, one inbox each, caching the built-and-warmed stack
  per spec so repeated measurements of a sweep point time steady-state
  forwarding rather than fork + install + warm-up;
* :class:`ShardExecutor` fans the workers out as OS processes when the
  host has the cores and aggregates *measured* throughput; on smaller
  hosts it falls back to the linear model and says so — every result
  carries an explicit ``mode`` label so a modeled number can never
  masquerade as a measured one.

Aggregate throughput of a measured run is ``total packets / slowest
shard's loop time``: under true parallelism the shards overlap and this
approaches the sum of per-shard rates, while on an oversubscribed host
the preempted shards stretch their own timing windows and the aggregate
honestly degrades to single-core throughput instead of fabricating a
k-times speedup.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import random
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.constants import EER_LIFETIME
from repro.crypto.drkey import DrkeyDeriver
from repro.dataplane.gateway import ColibriGateway
from repro.dataplane.hvf import ColibriKeys, eer_hvf, hop_authenticator
from repro.dataplane.router import BorderRouter
from repro.errors import SimulationError
from repro.obs.distributed import (
    MergedTelemetry,
    TraceContext,
    frames_from,
    merge_frames,
)
from repro.obs.events import SHARD_COMPLETED, EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceCollector
from repro.packets.colibri import ColibriPacket, PacketType
from repro.packets.fields import EerInfo, PathField, ResInfo, Timestamp
from repro.reservation.ids import ReservationId
from repro.topology.addresses import HostAddr, IsdAs
from repro.util.clock import PerfClock, SimClock
from repro.util.metrics import merge_counters
from repro.util.units import gbps

#: Private-use AS number range, same convention as the benchmarks.
_BASE = 0xFF00_0000_0000
_SRC = IsdAs(1, _BASE + 1)
_ROUTER_AS = IsdAs(1, _BASE + 2)


def shard_of(reservation_id: ReservationId, num_shards: int) -> int:
    """The shard owning ``reservation_id``, stable across processes.

    Hashes the 12-byte wire form with (unkeyed) BLAKE2s so that every
    worker, in every process, on every run agrees on the assignment —
    the property the gateway's dispatcher and the per-shard installers
    both rely on.
    """
    if num_shards <= 0:
        raise ValueError(f"shard count must be positive, got {num_shards}")
    digest = hashlib.blake2s(reservation_id.packed, digest_size=4).digest()
    return int.from_bytes(digest, "big") % num_shards


@dataclass(frozen=True)
class ShardSpec:
    """Everything one worker needs, picklable for process dispatch."""

    component: str  # "gateway" or "router"
    shard_index: int
    num_shards: int
    path_length: int = 4
    #: Global reservation count; the worker installs only the subset
    #: :func:`shard_of` assigns to ``shard_index``.
    reservations: int = 1024
    #: Data packets this shard pushes through its timed loop.
    packets: int = 16384
    batch: int = 64
    seed: int = 2026
    #: Arms a per-worker obs shard (tracer/registry/journal, seeded
    #: ``obs_seed + shard_index``) whose capture streams back to the
    #: parent as telemetry frames; ``None`` keeps the worker obs-free
    #: and the result queue carrying nothing but the outcome tuple.
    obs_seed: Optional[int] = None
    #: Propagated caller context: the worker's root span grafts onto
    #: this trace, and its sampling decision gates span collection.
    trace: Optional[TraceContext] = None


@dataclass
class ShardOutcome:
    """One worker's measurement."""

    shard_index: int
    packets: int
    elapsed: float  # seconds inside the timed loop only
    pps: float
    #: Telemetry counters of the shard's private stack (gateway/monitor
    #: packet counts, σ-cache hits/misses), snapshotted in the worker and
    #: shipped back across the process boundary.  Before this field
    #: existed the per-process counters died with the worker, so a
    #: sharded run reported throughput with a blank forensic record.
    counters: dict = field(default_factory=dict)
    #: Sequence-numbered telemetry frames from the shard's obs capture
    #: (spans, journal events, registry state), empty unless the spec
    #: carried an ``obs_seed``.  Frames travel the result queue as their
    #: own messages; the parent reattaches them here.
    frames: list = field(default_factory=list)


@dataclass
class ShardRunResult:
    """Aggregate of one :meth:`ShardExecutor.run` invocation."""

    component: str
    num_shards: int
    #: ``"measured"`` — every shard ran as its own OS process;
    #: ``"measured-oversubscribed"`` — processes ran, but the host has
    #: fewer CPUs than shards, so overlap is partial;
    #: ``"modeled"`` — one shard measured, aggregate extrapolated
    #: linearly (the fallback for hosts without the cores).
    mode: str
    shards: List[ShardOutcome]
    aggregate_pps: float

    @property
    def measured(self) -> bool:
        return self.mode.startswith("measured")

    def telemetry(self) -> dict:
        """Per-shard counters plus their merged ``total``, in the same
        ``{entity: {counter: value}}`` shape as
        :meth:`~repro.sim.scenario.ColibriNetwork.telemetry`, so
        :func:`repro.util.observability.render_metrics` ingests it
        directly."""
        snapshot = {
            f"shard-{outcome.shard_index}": dict(outcome.counters)
            for outcome in self.shards
        }
        snapshot["total"] = merge_counters(
            [outcome.counters for outcome in self.shards]
        )
        return snapshot

    def merged_telemetry(
        self, expected_workers: Optional[List[int]] = None
    ) -> Optional[MergedTelemetry]:
        """Reassemble the workers' streamed obs shards into one
        :class:`~repro.obs.distributed.MergedTelemetry` (spans per
        worker, merged registry, identity-ordered events).

        Returns ``None`` when no shard carried frames (obs was off).
        Pass ``expected_workers`` to turn a silently absent stream into
        a :class:`~repro.obs.distributed.TelemetryGapError` — the check
        the campaign harness's worker-stream checker runs.
        """
        frames = [
            frame for outcome in self.shards for frame in outcome.frames
        ]
        if not frames and expected_workers is None:
            return None
        return merge_frames(frames, expected_workers=expected_workers)


def _owned_ids(spec: ShardSpec) -> list:
    """This shard's slice of the global reservation ID space."""
    owned = []
    for index in range(spec.reservations):
        res_id = ReservationId(_SRC, index + 1)
        if shard_of(res_id, spec.num_shards) == spec.shard_index:
            owned.append(res_id)
    return owned


def _gateway_workload(spec: ShardSpec):
    """A private gateway with this shard's reservations installed, plus
    the pregenerated request batches for the timed loop.

    Returns ``(loop, snapshot, clock)``: the timed packet loop, a
    zero-arg callable reading the stack's counters (taken *in the
    worker* so the numbers survive the process boundary), and the
    stack's deterministic clock — the timestamp source for the shard's
    optional obs capture."""
    clock = SimClock(1000.0)
    gateway = ColibriGateway(_SRC, clock)
    rng = random.Random(spec.seed + spec.shard_index)
    pairs = [(0, 1)] + [(2, 3)] * (spec.path_length - 2) + [(4, 0)]
    path = PathField(tuple(pairs))
    eer_info = EerInfo(HostAddr(1), HostAddr(2))
    expiry = clock.now() + EER_LIFETIME * 1000  # outlives the bench

    def snapshot() -> dict:
        return {
            "gateway_sent": gateway.packets_sent,
            "gateway_dropped": gateway.packets_dropped,
            "monitor_passed": gateway.monitor.packets_passed,
            "monitor_dropped": gateway.monitor.packets_dropped,
        }

    ids = _owned_ids(spec)
    if not ids:
        # A shard can own nothing (fewer reservations than shards, e.g.
        # Fig. 6's r=1 column): it simply idles.
        return (lambda: 0), snapshot, clock
    for res_id in ids:
        res_info = ResInfo(
            reservation=res_id, bandwidth=gbps(1000), expiry=expiry, version=1
        )
        hop_auths = tuple(
            rng.getrandbits(128).to_bytes(16, "big")
            for _ in range(spec.path_length)
        )
        gateway.install(res_id, path, eer_info, res_info, hop_auths)
    batches = [
        [(ids[rng.randrange(len(ids))], b"") for _ in range(spec.batch)]
        for _ in range(max(1, spec.packets // spec.batch))
    ]

    def loop() -> int:
        done = 0
        send_batch = gateway.send_batch
        # One microsecond of virtual time per burst: keeps Ts sequence
        # numbers (16 bits per microsecond per reservation) from being
        # exhausted when every packet hits one reservation (r=1).
        advance = clock.advance
        for requests in batches:
            send_batch(requests)
            advance(1e-6)
            done += len(requests)
        return done

    return loop, snapshot, clock


def _router_workload(spec: ShardSpec):
    """A private border router plus honestly stamped packets for this
    shard's reservations, batched for the timed validation loop.

    Returns ``(loop, snapshot, clock)`` like :func:`_gateway_workload`; the
    router's counters are its σ-cache statistics (the validation loop
    bypasses the verdict pipeline, so cache behaviour *is* its telemetry)."""
    clock = SimClock(1000.0)
    keys = ColibriKeys(DrkeyDeriver(_ROUTER_AS, clock, seed=b"shard-router-key"))
    router = BorderRouter(_ROUTER_AS, keys, clock)
    rng = random.Random(spec.seed + spec.shard_index)
    pairs = [(0, 1)] + [(2, 3)] * (spec.path_length - 2) + [(4, 0)]
    path = PathField(tuple(pairs))
    eer_info = EerInfo(HostAddr(1), HostAddr(2))
    expiry = clock.now() + EER_LIFETIME

    def snapshot() -> dict:
        cache = router.sigma_cache
        return dict(cache.snapshot()) if cache is not None else {}

    owned = _owned_ids(spec)
    if not owned:
        return (lambda: 0), snapshot, clock
    packets = []
    for res_id in owned:
        res_info = ResInfo(
            reservation=res_id, bandwidth=gbps(1), expiry=expiry, version=1
        )
        sigma = hop_authenticator(keys.hop_key(), res_info, eer_info, 2, 3)
        timestamp = Timestamp.create(clock.now(), expiry)
        packet = ColibriPacket(
            packet_type=PacketType.EER_DATA,
            path=path,
            res_info=res_info,
            timestamp=timestamp,
            hvfs=[ColibriPacket.EMPTY_HVF] * spec.path_length,
            eer_info=eer_info,
            payload=b"",
            hop_index=1,
        )
        packet.hvfs[1] = eer_hvf(sigma, timestamp, packet.total_size)
        packets.append(packet)
    batches = [
        [packets[rng.randrange(len(packets))] for _ in range(spec.batch)]
        for _ in range(max(1, spec.packets // spec.batch))
    ]

    def loop() -> int:
        done = 0
        validate_batch = router.validate_batch
        for burst in batches:
            verdicts = validate_batch(burst)
            if not all(verdicts):
                # Every packet carries an honestly computed HVF; a False
                # verdict means the shard's crypto stack is broken and
                # the throughput number would be meaningless.
                raise SimulationError(
                    f"shard {spec.shard_index}: router rejected "
                    f"{verdicts.count(False)}/{len(verdicts)} honest packets"
                )
            done += len(verdicts)
        return done

    return loop, snapshot, clock


def _workload(spec: ShardSpec):
    """``(loop, snapshot, clock)`` for one spec — the component dispatch
    shared by the one-shot :func:`run_shard` and the persistent pool
    workers."""
    if spec.component == "gateway":
        return _gateway_workload(spec)
    if spec.component == "router":
        return _router_workload(spec)
    raise ValueError(f"unknown shard component {spec.component!r}")


def _timed_pass(spec: ShardSpec, loop, snapshot) -> ShardOutcome:
    """One measured trip through a shard's packet loop."""
    clock = PerfClock()
    start = clock.now()
    done = loop()
    elapsed = clock.now() - start
    return ShardOutcome(
        shard_index=spec.shard_index,
        packets=done,
        elapsed=elapsed,
        pps=done / elapsed if elapsed > 0 else 0.0,
        counters=snapshot(),
    )


#: Packets per timed loop; Fig. 6 sweeps run 2**11..2**14 per shard.
_SHARD_LOOP_BUCKETS = (256.0, 1024.0, 4096.0, 16384.0, 65536.0)


def _observed_pass(spec: ShardSpec, loop, snapshot, clock):
    """One measured pass plus, when the spec arms it, the worker's obs
    shard: a fresh seeded tracer/registry/journal around the timed
    loop, packaged into telemetry frames.

    Returns ``(outcome, frames)``.  The capture is rebuilt per
    submission — the deterministic ``obs_seed + shard_index`` seeding
    and the workload's injected clock make a same-seed run's frames
    byte-identical.  Span collection honors the propagated sampling
    decision; metrics and journal events are always captured (they are
    the accounting record, not a sample).
    """
    if spec.obs_seed is None:
        return _timed_pass(spec, loop, snapshot), []
    seed = spec.obs_seed + spec.shard_index
    tracer = None
    if spec.trace is None or spec.trace.sampled:
        tracer = TraceCollector(clock, seed=seed)
        if spec.trace is not None:
            tracer.adopt(spec.trace.trace_id, spec.trace.span_id)
    registry = MetricsRegistry()
    journal = EventJournal(clock)
    root = loop_span = None
    if tracer is not None:
        root = tracer.start(
            "shard.run",
            {"component": spec.component, "shard": spec.shard_index},
        )
        loop_span = tracer.start("shard.loop")
    outcome = _timed_pass(spec, loop, snapshot)
    if tracer is not None:
        tracer.finish(loop_span, packets=outcome.packets)
        tracer.finish(root)
    registry.counter(
        "shard_passes_total", help_text="Timed passes run by this worker"
    ).inc()
    registry.counter(
        "shard_packets_total", help_text="Packets through timed shard loops"
    ).inc(outcome.packets)
    registry.histogram(
        "shard_loop_packets",
        buckets=_SHARD_LOOP_BUCKETS,
        help_text="Packets completed per timed shard loop",
    ).observe(outcome.packets)
    journal.record(
        SHARD_COMPLETED,
        component=spec.component,
        shard_index=spec.shard_index,
        packets=outcome.packets,
    )
    frames = frames_from(
        spec.shard_index, tracer=tracer, registry=registry, journal=journal
    )
    return outcome, frames


def run_shard(spec: ShardSpec) -> ShardOutcome:
    """Build one shard's private stack and time its packet loop.

    Module-level (picklable) so :class:`ShardExecutor` can dispatch it
    through :mod:`multiprocessing`; also callable inline for the
    single-shard and modeled paths.
    """
    loop, snapshot, clock = _workload(spec)
    # One untimed warm-up pass brings soft state to steady state — the
    # router's σ-cache fills, lazily packed header fields materialize —
    # so the timed pass measures sustained throughput, the quantity the
    # paper's Fig. 6 reports.  Counters cover warm-up + timed pass — the
    # shard's whole life — and are read inside the worker, before the
    # process exits.
    loop()
    outcome, frames = _observed_pass(spec, loop, snapshot, clock)
    outcome.frames = frames
    return outcome


def _pool_worker(inbox, outbox) -> None:
    """Long-lived worker loop behind :class:`ShardWorkerPool`.

    Builds each spec's private stack on first sight (setup plus one
    untimed warm-up pass, exactly like :func:`run_shard`) and keeps it
    in a worker-local cache; every submission after that reuses the
    pre-warmed stack, so repeated measurements see steady-state
    forwarding instead of fork + install + warm-up.  A ``None`` spec is
    the shutdown sentinel.

    Messages to the parent are tagged tuples: zero or more
    ``("frame", shard_index, TelemetryFrame)`` when the spec arms an
    obs shard, then exactly one ``("result", shard_index, outcome,
    reason)``.  Failures ship a ``result`` with ``reason`` set and are
    then re-raised so a broken worker dies loudly instead of serving
    corrupt stacks.

    The workload cache is keyed on the spec *minus* its obs fields: a
    resubmission that only changes the propagated trace context (a new
    parent span every run) must still hit the warm stack.
    """
    workloads: dict = {}
    while True:
        spec = inbox.get()
        if spec is None:
            break
        try:
            key = replace(spec, obs_seed=None, trace=None)
            cached = workloads.get(key)
            if cached is None:
                cached = _workload(spec)
                cached[0]()  # untimed warm-up, as in run_shard
                workloads[key] = cached
            outcome, frames = _observed_pass(
                spec, cached[0], cached[1], cached[2]
            )
        except Exception as error:
            outbox.put(
                (
                    "result",
                    spec.shard_index,
                    None,
                    f"{type(error).__name__}: {error}",
                )
            )
            raise
        for frame in frames:
            outbox.put(("frame", spec.shard_index, frame))
        outbox.put(("result", spec.shard_index, outcome, None))


class ShardWorkerPool:
    """Persistent shard workers with pre-warmed private stacks.

    ``multiprocessing.Pool(num_shards)`` per measurement — the previous
    dispatch — charges every run the fork, reservation install and
    warm-up of a cold stack.  This pool starts its workers once; each
    worker owns a private inbox and a per-spec workload cache, so the
    *second* submission of a spec times nothing but the packet loop.
    Shard ``i`` is pinned to worker ``i % size`` — resubmitting the same
    sweep point always lands on the worker holding its warm stack.

    Workers are daemonic and also honor an explicit ``None`` sentinel
    via :meth:`close`; the pool is a context manager.
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"pool size must be positive, got {size}")
        context = multiprocessing.get_context()
        self.size = size
        self._outbox = context.Queue()
        self._inboxes = []
        self._workers = []
        self._closed = False
        for _ in range(size):
            inbox = context.Queue()
            worker = context.Process(
                target=_pool_worker, args=(inbox, self._outbox), daemon=True
            )
            worker.start()
            self._inboxes.append(inbox)
            self._workers.append(worker)

    def map(self, specs: List[ShardSpec]) -> List[ShardOutcome]:
        """Outcomes for ``specs``, in spec order.

        Specs must carry distinct shard indices (one result slot each).
        Raises :class:`~repro.errors.SimulationError` if a worker
        reports a failure.
        """
        if self._closed:
            raise SimulationError("shard worker pool is closed")
        specs = list(specs)
        indices = [spec.shard_index for spec in specs]
        if len(set(indices)) != len(indices):
            raise ValueError(f"duplicate shard indices in batch: {indices}")
        for spec in specs:
            self._inboxes[spec.shard_index % self.size].put(spec)
        by_index = {}
        frames_by_index: dict = {}
        pending = set(indices)
        while pending:
            message = self._outbox.get()
            if message[0] == "frame":
                _, shard_index, frame = message
                frames_by_index.setdefault(shard_index, []).append(frame)
                continue
            _, shard_index, outcome, reason = message
            if reason is not None:
                raise SimulationError(
                    f"shard {shard_index} worker failed: {reason}"
                )
            # Workers emit a shard's frames before its result, and the
            # queue preserves per-worker order, so the stream is whole
            # by the time its result lands.
            outcome.frames = frames_by_index.pop(shard_index, [])
            by_index[shard_index] = outcome
            pending.discard(shard_index)
        return [by_index[spec.shard_index] for spec in specs]

    def close(self) -> None:
        """Send every worker the shutdown sentinel and reap it."""
        if self._closed:
            return
        self._closed = True
        for inbox in self._inboxes:
            inbox.put(None)
        for worker in self._workers:
            worker.join(timeout=10.0)
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ShardExecutor:
    """Fan a workload out over shared-nothing shards and measure it."""

    def __init__(self, component: str, path_length: int = 4,
                 reservations: int = 1024, packets: int = 16384,
                 batch: int = 64, seed: int = 2026,
                 obs_seed: Optional[int] = None,
                 trace: Optional[TraceContext] = None):
        if component not in ("gateway", "router"):
            raise ValueError(f"unknown shard component {component!r}")
        self.component = component
        self.path_length = path_length
        self.reservations = reservations
        self.packets = packets
        self.batch = batch
        self.seed = seed
        self.obs_seed = obs_seed
        self.trace = trace

    def _specs(self, num_shards: int) -> List[ShardSpec]:
        return [
            ShardSpec(
                component=self.component,
                shard_index=index,
                num_shards=num_shards,
                path_length=self.path_length,
                reservations=self.reservations,
                packets=self.packets,
                batch=self.batch,
                seed=self.seed,
                obs_seed=self.obs_seed,
                trace=self.trace,
            )
            for index in range(num_shards)
        ]

    @staticmethod
    def available_cpus() -> int:
        """CPUs this process may actually run on.

        ``os.cpu_count()`` reports the host's cores even when the
        process is pinned to a subset (containers, ``taskset``, cgroup
        cpusets) — which made the executor dispatch k processes onto
        one permitted core and call the result "measured".  The
        affinity mask is the truth where the platform exposes it.
        """
        if hasattr(os, "sched_getaffinity"):
            return len(os.sched_getaffinity(0)) or 1
        return os.cpu_count() or 1

    def shard_loads(self, num_shards: int) -> List[int]:
        """Reservations owned per shard under :func:`shard_of`."""
        loads = [0] * num_shards
        for index in range(self.reservations):
            loads[shard_of(ReservationId(_SRC, index + 1), num_shards)] += 1
        return loads

    def run(
        self,
        num_shards: int,
        force_processes: bool = False,
        pool: Optional[ShardWorkerPool] = None,
    ) -> ShardRunResult:
        """Throughput over ``num_shards`` shards.

        Dispatches real processes when the host has at least
        ``num_shards`` CPUs (or ``force_processes`` demands it, e.g. to
        exercise the dispatch machinery in tests); otherwise measures
        one shard and extrapolates linearly, labeled ``"modeled"``.

        Pass a :class:`ShardWorkerPool` (with ``pool.size >=
        num_shards``) to dispatch through persistent pre-warmed workers:
        the second ``run`` of the same configuration then measures
        steady-state forwarding.  An undersized pool is ignored in
        favor of a transient one — shards must not queue behind each
        other inside one measurement, or the slowest-shard aggregation
        would count waiting as forwarding time.  A pool never overrides
        the modeled fallback: hosts without the cores still extrapolate.
        """
        specs = self._specs(num_shards)
        cpus = self.available_cpus()
        usable_pool = pool if pool is not None and pool.size >= num_shards else None
        if num_shards == 1 and usable_pool is None:
            outcome = run_shard(specs[0])
            return ShardRunResult(
                component=self.component,
                num_shards=1,
                mode="measured",
                shards=[outcome],
                aggregate_pps=outcome.pps,
            )
        if cpus >= num_shards or force_processes:
            if usable_pool is not None:
                outcomes = usable_pool.map(specs)
            else:
                with ShardWorkerPool(num_shards) as transient:
                    outcomes = transient.map(specs)
            mode = "measured" if cpus >= num_shards else "measured-oversubscribed"
            total = sum(outcome.packets for outcome in outcomes)
            # Idle shards (nothing owned) finish instantly; the slowest
            # *working* shard bounds the burst's completion time.
            working = [o.elapsed for o in outcomes if o.packets > 0]
            slowest = max(working) if working else 0.0
            return ShardRunResult(
                component=self.component,
                num_shards=num_shards,
                mode=mode,
                shards=outcomes,
                aggregate_pps=total / slowest if slowest > 0 else 0.0,
            )
        # Not enough CPUs for a meaningful parallel measurement: measure
        # the busiest shard's private stack and extrapolate the linear
        # shared-nothing model over the shards that actually own work,
        # clearly labeled as such.
        loads = self.shard_loads(num_shards)
        busiest = max(range(num_shards), key=loads.__getitem__)
        populated = sum(1 for load in loads if load)
        outcome = run_shard(specs[busiest])
        return ShardRunResult(
            component=self.component,
            num_shards=num_shards,
            mode="modeled",
            shards=[outcome],
            aggregate_pps=outcome.pps * populated,
        )
