"""The Colibri border router (§4.6) — the stateless fast path.

Per packet, the router of the i-th on-path AS:

1. validates packet format, header contents, freshness, and that the
   reservation has not expired;
2. consults the policing blocklist (§4.8) — an O(1) hash-set lookup;
3. authenticates the HVF: for SegR packets by recomputing the Eq. (3)
   token; for EER packets by recomputing the HopAuth (Eq. 4) from the
   AS secret and deriving the per-packet HVF (Eq. 6) — *no
   per-reservation state*, everything comes from the packet header and
   one AS-level key;
4. suppresses duplicates (replay defence, §2.3);
5. feeds the probabilistic overuse detector and, for flagged flows, the
   deterministic monitor; confirmed overusers get their source AS
   blocked and reported (§4.8);
6. forwards: to the next border router (advancing the hop pointer), to
   the local CServ (SegR control packets), or to the destination host
   (last hop of an EER).

The EER authentication of step 3 is accelerated by a bounded LRU σ-cache
(:mod:`repro.dataplane.sigma_cache`): cached HopAuths are *hints* whose
derived HVF is still compared against the packet, and any miss, stale
hint, or evicted entry falls back to the stateless Eq. (4) recompute —
verdicts never depend on cache contents (docs/performance.md).

Every drop reason is an explicit enum member so tests, the simulator,
and Table 2 accounting can distinguish *why* traffic died.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.constants import DRKEY_VALIDITY, FRESHNESS_WINDOW, L_HVF, MAX_CLOCK_SKEW
from repro.dataplane.blocklist import Blocklist
from repro.dataplane.duplicate import DuplicateSuppressor
from repro.dataplane.hvf import (
    ColibriKeys,
    eer_hvf_message,
    hop_authenticator,
    segment_token,
)
from repro.dataplane.monitor import DeterministicMonitor
from repro.dataplane.ofd import OveruseFlowDetector
from repro.dataplane.sigma_cache import SigmaCache
from repro.crypto.mac import constant_time_equal, truncated_mac
from repro.obs.events import VERDICT_DROPPED
from repro.obs.profile import profiled
from repro.packets.colibri import ColibriPacket, PacketType
from repro.packets.fields import ResInfo, Timestamp
from repro.topology.addresses import IsdAs
from repro.util.clock import Clock

# Wire-form field readers for validate_wire_batch: the router reads the
# fields it authenticates straight out of the arena buffer with
# ``unpack_from`` (which yields fresh ``bytes`` for ``s`` fields — no
# memoryview copies on the hot path).
_TS_WIRE = Timestamp.WIRE
_WIRE_MESSAGE = struct.Struct("!QI")  # Eq. (6) input, Ts word || PktSize
_HVF_TAG = struct.Struct(f"!{L_HVF}s")
_SEQ_BITS = Timestamp._SEQ_BITS


class Verdict(enum.Enum):
    """What to do with the packet after processing."""

    FORWARD = "forward"  # hand to the next AS's border router
    DELIVER_HOST = "deliver_host"  # last hop of an EER: to DstHost
    DELIVER_CSERV = "deliver_cserv"  # SegR control packet: to local CServ
    DROP_EXPIRED = "drop_expired"
    DROP_STALE = "drop_stale"  # failed the freshness check
    DROP_BAD_HVF = "drop_bad_hvf"  # cryptographic check failed
    DROP_BLOCKED = "drop_blocked"  # source AS on the blocklist
    DROP_DUPLICATE = "drop_duplicate"  # replay suppressed
    DROP_OVERUSE = "drop_overuse"  # deterministic monitor non-conformance


# ``is_drop`` is read once per processed packet by every consumer of a
# RouterResult; membership is fixed at class-creation time, so each member
# carries it as a plain attribute instead of re-deriving it from the name
# on every call.
for _verdict in Verdict:
    _verdict.is_drop = _verdict.name.startswith("DROP")
del _verdict

# Whether the packet's claimed identity (ResId, Ts) was cryptographically
# authenticated before the verdict was reached.  The §4.6 pipeline checks
# expiry, freshness, and the blocklist *before* the HVF (steps 1-2 vs. 3),
# so those drops — and DROP_BAD_HVF itself — judge attacker-controlled
# header bytes: forensic tooling must not attribute them to the claimed
# reservation as established fact (see sim/tracing).
for _verdict in Verdict:
    _verdict.identity_verified = _verdict not in (
        Verdict.DROP_EXPIRED,
        Verdict.DROP_STALE,
        Verdict.DROP_BLOCKED,
        Verdict.DROP_BAD_HVF,
    )
del _verdict


@dataclass
class RouterResult:
    verdict: Verdict
    packet: ColibriPacket
    egress: Optional[int] = None  # interface to forward on (FORWARD only)


class BorderRouter:
    """One AS's Colibri border router."""

    #: Optional :class:`repro.obs.ObsContext`.  A class-level default
    #: keeps the disabled fast path at one attribute read (the PR 4
    #: bound in docs/performance.md §6); ``enable_observability`` sets a
    #: per-instance context and the journal starts receiving
    #: ``VerdictDropped`` events for every drop verdict.
    obs = None

    def __init__(
        self,
        isd_as: IsdAs,
        keys: ColibriKeys,
        clock: Clock,
        blocklist: Optional[Blocklist] = None,
        duplicates: Optional[DuplicateSuppressor] = None,
        ofd: Optional[OveruseFlowDetector] = None,
        monitor: Optional[DeterministicMonitor] = None,
        on_offense: Optional[Callable] = None,
        sigma_cache: Optional[SigmaCache] = None,
        enable_sigma_cache: bool = True,
    ):
        self.isd_as = isd_as
        self.keys = keys
        self.clock = clock
        self.blocklist = blocklist or Blocklist()
        self.duplicates = duplicates or DuplicateSuppressor(clock)
        self.ofd = ofd or OveruseFlowDetector()
        self.monitor = monitor or DeterministicMonitor()
        #: Called with (source AS, reservation id) when overuse is
        #: confirmed — the report to the local CServ (§4.8).
        self.on_offense = on_offense
        #: Soft state only: ``None`` (``enable_sigma_cache=False``) runs
        #: the seed's fully stateless path, bit-for-bit.
        if sigma_cache is not None:
            self.sigma_cache = sigma_cache
        elif enable_sigma_cache:
            self.sigma_cache = SigmaCache()
        else:
            self.sigma_cache = None
        self.stats = {verdict: 0 for verdict in Verdict}

    # -- helpers --------------------------------------------------------------------

    def _authenticate(self, packet: ColibriPacket, now: float, size: int) -> bool:
        """Recompute (or cache-confirm) the HVF for the current hop.

        HopAuths and tokens are minted from the hop key of the epoch in
        which the reservation was *set up*; DRKey epochs last a day while
        reservations live minutes, so a reservation can straddle one
        boundary.  Standard key-rotation practice applies: try the
        current epoch's key first and fall back to the previous epoch's
        (both derive from local secrets — still zero per-flow state).

        The σ-cache short-circuits the Eq. (4) recompute for EER packets,
        but only on agreement: a cached σ whose Eq. (6) output does not
        match the packet's HVF is treated exactly like a miss, so cache
        contents can delay but never decide a verdict.
        """
        hvf = packet.hvfs[packet.hop_index]
        if packet.packet_type != PacketType.EER_DATA:
            ingress, egress = packet.current_pair()
            for when in (now, now - DRKEY_VALIDITY):
                if when < 0:
                    continue
                hop_key = self.keys.hop_key(when)
                expected = segment_token(hop_key, packet.res_info, ingress, egress)
                if constant_time_equal(expected, hvf):
                    return True
            return False

        res_info = packet.res_info
        message = eer_hvf_message(packet.timestamp, size)
        cache = self.sigma_cache
        if cache is not None:
            reservation_packed = res_info.reservation.packed
            entry = cache.lookup(
                reservation_packed, res_info.version, int(now // DRKEY_VALIDITY)
            )
            if entry is not None:
                if entry.verify(message, hvf):
                    return True
                # Stale or poisoned hint: fall through to the stateless
                # path, which is authoritative.
                cache.counters.bump("rejected_hints")
        ingress, egress = packet.current_pair()
        for when in (now, now - DRKEY_VALIDITY):
            if when < 0:
                continue
            hop_key = self.keys.hop_key(when)
            sigma = hop_authenticator(
                hop_key, res_info, packet.eer_info, ingress, egress
            )
            if constant_time_equal(truncated_mac(sigma, message), hvf):
                if cache is not None:
                    cache.store(
                        (
                            res_info.reservation.packed,
                            res_info.version,
                            int(when // DRKEY_VALIDITY),
                        ),
                        sigma,
                    )
                return True
        return False

    def _fresh(self, packet: ColibriPacket, now: float) -> bool:
        created = packet.timestamp.absolute(packet.res_info.expiry)
        return abs(now - created) <= FRESHNESS_WINDOW

    def _police(self, packet: ColibriPacket, now: float, size: int) -> Optional[Verdict]:
        """OFD + deterministic monitoring + blocklist escalation (§4.8)."""
        flow_label = packet.res_info.reservation.packed
        suspect = self.ofd.observe(
            flow_label, size, packet.res_info.bandwidth, now
        )
        if suspect and not self.monitor.is_watched(flow_label):
            # Start precise inspection of the flagged flow.
            self.monitor.watch(flow_label, packet.res_info.bandwidth, now)
        if not self.monitor.check(flow_label, size, now):
            if self.monitor.is_confirmed_overuser(flow_label):
                # Certainty established: block and report (policing).
                self.blocklist.block(packet.res_info.src_as)
                if self.on_offense is not None:
                    self.on_offense(
                        packet.res_info.src_as, packet.res_info.reservation
                    )
            return Verdict.DROP_OVERUSE
        return None

    def _finish(self, packet: ColibriPacket, verdict: Verdict, egress=None) -> RouterResult:
        self.stats[verdict] += 1
        if verdict.is_drop and self.obs is not None:
            journal = self.obs.journal
            if journal is not None:
                res_info = packet.res_info
                # Drops before the HVF check (expiry/freshness/blocklist/
                # bad-HVF) judge attacker-controlled header bytes; the
                # flag lets forensics exclude them as established fact.
                journal.record(
                    VERDICT_DROPPED,
                    isd_as=str(self.isd_as),
                    verdict=verdict.value,
                    reservation=str(res_info.reservation),
                    flow=res_info.reservation.packed.hex(),
                    src_as=str(res_info.src_as),
                    version=res_info.version,
                    size=packet.total_size,
                    identity_verified=verdict.identity_verified,
                )
        return RouterResult(verdict=verdict, packet=packet, egress=egress)

    # -- the fast path -----------------------------------------------------------------

    def process(self, packet: ColibriPacket) -> RouterResult:
        """Run the full §4.6 pipeline on one packet."""
        return self._process_one(packet, self.clock.now())

    @profiled("router.process_batch")
    def process_batch(self, packets) -> List[RouterResult]:
        """Run the §4.6 pipeline over a burst of packets.

        Semantically identical to calling :meth:`process` per packet
        (verdicts, stats, and mutations are per-packet and in order); the
        batch form hoists the clock read out of the loop, which is the
        per-packet fixed cost a deployed router amortizes across a NIC
        burst (paper §7.1 processes DPDK bursts the same way).
        """
        now = self.clock.now()
        process_one = self._process_one
        return [process_one(packet, now) for packet in packets]

    def _process_one(self, packet: ColibriPacket, now: float) -> RouterResult:
        size = packet.total_size

        # 1. Reservation expiry (allow the paper's assumed clock skew).
        if now > packet.res_info.expiry + MAX_CLOCK_SKEW:
            return self._finish(packet, Verdict.DROP_EXPIRED)
        # 1b. Packet freshness.
        if not self._fresh(packet, now):
            return self._finish(packet, Verdict.DROP_STALE)

        # 2. Policing blocklist — cheap, before any crypto.
        if self.blocklist.is_blocked(packet.res_info.src_as, now):
            return self._finish(packet, Verdict.DROP_BLOCKED)

        # 3. Cryptographic validation (Eq. 3 or Eq. 4+6).
        if not self._authenticate(packet, now, size):
            return self._finish(packet, Verdict.DROP_BAD_HVF)

        if packet.is_eer_data:
            # 4. Replay suppression on the authenticated unique identifier.
            identifier = (
                packet.res_info.reservation.packed + packet.timestamp.packed
            )
            if not self.duplicates.check_and_insert(identifier):
                return self._finish(packet, Verdict.DROP_DUPLICATE)
            # 5. Monitoring and policing.
            verdict = self._police(packet, now, size)
            if verdict is not None:
                return self._finish(packet, verdict)
            # 6. Forward towards the destination.
            _, egress = packet.current_pair()
            if packet.hop_index == packet.hop_count - 1:
                return self._finish(packet, Verdict.DELIVER_HOST)
            packet.advance_hop()
            return self._finish(packet, Verdict.FORWARD, egress=egress)

        # SegR packets carry control traffic: hand to the local CServ,
        # which authenticates the payload with DRKey and (for requests in
        # transit) re-injects the packet towards the next AS.
        return self._finish(packet, Verdict.DELIVER_CSERV)

    # -- bench support --------------------------------------------------------------------

    def validate_only(self, packet: ColibriPacket) -> bool:
        """Just the cryptographic hot loop (expiry + freshness + MAC), the
        cost Figs. 5-6 measure for the border router."""
        return self._validate_one(packet, self.clock.now())

    @profiled("router.validate_batch")
    def validate_batch(self, packets) -> List[bool]:
        """:meth:`validate_only` over a burst, clock read hoisted."""
        now = self.clock.now()
        validate_one = self._validate_one
        return [validate_one(packet, now) for packet in packets]

    def _validate_one(self, packet: ColibriPacket, now: float) -> bool:
        expiry = packet.res_info.expiry
        if now > expiry + MAX_CLOCK_SKEW:
            return False
        # Freshness, inlined from _fresh: Ts encodes µs before expiry,
        # so the creation instant is expiry - µs/1e6.
        if abs(now - expiry + packet.timestamp.micros_before_expiry / 1e6) > FRESHNESS_WINDOW:
            return False
        return self._authenticate(packet, now, packet.total_size)

    @profiled("router.validate_wire_batch")
    def validate_wire_batch(self, views) -> List[bool]:
        """:meth:`validate_batch` over zero-copy wire packets.

        Takes the :class:`~repro.packets.colibri.WirePacketView` bursts
        the gateway's ``send_batch_wire`` produces and validates each
        packet *in place* inside its arena slot: expiry, freshness and
        the σ-cache-hit Eq. (6) check all read header fields straight
        from the wire buffer, so the hit path never parses a packet
        object.  Only a miss or rejected hint materializes the packet
        for the stateless Eq. (4) recompute.  Verdicts (and cache
        counters) equal running :meth:`validate_batch` over the parsed
        equivalents.
        """
        now = self.clock.now()
        obs = self.obs
        if obs is not None:
            sampler = obs.sampler
            if sampler is not None and sampler.tick():
                return self._validate_wire_sampled(views, now, sampler)
        validate_one = self._validate_wire_one
        return [validate_one(view, now) for view in views]

    def _validate_wire_sampled(self, views, now: float, sampler) -> List[bool]:
        """Sampled variant of :meth:`validate_wire_batch`: identical
        verdicts through the identical per-packet path, plus per-packet
        and whole-burst wall timings in the sampler's fixed-bucket
        histograms and the burst's σ-cache hit/miss deltas as sampled
        counts — the hit/recompute split *is* the router's stage
        breakdown (the slow path dominates exactly when hints miss)."""
        clock = sampler.clock
        cache = self.sigma_cache
        hits_before = misses_before = 0
        if cache is not None:
            hits_before = cache.counters.get("hits")
            misses_before = cache.counters.get("misses")
        validate_one = self._validate_wire_one
        verdicts: List[bool] = []
        append = verdicts.append
        begin = clock.now()
        for view in views:
            started = clock.now()
            verdict = validate_one(view, now)
            sampler.observe("router.wire.validate", clock.now() - started)
            append(verdict)
        sampler.observe_burst(
            len(views), (("router.wire.burst", clock.now() - begin),)
        )
        if cache is not None:
            sampler.count(
                "sigma_cache_hits", cache.counters.get("hits") - hits_before
            )
            sampler.count(
                "sigma_cache_misses",
                cache.counters.get("misses") - misses_before,
            )
        return verdicts

    def _validate_wire_one(self, view, now: float) -> bool:
        buffer = view.buffer
        base = view.offset
        if buffer[base + 3] & 0x0F != PacketType.EER_DATA:
            # Control traffic is off the wire fast path entirely.
            return self._validate_one(ColibriPacket.from_bytes(view.materialize()), now)
        hop_count = buffer[base + 4]
        hop_index = buffer[base + 5]
        offsets = ColibriPacket.wire_offsets(hop_count, True)
        reservation_packed, _bandwidth, expiry, version = ResInfo.WIRE.unpack_from(
            buffer, base + offsets.res
        )
        if now > expiry + MAX_CLOCK_SKEW:
            return False
        (ts_word,) = _TS_WIRE.unpack_from(buffer, base + offsets.ts)
        if abs(now - expiry + (ts_word >> _SEQ_BITS) / 1e6) > FRESHNESS_WINDOW:
            return False
        (tag,) = _HVF_TAG.unpack_from(buffer, base + offsets.hvf + hop_index * L_HVF)
        message = _WIRE_MESSAGE.pack(ts_word, view.length)
        cache = self.sigma_cache
        if cache is not None:
            entry = cache.lookup(reservation_packed, version, int(now // DRKEY_VALIDITY))
            if entry is not None:
                if entry.verify(message, tag):
                    return True
                cache.counters.bump("rejected_hints")
        return self._authenticate_wire_slow(view, message, tag, now)

    def _authenticate_wire_slow(self, view, message: bytes, tag: bytes, now: float) -> bool:
        """Stateless Eq. (4) + (6) recompute for a wire packet.

        The cold half of :meth:`_validate_wire_one` — mirrors the tail
        of :meth:`_authenticate` (including the store-after-validation
        rule), parsing the packet out of the arena only here, where the
        MAC recompute already dominates the copy.
        """
        packet = ColibriPacket.from_bytes(view.materialize())
        res_info = packet.res_info
        ingress, egress = packet.current_pair()
        cache = self.sigma_cache
        for when in (now, now - DRKEY_VALIDITY):
            if when < 0:
                continue
            hop_key = self.keys.hop_key(when)
            sigma = hop_authenticator(
                hop_key, res_info, packet.eer_info, ingress, egress
            )
            if constant_time_equal(truncated_mac(sigma, message), tag):
                if cache is not None:
                    cache.store(
                        (
                            res_info.reservation.packed,
                            res_info.version,
                            int(when // DRKEY_VALIDITY),
                        ),
                        sigma,
                    )
                return True
        return False
