"""Hop validation fields: the two-step MAC scheme of §4.5 (Fig. 2).

Three computations, all over bytes that are explicit in the packet header
so routers need **no per-reservation state**:

* Eq. (3) — SegR token, embedded as the HVF of control packets::

      V_i^(S) = MAC_{K_i}(ResInfo || (In_i, Eg_i))[0:l_hvf]

* Eq. (4) — HopAuth, computed at EER setup, *untruncated* because it then
  serves as a secret per-reservation key shared between AS_i and the
  source AS's gateway::

      sigma_i = MAC_{K_i}(ResInfo || EERInfo || (In_i, Eg_i))

* Eq. (6) — per-packet HVF of EER data packets, computed by the gateway
  under sigma_i and re-derived by the router (which first recomputes
  sigma_i from its own K_i)::

      V_i^(E) = MAC_{sigma_i}(Ts || PktSize)[0:l_hvf]

``K_i`` is the AS's Colibri hop secret.  :class:`ColibriKeys` derives it
from the same per-AS master seed as the DRKey secret values, so the
CServ, gateway and border routers of one AS agree on keys without any
state sharing.
"""

from __future__ import annotations

import struct

from repro.constants import L_HVF
from repro.crypto.drkey import DrkeyDeriver, EntityId
from repro.crypto.mac import constant_time_equal, mac, truncated_mac
from repro.crypto.prf import prf
from repro.errors import HvfMismatch
from repro.packets.fields import EerInfo, ResInfo, Timestamp

_PAIR = struct.Struct("!HH")
_SIZE = struct.Struct("!I")
_HOP_LABEL = b"colibri-hop-secret"


def _pair_bytes(ingress: int, egress: int) -> bytes:
    return _PAIR.pack(ingress, egress)


def segment_token(
    hop_key: bytes, res_info: ResInfo, ingress: int, egress: int
) -> bytes:
    """Eq. (3): the truncated SegR token for one AS."""
    return truncated_mac(hop_key, res_info.packed + _pair_bytes(ingress, egress), L_HVF)


def verify_segment_token(
    hop_key: bytes, res_info: ResInfo, ingress: int, egress: int, token: bytes
) -> None:
    """Recompute Eq. (3) on the fly and compare; raises on mismatch."""
    expected = segment_token(hop_key, res_info, ingress, egress)
    if not constant_time_equal(expected, token):
        raise HvfMismatch(
            f"SegR token mismatch for reservation {res_info.reservation} "
            f"at interface pair ({ingress}, {egress})"
        )


def hop_authenticator(
    hop_key: bytes, res_info: ResInfo, eer_info: EerInfo, ingress: int, egress: int
) -> bytes:
    """Eq. (4): the full-width HopAuth — a reservation-specific secret key."""
    data = res_info.packed + eer_info.packed + _pair_bytes(ingress, egress)
    return mac(hop_key, data)


def eer_hvf(hop_auth: bytes, timestamp: Timestamp, packet_size: int) -> bytes:
    """Eq. (6): the per-packet HVF stamped by the gateway.

    ``packet_size`` includes the Colibri header — authenticating the total
    size is what stops malicious source ASes flooding with tiny-payload
    packets and what lets the OFD normalize fairly (§4.8).
    """
    return truncated_mac(hop_auth, timestamp.packed + _SIZE.pack(packet_size), L_HVF)


def verify_eer_hvf(
    hop_auth: bytes, timestamp: Timestamp, packet_size: int, hvf: bytes
) -> None:
    expected = eer_hvf(hop_auth, timestamp, packet_size)
    if not constant_time_equal(expected, hvf):
        raise HvfMismatch(
            f"EER HVF mismatch (packet size {packet_size}, ts {timestamp!r})"
        )


class ColibriKeys:
    """Per-AS key material for the data plane.

    Wraps the AS's :class:`~repro.crypto.drkey.DrkeyDeriver` and adds the
    Colibri hop secret ``K_i`` (Eqs. 3-4), derived per DRKey epoch from
    the same master seed.  All components of one AS constructed over the
    same deriver agree on every key.
    """

    def __init__(self, deriver: DrkeyDeriver):
        self.deriver = deriver
        self._hop_keys: dict[int, bytes] = {}

    @property
    def local_as(self) -> EntityId:
        return self.deriver.local_as

    def hop_key(self, when: float = None) -> bytes:
        """The AS secret ``K_i`` for the epoch covering ``when``."""
        secret = self.deriver.secret_for(when)
        key = self._hop_keys.get(secret.epoch)
        if key is None:
            key = prf(secret.value, _HOP_LABEL)
            self._hop_keys[secret.epoch] = key
        return key

    def control_key(self, remote: EntityId, when: float = None) -> bytes:
        """``K_{local->remote}`` used for control-plane MACs and the
        AEAD channel of Eq. (5)."""
        return self.deriver.as_key(remote, when)
