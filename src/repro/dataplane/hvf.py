"""Hop validation fields: the two-step MAC scheme of §4.5 (Fig. 2).

Three computations, all over bytes that are explicit in the packet header
so routers need **no per-reservation state**:

* Eq. (3) — SegR token, embedded as the HVF of control packets::

      V_i^(S) = MAC_{K_i}(ResInfo || (In_i, Eg_i))[0:l_hvf]

* Eq. (4) — HopAuth, computed at EER setup, *untruncated* because it then
  serves as a secret per-reservation key shared between AS_i and the
  source AS's gateway::

      sigma_i = MAC_{K_i}(ResInfo || EERInfo || (In_i, Eg_i))

* Eq. (6) — per-packet HVF of EER data packets, computed by the gateway
  under sigma_i and re-derived by the router (which first recomputes
  sigma_i from its own K_i)::

      V_i^(E) = MAC_{sigma_i}(Ts || PktSize)[0:l_hvf]

``K_i`` is the AS's Colibri hop secret.  :class:`ColibriKeys` derives it
from the same per-AS master seed as the DRKey secret values, so the
CServ, gateway and border routers of one AS agree on keys without any
state sharing.
"""

from __future__ import annotations

import struct

from repro.constants import L_HVF
from repro.crypto import native
from repro.crypto.drkey import DrkeyDeriver, EntityId
from repro.crypto.mac import KeyedMacContext, constant_time_equal, mac, truncated_mac
from repro.crypto.prf import prf, prf_context, prf_under_keys
from repro.errors import HvfMismatch
from repro.obs.profile import profiled
from repro.packets.fields import EerInfo, ResInfo, Timestamp

_PAIR = struct.Struct("!HH")
_SIZE = struct.Struct("!I")
_HOP_LABEL = b"colibri-hop-secret"


def _pair_bytes(ingress: int, egress: int) -> bytes:
    return _PAIR.pack(ingress, egress)


def segment_token(
    hop_key: bytes, res_info: ResInfo, ingress: int, egress: int
) -> bytes:
    """Eq. (3): the truncated SegR token for one AS."""
    return truncated_mac(hop_key, res_info.packed + _pair_bytes(ingress, egress), L_HVF)


def verify_segment_token(
    hop_key: bytes, res_info: ResInfo, ingress: int, egress: int, token: bytes
) -> None:
    """Recompute Eq. (3) on the fly and compare; raises on mismatch."""
    expected = segment_token(hop_key, res_info, ingress, egress)
    if not constant_time_equal(expected, token):
        raise HvfMismatch(
            f"SegR token mismatch for reservation {res_info.reservation} "
            f"at interface pair ({ingress}, {egress})"
        )


@profiled("hvf.hop_authenticator")
def hop_authenticator(
    hop_key: bytes, res_info: ResInfo, eer_info: EerInfo, ingress: int, egress: int
) -> bytes:
    """Eq. (4): the full-width HopAuth — a reservation-specific secret key."""
    data = res_info.packed + eer_info.packed + _pair_bytes(ingress, egress)
    return mac(hop_key, data)


def eer_hvf(hop_auth: bytes, timestamp: Timestamp, packet_size: int) -> bytes:
    """Eq. (6): the per-packet HVF stamped by the gateway.

    ``packet_size`` includes the Colibri header — authenticating the total
    size is what stops malicious source ASes flooding with tiny-payload
    packets and what lets the OFD normalize fairly (§4.8).
    """
    return truncated_mac(hop_auth, timestamp.packed + _SIZE.pack(packet_size), L_HVF)


def eer_hvf_message(timestamp: Timestamp, packet_size: int) -> bytes:
    """The MAC input of Eq. (6), ``Ts || PktSize``.

    One packet carries the same (Ts, PktSize) to every on-path AS, so the
    batch fast paths build these bytes once per packet and reuse them for
    all hops instead of re-packing them per HVF.
    """
    return timestamp.packed + _SIZE.pack(packet_size)


def sigma_context(hop_auth: bytes) -> KeyedMacContext:
    """Prehashed Eq. (6) MAC state under one HopAuth σ.

    ``sigma_context(s).truncated(eer_hvf_message(ts, n))`` equals
    ``eer_hvf(s, ts, n)`` byte for byte; the context only amortizes the
    per-σ key schedule across packets (gateway) or cache hits (router).
    """
    return KeyedMacContext(hop_auth)


@profiled("hvf.sigma_states")
def sigma_states(hop_auths) -> tuple:
    """Raw prehashed Eq. (6) MAC states, one per HopAuth σ, path order.

    The gateway's stamp tables: bare ``blake2s`` objects rather than
    :class:`KeyedMacContext` wrappers, so the Fig. 5 hot loop
    (:func:`stamp_hvfs`) pays no attribute hop per HVF.  Built once per
    installed version — key scheduling happens at control-plane time,
    the software analogue of expanding AES round keys at setup.
    """
    return tuple(prf_context(sigma) for sigma in hop_auths)


@profiled("hvf.stamp_hvfs")
def stamp_hvfs(states, message: bytes, length: int = L_HVF) -> list:
    """Eq. (6) across all hops of one packet: the gateway's batch stamp.

    ``states`` holds one prehashed σ state per on-path AS (from
    :func:`sigma_states`); the shared ``message`` is
    :func:`eer_hvf_message`'s output.  Inlined clone/update/digest keeps
    the per-hop cost to three C calls — this loop is the dominant term
    of Fig. 5's long-path columns.
    """
    hvfs = []
    append = hvfs.append
    for state in states:
        clone = state.copy()
        clone.update(message)
        append(clone.digest()[:length])
    return hvfs


def backend_name() -> str:
    """Which Eq. (6) implementation the data plane is running on.

    ``"native"`` when the cffi BLAKE2s kernel loaded, ``"python"``
    otherwise.  Benchmarks record this in their config rows so
    ``tools/bench_regress.py`` never compares throughput across
    backends.
    """
    return "native" if native.available() else "python"


def sigma_schedule(hop_auths, tag_len: int = L_HVF):
    """Native key schedules for an ordered σ set, or ``None``.

    The vectorized counterpart of :func:`sigma_states`: one contiguous
    C-side schedule block whose :meth:`~repro.crypto.native.ScheduleBlock.stamp_flat`
    / ``stamp_many_flat`` / ``stamp_into`` calls are byte-identical to
    looping :func:`stamp_hvfs`.  Returns ``None`` when the native
    backend is unavailable so callers keep the hashlib path.
    """
    backend = native.backend()
    if backend is None:
        return None
    return native.ScheduleBlock(backend, hop_auths, tag_len)


def burst_stamper(tag_len: int = L_HVF, slots: int = 64):
    """A native scatter stamper for mixed bursts, or ``None``.

    One :class:`~repro.crypto.native.BurstStamper` per data-plane
    component (the gateway holds one across bursts): the per-packet loop
    fills its plan arrays, then a single ``colibri_stamp_scatter`` call
    stamps every packet of the burst — the mixed-burst counterpart of
    :meth:`~repro.crypto.native.ScheduleBlock.stamp_many_flat`, with the
    same byte-identity contract.  ``None`` when the native backend is
    unavailable, in which case callers keep the per-packet paths.
    """
    backend = native.backend()
    if backend is None:
        return None
    return native.BurstStamper(backend, tag_len, slots)


@profiled("hvf.stamp_hvfs_batch")
def stamp_hvfs_batch(states, messages, length: int = L_HVF) -> list:
    """Eq. (6) for a whole burst: one flat HVF string per message.

    ``states`` is either a native
    :class:`~repro.crypto.native.ScheduleBlock` (all messages must then
    share one length — the gateway's fixed ``Ts || PktSize`` form) or
    the tuple from :func:`sigma_states`.  Element ``i`` of the result
    concatenates all hop tags of ``messages[i]`` in path order —
    exactly ``b"".join(stamp_hvfs(states, messages[i]))`` — ready to
    wrap in a :class:`~repro.packets.colibri.HvfVector` without
    per-hop list churn.
    """
    if isinstance(states, native.ScheduleBlock):
        if not messages:
            return []
        message_len = len(messages[0])
        flat = states.stamp_many_flat(b"".join(messages), message_len, len(messages))
        row = states.count * states.tag_len
        return [flat[offset : offset + row] for offset in range(0, len(flat), row)]
    out = []
    append = out.append
    join = b"".join
    for message in messages:
        tags = []
        for state in states:
            clone = state.copy()
            clone.update(message)
            tags.append(clone.digest()[:length])
        append(join(tags))
    return out


@profiled("hvf.verify_hvfs_batch")
def verify_hvfs_batch(states, messages, tags, length: int = L_HVF) -> list:
    """Burst verification: one verdict per (state, message, tag) triple.

    The router-side counterpart of :func:`stamp_hvfs_batch` for σ-cache
    hits: ``states[i]`` authenticates packet ``i`` (each packet has its
    own reservation's σ, unlike the gateway which stamps many hops of
    one reservation).  Entries may mix native
    :class:`~repro.crypto.native.ScheduleBlock` objects and prehashed
    hashlib states; comparison is constant-time either way.
    """
    verdicts = []
    append = verdicts.append
    schedule_type = native.ScheduleBlock
    for state, message, tag in zip(states, messages, tags):
        if type(state) is schedule_type:
            append(state.verify(message, tag))
        else:
            clone = state.copy()
            clone.update(message)
            append(constant_time_equal(clone.digest()[: len(tag)], tag))
    return verdicts


def stamp_hvfs_direct(hop_auths, message: bytes, length: int = L_HVF) -> list:
    """Eq. (6) across all hops from raw σs, one C call per hop.

    The cold-path counterpart of :func:`stamp_hvfs` for versions whose
    prehashed contexts have not been built (e.g. a table of 2^17 mostly
    idle reservations hit with random IDs — Fig. 5's worst case, where
    paying a key schedule per packet would be pure loss).
    """
    return [tag[:length] for tag in prf_under_keys(hop_auths, message)]


def verify_eer_hvf(
    hop_auth: bytes, timestamp: Timestamp, packet_size: int, hvf: bytes
) -> None:
    expected = eer_hvf(hop_auth, timestamp, packet_size)
    if not constant_time_equal(expected, hvf):
        raise HvfMismatch(
            f"EER HVF mismatch (packet size {packet_size}, ts {timestamp!r})"
        )


class ColibriKeys:
    """Per-AS key material for the data plane.

    Wraps the AS's :class:`~repro.crypto.drkey.DrkeyDeriver` and adds the
    Colibri hop secret ``K_i`` (Eqs. 3-4), derived per DRKey epoch from
    the same master seed.  All components of one AS constructed over the
    same deriver agree on every key.
    """

    def __init__(self, deriver: DrkeyDeriver):
        self.deriver = deriver
        self._hop_keys: dict[int, bytes] = {}

    @property
    def local_as(self) -> EntityId:
        return self.deriver.local_as

    def hop_key(self, when: float = None) -> bytes:
        """The AS secret ``K_i`` for the epoch covering ``when``."""
        secret = self.deriver.secret_for(when)
        key = self._hop_keys.get(secret.epoch)
        if key is None:
            key = prf(secret.value, _HOP_LABEL)
            self._hop_keys[secret.epoch] = key
        return key

    def control_key(self, remote: EntityId, when: float = None) -> bytes:
        """``K_{local->remote}`` used for control-plane MACs and the
        AEAD channel of Eq. (5)."""
        return self.deriver.as_key(remote, when)
