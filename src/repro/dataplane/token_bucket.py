"""Token-bucket rate limiting (§4.8).

"An efficient approach to limit the transmission rate of the flows from
customers while still permitting short-term spikes in traffic is the
token bucket algorithm, which only needs to keep a time stamp and a
counter in memory for each flow.  When a flow exceeds the maximum
transmission rate for longer than the burst threshold, packets are
simply dropped."

The bucket is denominated in **bits**: the fill rate is the reservation
bandwidth in bits per second, the depth is ``burst_seconds`` worth of
that rate.  A packet conforms if the bucket holds at least its size.
"""

from __future__ import annotations

from repro.constants import DEFAULT_BURST_SECONDS


class TokenBucket:
    """A single flow's limiter: exactly one timestamp and one counter."""

    __slots__ = ("rate", "depth", "_tokens", "_updated")

    def __init__(self, rate: float, burst_seconds: float = DEFAULT_BURST_SECONDS, now: float = 0.0):
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        if burst_seconds <= 0:
            raise ValueError(f"burst must be positive, got {burst_seconds}")
        self.rate = rate  # bits per second
        self.depth = rate * burst_seconds  # bits
        self._tokens = self.depth  # start full: allow an initial burst
        self._updated = now

    def _refill(self, now: float) -> None:
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.depth, self._tokens + elapsed * self.rate)
            self._updated = now

    def conforms(self, size_bytes: int, now: float) -> bool:
        """Consume tokens for a packet of ``size_bytes``; False = drop.

        Non-conforming packets consume nothing, so a burst that exceeds
        the budget delays only itself — the flow recovers at ``rate``.
        """
        self._refill(now)
        bits = size_bytes * 8
        if bits <= self._tokens:
            self._tokens -= bits
            return True
        return False

    def set_rate(
        self, rate: float, now: float, burst_seconds: float = DEFAULT_BURST_SECONDS
    ) -> None:
        """Adjust to a renewed reservation's bandwidth, preserving the
        relative fill level so a renewal cannot mint a free burst."""
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        self._refill(now)
        fraction = self._tokens / self.depth if self.depth > 0 else 1.0
        self.rate = rate
        self.depth = rate * burst_seconds
        self._tokens = self.depth * fraction

    @property
    def available_bits(self) -> float:
        return self._tokens

    def __repr__(self) -> str:
        return f"TokenBucket(rate={self.rate:.0f} bps, tokens={self._tokens:.0f} bits)"
