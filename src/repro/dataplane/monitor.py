"""Deterministic monitoring (§4.8).

Two uses:

* at the **source AS**, the gateway monitors every local EER
  deterministically (one token bucket per flow) while stamping HVFs;
* at **other ASes**, flows the probabilistic OFD flagged as suspects are
  "subjected to deterministic monitoring, which inspects the reservation
  precisely — similar to the monitoring at the source AS — to determine
  overuse with certainty."

:class:`DeterministicMonitor` is that shared machinery: a table of token
buckets keyed by flow label, sized only by the number of *monitored*
flows (all local flows at the source, only suspects elsewhere).
A confirmed overuse is reported through a callback — the hook where the
border router blocks the source AS and notifies the CServ (policing).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.constants import DEFAULT_BURST_SECONDS
from repro.dataplane.token_bucket import TokenBucket
from repro.obs.events import MONITOR_CONFIRMED_OVERUSE

#: Number of non-conforming packets after which overuse is *confirmed*
#: rather than attributed to an isolated burst.
DEFAULT_CONFIRMATION_DROPS = 3

#: Drops further apart than this don't accumulate towards confirmation:
#: confirmation needs a *burst* of violations, not one stray drop per
#: EER lifetime collected over hours ("determine overuse with
#: certainty", §4.8 — certainty about sustained overuse, not jitter).
DEFAULT_CONFIRMATION_WINDOW = 10.0


class DeterministicMonitor:
    """Exact per-flow rate enforcement over token buckets."""

    #: Optional :class:`repro.obs.ObsContext` + owning-AS label, wired by
    #: ``enable_observability``; class-level defaults keep the disabled
    #: check path untouched (the branch below only runs on confirmation,
    #: which is rare by construction).
    obs = None
    isd_as = ""

    def __init__(
        self,
        burst_seconds: float = DEFAULT_BURST_SECONDS,
        confirmation_drops: int = DEFAULT_CONFIRMATION_DROPS,
        confirmation_window: float = DEFAULT_CONFIRMATION_WINDOW,
        on_confirmed: Optional[Callable] = None,
    ):
        self.burst_seconds = burst_seconds
        self.confirmation_drops = confirmation_drops
        self.confirmation_window = confirmation_window
        self.on_confirmed = on_confirmed
        self._buckets: dict[bytes, TokenBucket] = {}
        self._drops: dict[bytes, tuple] = {}  # flow -> (count, last_drop_at)
        self._confirmed: set = set()
        self.packets_passed = 0
        self.packets_dropped = 0

    def watch(self, flow_label: bytes, bandwidth: float, now: float) -> None:
        """Start (or update) deterministic monitoring of a flow.

        Called for every local EER at the source gateway, and for OFD
        suspects at transit ASes.  On renewal the bucket's rate follows
        the new effective bandwidth instead of being re-created, so the
        flow cannot reset its burst budget by renewing.
        """
        bucket = self._buckets.get(flow_label)
        if bucket is None:
            self._buckets[flow_label] = TokenBucket(
                bandwidth, self.burst_seconds, now=now
            )
        elif bucket.rate != bandwidth:
            bucket.set_rate(bandwidth, now, self.burst_seconds)

    def unwatch(self, flow_label: bytes) -> None:
        self._buckets.pop(flow_label, None)
        self._drops.pop(flow_label, None)
        self._confirmed.discard(flow_label)

    def is_watched(self, flow_label: bytes) -> bool:
        return flow_label in self._buckets

    def bucket_for(self, flow_label: bytes):
        """The flow's token bucket, or ``None`` when unwatched.

        The gateway caches this per reservation (re-synced on every
        ``watch``) so its burst loops call ``bucket.conforms`` directly
        instead of re-probing the flow table per packet; callers that
        inline the pass path must bump :attr:`packets_passed` themselves
        and report non-conforming packets via :meth:`record_drop`.
        """
        return self._buckets.get(flow_label)

    def check(self, flow_label: bytes, packet_size: int, now: float) -> bool:
        """Account one packet; ``True`` = conforming, ``False`` = drop.

        Unwatched flows pass — the caller decides what to watch.
        """
        bucket = self._buckets.get(flow_label)
        if bucket is None or bucket.conforms(packet_size, now):
            self.packets_passed += 1
            return True
        self.record_drop(flow_label, now, bucket)
        return False

    def record_drop(self, flow_label: bytes, now: float, bucket=None) -> None:
        """Account one non-conforming packet and track confirmation.

        The drop half of :meth:`check`, factored out so callers holding
        the bucket already (via :meth:`bucket_for`) keep streak tracking,
        journaling and the confirmation callback identical to the
        non-inlined path.
        """
        self.packets_dropped += 1
        count, last_drop = self._drops.get(flow_label, (0, now))
        if now - last_drop > self.confirmation_window:
            count = 0  # stale history: the streak starts over
        drops = count + 1
        self._drops[flow_label] = (drops, now)
        if drops >= self.confirmation_drops and flow_label not in self._confirmed:
            self._confirmed.add(flow_label)
            if self.obs is not None and self.obs.journal is not None:
                if bucket is None:
                    bucket = self._buckets.get(flow_label)
                self.obs.journal.record(
                    MONITOR_CONFIRMED_OVERUSE,
                    isd_as=self.isd_as,
                    flow=flow_label.hex(),
                    drops=drops,
                    window=self.confirmation_window,
                    bandwidth=bucket.rate if bucket is not None else 0.0,
                )
            if self.on_confirmed is not None:
                self.on_confirmed(flow_label)

    def is_confirmed_overuser(self, flow_label: bytes) -> bool:
        return flow_label in self._confirmed

    def confirmed_count(self) -> int:
        """Flows confirmed as overusers — feeds the
        ``monitor_confirmed_flows`` registry gauge."""
        return len(self._confirmed)

    def drop_streak(self, flow_label: bytes) -> tuple:
        """Current confirmation-window state ``(drops, last_drop_at)``
        for a flow (``(0, None)`` when it has no streak) — the state
        forensics and SLOs previously had to poke out of ``_drops``."""
        count, last_drop = self._drops.get(flow_label, (0, None))
        return count, last_drop

    def watched_count(self) -> int:
        return len(self._buckets)

    def occupancy(self) -> float:
        """Mean fill ratio of the watched token buckets in [0, 1].

        1.0 means every bucket is full (idle or conforming flows with
        their whole burst budget available); values near 0 mean flows are
        pressing against their reserved rates.  With nothing watched the
        monitor reports 1.0 — all (zero) budgets available.  Feeds the
        ``token_bucket_occupancy`` gauge.
        """
        if not self._buckets:
            return 1.0
        total = 0.0
        for bucket in self._buckets.values():
            total += (
                bucket.available_bits / bucket.depth if bucket.depth > 0 else 1.0
            )
        return total / len(self._buckets)
