"""Bounded LRU cache of HopAuths (Eq. 4) for the border router.

The router's EER fast path is stateless: σ_i is re-derivable from the
packet header and the AS secret alone (§4.6).  That property is what
makes caching *safe* — a σ is a pure function of

    (K_i of one DRKey epoch, ResInfo, EERInfo, (In_i, Eg_i))

so a cache entry is pure memoization and can be dropped (or poisoned)
without ever changing a verdict: the router treats cached σs as *hints*.
A hit whose derived HVF does not match the packet falls through to the
stateless recompute, exactly as if the entry did not exist; entries are
only stored after the recomputed σ actually validated a packet, so
forged traffic can neither fill nor displace the cache with garbage.

The cache key is ``(ResId bytes, version, DRKey epoch)``:

* a renewal installs a new version whose ResInfo (and hence HopAuths)
  differ — the new version misses and is recomputed fresh;
* a DRKey epoch rollover changes the epoch component — the first packet
  after rollover misses under the new epoch, and the previous-epoch
  entry remains addressable for reservations straddling the boundary
  (§4.5 key-rotation fallback);
* capacity is bounded (LRU) so a busy router holds soft state only for
  the working set, the same argument the paper makes for DRKey itself.

Hit/miss/eviction counts surface through
:class:`repro.util.metrics.Counters` and the telemetry snapshot.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.crypto import native
from repro.crypto.mac import constant_time_equal
from repro.crypto.prf import prf_context
from repro.util.metrics import Counters

#: Default entry bound.  One entry is a σ plus a prehashed MAC state
#: (~300 B in CPython), so the default costs a few tens of MB at worst —
#: comparable to the gateway table the paper sizes for 2^20 reservations.
DEFAULT_SIGMA_CACHE_CAPACITY = 65536


class SigmaEntry:
    """One cached HopAuth and its prehashed Eq. (6) MAC state."""

    __slots__ = ("sigma", "state", "schedule")

    def __init__(self, sigma: bytes):
        self.sigma = sigma
        #: Prehashed keyed state, clone-only (the same discipline as
        #: :class:`repro.crypto.mac.KeyedMacContext`): the router copies
        #: it per packet and updates the copy.
        self.state = prf_context(sigma)
        #: Native single-key schedule when the cffi kernel is loaded —
        #: one C call verifies a cache hit instead of clone/update/digest
        #: plus a Python compare.  Byte-identical verdicts either way.
        backend = native.backend()
        self.schedule = (
            native.ScheduleBlock(backend, (sigma,)) if backend is not None else None
        )

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Constant-time Eq. (6) check of one packet tag under this σ."""
        schedule = self.schedule
        if schedule is not None:
            return schedule.verify(message, tag)
        state = self.state.copy()
        state.update(message)
        return constant_time_equal(state.digest()[: len(tag)], tag)


class SigmaCache:
    """LRU map ``(ResId, version, epoch) -> SigmaEntry`` with counters."""

    def __init__(
        self,
        capacity: int = DEFAULT_SIGMA_CACHE_CAPACITY,
        counters: Optional[Counters] = None,
    ):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.counters = counters if counters is not None else Counters("sigma_cache")
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> Optional[SigmaEntry]:
        """The entry for ``key``, refreshed as most-recently used."""
        entry = self._entries.get(key)
        if entry is None:
            self.counters.bump("misses")
            return None
        self._entries.move_to_end(key)
        self.counters.bump("hits")
        return entry

    def lookup(
        self, reservation_packed: bytes, version: int, epoch: int
    ) -> Optional[SigmaEntry]:
        """The σ minted in ``epoch`` or the one before (rotation fallback).

        HopAuths are minted from the hop key of the epoch the reservation
        was set up in, and reservations can straddle one epoch boundary
        (§4.5); at most one of the two keys exists.  Counts a single hit
        or miss per call, so the counters track packets, not probes.
        """
        entries = self._entries
        for probe in (epoch, epoch - 1):
            key = (reservation_packed, version, probe)
            entry = entries.get(key)
            if entry is not None:
                entries.move_to_end(key)
                self.counters.bump("hits")
                return entry
        self.counters.bump("misses")
        return None

    def store(self, key: tuple, sigma: bytes) -> SigmaEntry:
        """Remember a σ that just validated a packet (and only then)."""
        entry = SigmaEntry(sigma)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.counters.bump("evictions")
        return entry

    def invalidate(self, reservation_packed: bytes) -> int:
        """Drop every version/epoch entry of one reservation.

        Not needed for correctness (stale entries are verified hints) —
        this is the teardown hook that releases memory early.
        """
        stale = [key for key in self._entries if key[0] == reservation_packed]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()

    def snapshot(self) -> dict:
        """Counter values plus the current size, for telemetry."""
        values = self.counters.snapshot()
        prefix = self.counters.prefix or "sigma_cache"
        values[f"{prefix}_entries"] = len(self._entries)
        return values
