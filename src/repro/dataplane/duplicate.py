"""In-network replay suppression (§2.3, §5.1).

An on-path adversary can capture an authenticated packet and replay it,
both congesting the path and framing the honest source.  Colibri relies
on "an efficient duplicate-packet-suppression system with minimal state
requirements" [32].  Following that design, we keep **rotating Bloom
filters**: the current filter absorbs insertions, the previous one is
still consulted, and rotation every ``window`` seconds bounds memory
regardless of traffic volume.

Only packets inside the freshness window can be replayed at all — older
ones already fail the router's timestamp check — so two filters covering
one window each suffice for no-false-negative suppression.

The packet identifier is ``(SrcAS, ResId, Ts)``: the paper makes Ts
"uniquely identif[y] the packet for the particular source".
"""

from __future__ import annotations

import hashlib

from repro.constants import DUPLICATE_WINDOW
from repro.obs.events import DUPLICATE_SUPPRESSED
from repro.util.clock import Clock


class _BloomFilter:
    """A classic k-hash Bloom filter over a bit array."""

    def __init__(self, bits: int, hashes: int):
        self.bits = bits
        self.hashes = hashes
        self._array = bytearray((bits + 7) // 8)
        self.insertions = 0

    def _positions(self, item: bytes):
        digest = hashlib.blake2b(item, digest_size=8 * self.hashes).digest()
        for index in range(self.hashes):
            chunk = digest[8 * index : 8 * (index + 1)]
            yield int.from_bytes(chunk, "big") % self.bits

    def add(self, item: bytes) -> None:
        for position in self._positions(item):
            self._array[position >> 3] |= 1 << (position & 7)
        self.insertions += 1

    def __contains__(self, item: bytes) -> bool:
        return all(
            self._array[position >> 3] & (1 << (position & 7))
            for position in self._positions(item)
        )

    def clear(self) -> None:
        for index in range(len(self._array)):
            self._array[index] = 0
        self.insertions = 0


class DuplicateSuppressor:
    """Rotating-Bloom-filter replay suppression for one border router.

    ``check_and_insert`` returns ``True`` exactly once per identifier per
    window pair (no false negatives); false positives are possible at the
    configured Bloom rate and simply drop an occasional legitimate packet,
    which the paper accepts as the price of bounded state.
    """

    #: Optional :class:`repro.obs.ObsContext` + owning-AS label; the
    #: journal branch below runs only when a duplicate is caught, so the
    #: fresh-packet fast path is unchanged.
    obs = None
    isd_as = ""

    def __init__(
        self,
        clock: Clock,
        window: float = DUPLICATE_WINDOW,
        bits: int = 1 << 20,
        hashes: int = 4,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.clock = clock
        self.window = window
        self._current = _BloomFilter(bits, hashes)
        self._previous = _BloomFilter(bits, hashes)
        self._rotated_at = clock.now()
        self.duplicates_caught = 0

    def _maybe_rotate(self, now: float) -> None:
        if now - self._rotated_at >= self.window:
            self._previous, self._current = self._current, self._previous
            self._current.clear()
            self._rotated_at = now

    def check_and_insert(self, identifier: bytes) -> bool:
        """``True`` if the packet is fresh (and is now recorded);
        ``False`` if it is a duplicate and must be discarded."""
        now = self.clock.now()
        self._maybe_rotate(now)
        if identifier in self._current or identifier in self._previous:
            self.duplicates_caught += 1
            if self.obs is not None and self.obs.journal is not None:
                self.obs.journal.record(
                    DUPLICATE_SUPPRESSED,
                    isd_as=self.isd_as,
                    identifier=identifier.hex(),
                )
            return False
        self._current.add(identifier)
        return True

    @property
    def memory_bytes(self) -> int:
        """Total filter memory — constant, independent of traffic volume."""
        return len(self._current._array) + len(self._previous._array)

    def false_positive_rate(self) -> float:
        """Probability a *fresh* packet is wrongly suppressed, from the
        filters' actual fill fractions (``fill^k`` per filter).

        The measured fill is used instead of the textbook
        ``(1-e^{-kn/m})^k`` because check-and-insert only inserts items
        that were *not* flagged, a selection effect that fills the filter
        faster than unconditioned insertion.  A fresh identifier is
        dropped if either filter false-positives:
        ``1 - (1-p_cur)(1-p_prev)``.  Operators size the filter so this
        stays negligible at their line rate (an occasional legitimate
        drop is the accepted cost of bounded state, §2.3).
        """

        def per_filter(bloom: _BloomFilter) -> float:
            if bloom.insertions == 0:
                return 0.0
            set_bits = sum(bin(byte).count("1") for byte in bloom._array)
            return (set_bits / bloom.bits) ** bloom.hashes

        p_current = per_filter(self._current)
        p_previous = per_filter(self._previous)
        return 1.0 - (1.0 - p_current) * (1.0 - p_previous)

    @classmethod
    def size_for(
        cls, packets_per_window: int, target_fp_rate: float, hashes: int = 4
    ) -> int:
        """Bits needed so a window of ``packets_per_window`` insertions
        stays under ``target_fp_rate`` — the provisioning formula."""
        import math

        if not 0 < target_fp_rate < 1:
            raise ValueError(f"target rate must be in (0,1), got {target_fp_rate}")
        if packets_per_window <= 0:
            raise ValueError("packets per window must be positive")
        # Invert (1 - e^{-kn/m})^k = p  ->  m = -kn / ln(1 - p^{1/k}).
        per_filter_target = target_fp_rate / 2  # two filters consulted
        root = per_filter_target ** (1.0 / hashes)
        return math.ceil(-hashes * packets_per_window / math.log(1.0 - root))
