"""Intra-domain traffic-class encoding (Appendix B).

"It is crucial that priority is given to Colibri traffic not only at
border routers, but also at switches and routers in each AS's internal
network.  This requires encoding the traffic class in the header of the
intra-domain networking protocol in use.  For example, in an IP network,
the traffic class can be encoded using DiffServ and the DSCP field.
To defend against malicious hosts in an AS's network, all traffic should
pass through a gateway that sets this field to the correct value."

This module provides that encoding and the trust rule:

* the mapping between Colibri classes and DSCP codepoints (standard EF /
  AF41 / default values);
* :func:`classify_packet` — the class a *gateway or border router*
  assigns from what it actually verified;
* :class:`InternalSwitch` — an intra-domain hop that schedules purely on
  the DSCP field, but only honours markings applied by a trusted marker
  (the gateway), remarking everything else to best-effort.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType

from repro.dataplane.queueing import PriorityScheduler, TrafficClass
from repro.packets.colibri import ColibriPacket

#: Standard DSCP codepoints carrying the three Colibri classes inside an
#: AS (RFC 2474/2598 values).
DSCP_EF = 46  # expedited forwarding  -> Colibri EER data
DSCP_AF41 = 34  # assured forwarding    -> Colibri control over SegRs
DSCP_DEFAULT = 0  # default forwarding    -> best effort

# Read-only views (CL010): these tables are reached from shard workers,
# so they must be immutable rather than process-shared mutable dicts.
CLASS_TO_DSCP = MappingProxyType({
    TrafficClass.EER_DATA: DSCP_EF,
    TrafficClass.CONTROL: DSCP_AF41,
    TrafficClass.BEST_EFFORT: DSCP_DEFAULT,
})
DSCP_TO_CLASS = MappingProxyType(
    {dscp: cls for cls, dscp in CLASS_TO_DSCP.items()}
)


def classify_packet(packet: ColibriPacket, authenticated: bool) -> TrafficClass:
    """The traffic class a trusted marker assigns to a packet.

    Only *authenticated* Colibri packets earn a Colibri class; anything
    else — including Colibri-shaped packets that failed the HVF check —
    is best effort at most (it will normally be dropped before this).
    """
    if not authenticated:
        return TrafficClass.BEST_EFFORT
    if packet.is_eer_data:
        return TrafficClass.EER_DATA
    return TrafficClass.CONTROL


@dataclass
class MarkedFrame:
    """An intra-domain frame: payload size, DSCP field, and who marked it."""

    size_bytes: int
    dscp: int
    marked_by_gateway: bool


class InternalSwitch:
    """An AS-internal switch honouring DSCP — but only from the gateway.

    Hosts can write anything into their headers; the Appendix B rule is
    that the *gateway* is the sole trusted marker, so the switch remarks
    every non-gateway frame to the default class before queueing.  The
    ``remarked`` counter exposes attempted priority theft.
    """

    def __init__(self, capacity: float, queue_bytes: int = None):
        kwargs = {} if queue_bytes is None else {"queue_bytes": queue_bytes}
        self.scheduler = PriorityScheduler(capacity, **kwargs)
        self.remarked = 0

    def ingest(self, frame: MarkedFrame) -> bool:
        dscp = frame.dscp
        if not frame.marked_by_gateway and dscp != DSCP_DEFAULT:
            self.remarked += 1
            dscp = DSCP_DEFAULT
        traffic_class = DSCP_TO_CLASS.get(dscp, TrafficClass.BEST_EFFORT)
        return self.scheduler.enqueue(frame.size_bytes, traffic_class)

    def drain(self, duration: float) -> dict:
        return self.scheduler.drain(duration)
