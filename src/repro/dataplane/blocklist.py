"""The policing blocklist (§4.8).

"When a flow is confirmed to be exceeding its EER bandwidth […] the AS
that detects the abuse […] block[s] further traffic over the reservation
[…] achieved by keeping a list of blocked source ASes.  As this blocklist
is very short — only a tiny share of the 70 000 ASes is expected to
misbehave at any point in time — it can be implemented as a simple hash
set."

Entries carry an optional expiry so an operator can impose time-boxed
penalties; permanent blocks use ``expiry=None``.  The router consults
:meth:`is_blocked` on every packet — an O(1) set lookup, keeping the
fast path fast.
"""

from __future__ import annotations

from typing import Optional

from repro.topology.addresses import IsdAs


class Blocklist:
    """A hash set of blocked source ASes with optional per-entry expiry."""

    def __init__(self):
        self._blocked: dict[IsdAs, Optional[float]] = {}
        self.blocks_imposed = 0

    def block(self, source: IsdAs, until: Optional[float] = None) -> None:
        """Block a source AS, permanently or until an absolute time."""
        self._blocked[source] = until
        self.blocks_imposed += 1

    def unblock(self, source: IsdAs) -> None:
        self._blocked.pop(source, None)

    def is_blocked(self, source: IsdAs, now: float) -> bool:
        until = self._blocked.get(source, _MISSING)
        if until is _MISSING:
            return False
        if until is None:
            return True
        if now >= until:
            # Lazy expiry: drop the stale entry on first consultation.
            del self._blocked[source]
            return False
        return True

    def __len__(self) -> int:
        return len(self._blocked)

    def blocked_ases(self) -> list:
        return sorted(self._blocked)


_MISSING = object()
