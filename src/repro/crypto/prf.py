"""Pseudo-random function primitive.

DRKey's core operation is ``K_{A->B} = PRF_{K_A}(B)`` (Eq. 1): a keyed
pseudo-random function that an AS evaluates on the fly — "faster than a
memory lookup" in the paper's hardware-AES setting.  We implement the PRF
with keyed BLAKE2s truncated to 16 bytes, the same output width as the
AES-128-based PRF in the prototype.
"""

from __future__ import annotations

import hashlib
import os

KEY_LENGTH = 16  # bytes; matches AES-128 keys in the paper's prototype.


def prf(key: bytes, data: bytes) -> bytes:
    """Evaluate the keyed PRF: a 16-byte pseudo-random value.

    Deterministic in ``(key, data)``; infeasible to compute or predict
    without ``key``.  Used for DRKey derivation (Eq. 1) and as the
    building block of :func:`repro.crypto.mac.mac`.
    """
    if not key:
        raise ValueError("PRF key must be non-empty")
    # blake2s accepts keys up to 32 bytes; longer keys are compressed first
    # so callers may pass arbitrary key material (e.g. chained HopAuths).
    if len(key) > 32:
        key = hashlib.blake2s(key).digest()
    return hashlib.blake2s(data, key=key, digest_size=KEY_LENGTH).digest()


def prf_context(key: bytes):
    """A reusable keyed-PRF state for evaluating many messages under one key.

    Key scheduling (padding the key into the first compression block) is
    the fixed per-key cost of every :func:`prf` call; batch consumers pay
    it once and then clone the returned context per message::

        ctx = prf_context(key)
        h = ctx.copy(); h.update(data); tag = h.digest()

    is byte-identical to ``prf(key, data)`` — the context is pure
    memoization of the key schedule, never of any message.
    """
    if not key:
        raise ValueError("PRF key must be non-empty")
    if len(key) > 32:
        key = hashlib.blake2s(key).digest()
    return hashlib.blake2s(key=key, digest_size=KEY_LENGTH)


def prf_under_keys(keys, data: bytes) -> list:
    """``prf(key, data)`` for each key over one shared message.

    The batch counterpart of :func:`prf` for fan-out points like Eq. (6)
    stamping (one message, one MAC per on-path σ): a single Python-level
    loop with one C call per key, byte-identical to calling :func:`prf`
    per key.
    """
    blake2s = hashlib.blake2s
    tags = []
    append = tags.append
    for key in keys:
        if not key:
            raise ValueError("PRF key must be non-empty")
        if len(key) > 32:
            key = blake2s(key).digest()
        append(blake2s(data, key=key, digest_size=KEY_LENGTH).digest())
    return tags


def random_key(length: int = KEY_LENGTH) -> bytes:
    """Generate a fresh uniformly random key (AS secret values, SVs)."""
    if length <= 0:
        raise ValueError(f"key length must be positive, got {length}")
    return os.urandom(length)
