"""Optional cffi-native keyed-BLAKE2s kernel for Eq. (6) stamping.

The paper's DPDK prototype reaches line rate because AES-NI computes a
per-packet MAC in tens of cycles; our pure-Python data plane pays three
``hashlib`` C calls *per hop* plus Python glue around each.  This module
is the corresponding "hardware" acceleration for the reproduction: a
small C implementation of keyed BLAKE2s, compiled on demand through
cffi, whose entry points amortize the Python→C boundary over a whole
packet (``colibri_stamp``: all hops in one call), a whole
single-reservation burst (``colibri_stamp_many``), or a whole *mixed*
burst (``colibri_stamp_scatter``: per-packet schedules, messages and
output offsets, one call — see :class:`BurstStamper`).

Byte-identity is the admission contract (docs/performance.md): for every
key and message,

    ScheduleBlock(backend, [key]).stamp_flat(msg)
        == hashlib.blake2s(msg, key=key, digest_size=16).digest()[:L_HVF]

which is exactly :func:`repro.crypto.prf.prf` truncated — the property
tests in tests/test_batch_equivalence.py enforce it, and every consumer
(gateway stamping, router σ-cache verification) falls back to the
hashlib path with identical output when the backend is unavailable.

Availability is best-effort by design: no cffi, no C compiler, or
``COLIBRI_NATIVE=0`` in the environment all mean
:func:`backend` returns ``None`` and the callers keep their pure-Python
hot paths.  Builds are cached under ``_native_build/`` (gitignored)
keyed by a hash of the C source, so the compiler runs once per source
revision per machine; concurrent builders compile into a private
directory and atomically rename the finished extension into place.
"""

from __future__ import annotations

import functools
import hashlib
import importlib.util
import os
import shutil
from typing import Optional

from repro.constants import L_HVF, MAC_LENGTH

_CDEF = """
void colibri_b2s_key_schedule(const uint8_t *key, size_t keylen,
                              size_t outlen, uint32_t *h_out);
void colibri_stamp(const uint32_t *scheds, size_t nscheds,
                   const uint8_t *msg, size_t msglen,
                   uint8_t *out, size_t tag_len);
void colibri_stamp_many(const uint32_t *scheds, size_t nscheds,
                        const uint8_t *msgs, size_t msglen, size_t nmsgs,
                        uint8_t *out, size_t tag_len);
void colibri_stamp_scatter(uint32_t * const *scheds, const int32_t *nscheds,
                           const uint8_t *msgs, size_t msglen, size_t npkts,
                           uint8_t *out, const int64_t *offsets,
                           size_t tag_len);
int colibri_verify(const uint32_t *sched, const uint8_t *msg, size_t msglen,
                   const uint8_t *tag, size_t tag_len);
int colibri_has_avx2(void);
void colibri_b2s_transpose(const uint32_t *scheds, size_t nscheds,
                           uint32_t *out);
void colibri_stamp_t(const uint32_t *scheds_t, size_t nscheds,
                     const uint8_t *msg, size_t msglen,
                     uint8_t *out, size_t tag_len);
void colibri_stamp_many_t(const uint32_t *scheds_t, size_t nscheds,
                          const uint8_t *msgs, size_t msglen, size_t nmsgs,
                          uint8_t *out, size_t tag_len);
void colibri_stamp_scatter_t(uint32_t * const *scheds_t,
                             const int32_t *nscheds,
                             const uint8_t *msgs, size_t msglen, size_t npkts,
                             uint8_t *out, const int64_t *offsets,
                             size_t tag_len);
"""

_SOURCE = r"""
#include <stdint.h>
#include <string.h>

static const uint32_t B2S_IV[8] = {
    0x6A09E667UL, 0xBB67AE85UL, 0x3C6EF372UL, 0xA54FF53AUL,
    0x510E527FUL, 0x9B05688CUL, 0x1F83D9ABUL, 0x5BE0CD19UL
};

static const uint8_t B2S_SIGMA[10][16] = {
    { 0, 1, 2, 3, 4, 5, 6, 7, 8, 9,10,11,12,13,14,15},
    {14,10, 4, 8, 9,15,13, 6, 1,12, 0, 2,11, 7, 5, 3},
    {11, 8,12, 0, 5, 2,15,13,10,14, 3, 6, 7, 1, 9, 4},
    { 7, 9, 3, 1,13,12,11,14, 2, 6, 5,10, 4, 0,15, 8},
    { 9, 0, 5, 7, 2, 4,10,15,14, 1,11,12, 6, 8, 3,13},
    { 2,12, 6,10, 0,11, 8, 3, 4,13, 7, 5,15,14, 1, 9},
    {12, 5, 1,15,14,13, 4,10, 0, 7, 6, 3, 9, 2, 8,11},
    {13,11, 7,14,12, 1, 3, 9, 5, 0,15, 4, 8, 6, 2,10},
    { 6,15,14, 9,11, 3, 0, 8,12, 2,13, 7, 1, 4,10, 5},
    {10, 2, 8, 4, 7, 6, 1, 5,15,11, 9,14, 3,12,13, 0}
};

#define ROTR32(x, n) (((x) >> (n)) | ((x) << (32 - (n))))

#define G(r, i, a, b, c, d)                         \
    do {                                            \
        a = a + b + m[B2S_SIGMA[r][2 * i + 0]];     \
        d = ROTR32(d ^ a, 16);                      \
        c = c + d;                                  \
        b = ROTR32(b ^ c, 12);                      \
        a = a + b + m[B2S_SIGMA[r][2 * i + 1]];     \
        d = ROTR32(d ^ a, 8);                       \
        c = c + d;                                  \
        b = ROTR32(b ^ c, 7);                       \
    } while (0)

/* One full round, spelled out so the sigma indices are compile-time
   constants.  The rolled `for (r = 0; ...)` form makes every message
   word load an indirect table lookup; unrolling lets the compiler fold
   B2S_SIGMA into immediate offsets (~20% on the 16-hop stamp). */
#define ROUND(r)                                    \
    G(r, 0, v[0], v[4], v[ 8], v[12]);              \
    G(r, 1, v[1], v[5], v[ 9], v[13]);              \
    G(r, 2, v[2], v[6], v[10], v[14]);              \
    G(r, 3, v[3], v[7], v[11], v[15]);              \
    G(r, 4, v[0], v[5], v[10], v[15]);              \
    G(r, 5, v[1], v[6], v[11], v[12]);              \
    G(r, 6, v[2], v[7], v[ 8], v[13]);              \
    G(r, 7, v[3], v[4], v[ 9], v[14])

/* Compress over a block already decoded to little-endian words.  The
   stamp loops decode the (shared) message block once per packet and
   run only this per hop, instead of re-decoding per MAC. */
static void b2s_compress_words(uint32_t h[8], const uint32_t m[16],
                               uint64_t t, uint32_t f0)
{
    uint32_t v[16];
    int i;
    for (i = 0; i < 8; i++) v[i] = h[i];
    v[8] = B2S_IV[0]; v[9] = B2S_IV[1]; v[10] = B2S_IV[2]; v[11] = B2S_IV[3];
    v[12] = B2S_IV[4] ^ (uint32_t)t;
    v[13] = B2S_IV[5] ^ (uint32_t)(t >> 32);
    v[14] = B2S_IV[6] ^ f0;
    v[15] = B2S_IV[7];
    ROUND(0); ROUND(1); ROUND(2); ROUND(3); ROUND(4);
    ROUND(5); ROUND(6); ROUND(7); ROUND(8); ROUND(9);
    for (i = 0; i < 8; i++) h[i] = h[i] ^ v[i] ^ v[i + 8];
}

/* Zero-pad a partial chunk to one block and decode it to words. */
static void b2s_block_words(const uint8_t *chunk, size_t len, uint32_t m[16])
{
    uint8_t block[64];
    int i;
    memset(block, 0, 64);
    memcpy(block, chunk, len);
    for (i = 0; i < 16; i++) {
        m[i] = (uint32_t)block[4 * i] | ((uint32_t)block[4 * i + 1] << 8)
             | ((uint32_t)block[4 * i + 2] << 16)
             | ((uint32_t)block[4 * i + 3] << 24);
    }
}

static void b2s_compress(uint32_t h[8], const uint8_t block[64],
                         uint64_t t, uint32_t f0)
{
    uint32_t m[16];
    int i;
    for (i = 0; i < 16; i++) {
        m[i] = (uint32_t)block[4 * i] | ((uint32_t)block[4 * i + 1] << 8)
             | ((uint32_t)block[4 * i + 2] << 16)
             | ((uint32_t)block[4 * i + 3] << 24);
    }
    b2s_compress_words(h, m, t, f0);
}

/* Key schedule: the chaining state after the padded key block, for keyed
   BLAKE2s with the given digest length.  Matches
   hashlib.blake2s(key=..., digest_size=outlen) exactly: parameter-block
   word 0 is digest_length | key_length << 8 | fanout(1) << 16 |
   depth(1) << 24, and the key block counts 64 bytes. */
void colibri_b2s_key_schedule(const uint8_t *key, size_t keylen,
                              size_t outlen, uint32_t *h_out)
{
    uint8_t block[64];
    int i;
    for (i = 0; i < 8; i++) h_out[i] = B2S_IV[i];
    h_out[0] ^= (uint32_t)outlen | ((uint32_t)keylen << 8)
              | (1UL << 16) | (1UL << 24);
    memset(block, 0, 64);
    memcpy(block, key, keylen);
    b2s_compress(h_out, block, 64, 0);
}

/* Finish a keyed MAC over one message from a prepared key schedule. */
static void b2s_tail(const uint32_t *sched, const uint8_t *msg,
                     size_t msglen, uint8_t *out, size_t outlen)
{
    uint32_t h[8];
    uint32_t m[16];
    uint64_t t = 64;
    size_t i;
    memcpy(h, sched, 32);
    while (msglen > 64) {
        t += 64;
        b2s_compress(h, msg, t, 0);
        msg += 64;
        msglen -= 64;
    }
    b2s_block_words(msg, msglen, m);
    t += msglen;
    b2s_compress_words(h, m, t, 0xFFFFFFFFUL);
    for (i = 0; i < outlen; i++)
        out[i] = (uint8_t)(h[i / 4] >> (8 * (i % 4)));
}

/* Finish a MAC whose (single-block) message is already decoded. */
static void b2s_tail_words(const uint32_t *sched, const uint32_t m[16],
                           uint64_t t, uint8_t *out, size_t outlen)
{
    uint32_t h[8];
    size_t i;
    memcpy(h, sched, 32);
    b2s_compress_words(h, m, t, 0xFFFFFFFFUL);
    for (i = 0; i < outlen; i++)
        out[i] = (uint8_t)(h[i / 4] >> (8 * (i % 4)));
}

/* One message, many key schedules: all hop HVFs of one packet (Eq. 6).
   The Ts||PktSize message fits one block, so it is decoded to words
   once and every hop pays only its compression. */
void colibri_stamp(const uint32_t *scheds, size_t nscheds,
                   const uint8_t *msg, size_t msglen,
                   uint8_t *out, size_t tag_len)
{
    size_t i;
    if (msglen <= 64) {
        uint32_t m[16];
        uint64_t t = 64 + msglen;
        b2s_block_words(msg, msglen, m);
        for (i = 0; i < nscheds; i++)
            b2s_tail_words(scheds + 8 * i, m, t, out + i * tag_len, tag_len);
        return;
    }
    for (i = 0; i < nscheds; i++)
        b2s_tail(scheds + 8 * i, msg, msglen, out + i * tag_len, tag_len);
}

/* Many fixed-size messages x many schedules: a whole burst in one call.
   out is message-major: nmsgs rows of nscheds tags of tag_len bytes. */
void colibri_stamp_many(const uint32_t *scheds, size_t nscheds,
                        const uint8_t *msgs, size_t msglen, size_t nmsgs,
                        uint8_t *out, size_t tag_len)
{
    size_t p, i;
    if (msglen <= 64) {
        uint32_t m[16];
        uint64_t t = 64 + msglen;
        for (p = 0; p < nmsgs; p++) {
            uint8_t *row = out + p * nscheds * tag_len;
            b2s_block_words(msgs + p * msglen, msglen, m);
            for (i = 0; i < nscheds; i++)
                b2s_tail_words(scheds + 8 * i, m, t, row + i * tag_len,
                               tag_len);
        }
        return;
    }
    for (p = 0; p < nmsgs; p++) {
        const uint8_t *msg = msgs + p * msglen;
        uint8_t *row = out + p * nscheds * tag_len;
        for (i = 0; i < nscheds; i++)
            b2s_tail(scheds + 8 * i, msg, msglen, row + i * tag_len, tag_len);
    }
}

/* A whole *mixed* burst in one call: packet p carries nscheds[p] hop
   schedules at scheds[p], its fixed-size message at msgs + p*msglen,
   and its tags land at out + offsets[p] (an arena byte offset on the
   wire path, a running row offset on the object path).  This is what
   lets bursts spanning many reservations amortize the Python->C
   boundary the way single-reservation bursts do with stamp_many. */
void colibri_stamp_scatter(uint32_t * const *scheds, const int32_t *nscheds,
                           const uint8_t *msgs, size_t msglen, size_t npkts,
                           uint8_t *out, const int64_t *offsets,
                           size_t tag_len)
{
    size_t p, i;
    if (msglen <= 64) {
        uint32_t m[16];
        uint64_t t = 64 + msglen;
        for (p = 0; p < npkts; p++) {
            const uint32_t *sched = scheds[p];
            uint8_t *row = out + offsets[p];
            size_t hops = (size_t)nscheds[p];
            /* Bursts over big reservation tables touch a random ~32 B/hop
               schedule per packet; pull the next packet's schedule toward
               the core while this packet's ~16 compressions run, hiding
               most of the miss latency. */
            if (p + 1 < npkts) {
                const char *next = (const char *)scheds[p + 1];
                size_t nbytes = (size_t)nscheds[p + 1] * 32;
                size_t line;
                for (line = 0; line < nbytes; line += 64)
                    __builtin_prefetch(next + line, 0, 1);
            }
            b2s_block_words(msgs + p * msglen, msglen, m);
            for (i = 0; i < hops; i++)
                b2s_tail_words(sched + 8 * i, m, t, row + i * tag_len,
                               tag_len);
        }
        return;
    }
    for (p = 0; p < npkts; p++) {
        const uint32_t *sched = scheds[p];
        uint8_t *row = out + offsets[p];
        size_t hops = (size_t)nscheds[p];
        for (i = 0; i < hops; i++)
            b2s_tail(sched + 8 * i, msgs + p * msglen, msglen,
                     row + i * tag_len, tag_len);
    }
}

/* ---- 8-way SIMD lane layout ----------------------------------------
   All hops of one packet MAC the same (single-block) message under
   different schedules -- the textbook shape for N-way SIMD hashing:
   lane L of a vector compress runs hop L.  Schedules are re-laid-out
   once at install time ("transposed": groups of 8 hops, word-major
   within a group, zero-padded lanes) so the vector loads need no
   per-packet gathers.  The `_t` entry points consume that layout and
   fall back to scalar compressions over the same layout when the CPU
   lacks AVX2, so callers route purely on which layout they built. */

void colibri_b2s_transpose(const uint32_t *scheds, size_t nscheds,
                           uint32_t *out)
{
    size_t groups = (nscheds + 7) / 8, i, w;
    memset(out, 0, groups * 64 * sizeof(uint32_t));
    for (i = 0; i < nscheds; i++)
        for (w = 0; w < 8; w++)
            out[(i / 8) * 64 + w * 8 + (i % 8)] = scheds[i * 8 + w];
}

/* Scalar view of one lane's schedule in the transposed layout. */
static void sched_lane(const uint32_t *scheds_t, size_t lane, uint32_t sc[8])
{
    const uint32_t *group = scheds_t + (lane >> 3) * 64 + (lane & 7);
    size_t w;
    for (w = 0; w < 8; w++) sc[w] = group[w * 8];
}

#if defined(__GNUC__) && defined(__x86_64__)
#define COLIBRI_AVX2 1
#include <immintrin.h>

int colibri_has_avx2(void) { return __builtin_cpu_supports("avx2"); }

/* The 16-bit and 8-bit rotations are byte permutations, so they map to
   one shuffle; 12 and 7 need the two-shift form. */
#define GV(r, i, a, b, c, d)                                              \
    a = _mm256_add_epi32(_mm256_add_epi32(a, b),                          \
                         _mm256_set1_epi32((int)m[B2S_SIGMA[r][2*i+0]])); \
    d = _mm256_shuffle_epi8(_mm256_xor_si256(d, a), r16);                 \
    c = _mm256_add_epi32(c, d);                                           \
    b = _mm256_xor_si256(b, c);                                           \
    b = _mm256_or_si256(_mm256_srli_epi32(b, 12),                         \
                        _mm256_slli_epi32(b, 20));                        \
    a = _mm256_add_epi32(_mm256_add_epi32(a, b),                          \
                         _mm256_set1_epi32((int)m[B2S_SIGMA[r][2*i+1]])); \
    d = _mm256_shuffle_epi8(_mm256_xor_si256(d, a), r8);                  \
    c = _mm256_add_epi32(c, d);                                           \
    b = _mm256_xor_si256(b, c);                                           \
    b = _mm256_or_si256(_mm256_srli_epi32(b, 7),                          \
                        _mm256_slli_epi32(b, 25));

#define ROUNDV(r)                                   \
    GV(r, 0, v[0], v[4], v[ 8], v[12])              \
    GV(r, 1, v[1], v[5], v[ 9], v[13])              \
    GV(r, 2, v[2], v[6], v[10], v[14])              \
    GV(r, 3, v[3], v[7], v[11], v[15])              \
    GV(r, 4, v[0], v[5], v[10], v[15])              \
    GV(r, 5, v[1], v[6], v[11], v[12])              \
    GV(r, 6, v[2], v[7], v[ 8], v[13])              \
    GV(r, 7, v[3], v[4], v[ 9], v[14])

/* One compression of 8 independent chaining states over one shared
   decoded message block. */
__attribute__((target("avx2")))
static void b2s_compress_x8(__m256i h[8], const uint32_t m[16], uint64_t t,
                            uint32_t f0)
{
    __m256i v[16];
    const __m256i r16 = _mm256_setr_epi8(
        2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13,
        2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13);
    const __m256i r8 = _mm256_setr_epi8(
        1, 2, 3, 0, 5, 6, 7, 4, 9, 10, 11, 8, 13, 14, 15, 12,
        1, 2, 3, 0, 5, 6, 7, 4, 9, 10, 11, 8, 13, 14, 15, 12);
    int i;
    for (i = 0; i < 8; i++) v[i] = h[i];
    v[8]  = _mm256_set1_epi32((int)B2S_IV[0]);
    v[9]  = _mm256_set1_epi32((int)B2S_IV[1]);
    v[10] = _mm256_set1_epi32((int)B2S_IV[2]);
    v[11] = _mm256_set1_epi32((int)B2S_IV[3]);
    v[12] = _mm256_set1_epi32((int)(B2S_IV[4] ^ (uint32_t)t));
    v[13] = _mm256_set1_epi32((int)(B2S_IV[5] ^ (uint32_t)(t >> 32)));
    v[14] = _mm256_set1_epi32((int)(B2S_IV[6] ^ f0));
    v[15] = _mm256_set1_epi32((int)B2S_IV[7]);
    ROUNDV(0) ROUNDV(1) ROUNDV(2) ROUNDV(3) ROUNDV(4)
    ROUNDV(5) ROUNDV(6) ROUNDV(7) ROUNDV(8) ROUNDV(9)
    for (i = 0; i < 8; i++)
        h[i] = _mm256_xor_si256(h[i], _mm256_xor_si256(v[i], v[i + 8]));
}

/* Write the first tag_len digest bytes of each of `lanes` lanes. */
__attribute__((target("avx2")))
static void b2s_emit_x8(const __m256i h[8], uint8_t *out, size_t lanes,
                        size_t tag_len)
{
    size_t lane, j;
    if (tag_len == 4) {
        uint32_t h0[8];
        _mm256_storeu_si256((__m256i *)h0, h[0]);
        for (lane = 0; lane < lanes; lane++)
            memcpy(out + 4 * lane, &h0[lane], 4);  /* x86 is LE */
        return;
    }
    {
        uint32_t hw[8][8];
        int i;
        for (i = 0; i < 8; i++)
            _mm256_storeu_si256((__m256i *)hw[i], h[i]);
        for (lane = 0; lane < lanes; lane++)
            for (j = 0; j < tag_len; j++)
                out[lane * tag_len + j] =
                    (uint8_t)(hw[j / 4][lane] >> (8 * (j % 4)));
    }
}

/* 8 tails over a shared single-block decoded message: the hot shape. */
__attribute__((target("avx2")))
static void b2s_tails_words_x8(const uint32_t *group, const uint32_t m[16],
                               uint64_t t, uint8_t *out, size_t lanes,
                               size_t tag_len)
{
    __m256i h[8];
    int i;
    for (i = 0; i < 8; i++)
        h[i] = _mm256_loadu_si256((const __m256i *)(group + 8 * i));
    b2s_compress_x8(h, m, t, 0xFFFFFFFFUL);
    b2s_emit_x8(h, out, lanes, tag_len);
}

/* 8 tails over an arbitrary-length shared message (cold generality). */
__attribute__((target("avx2")))
static void b2s_tails_x8(const uint32_t *group, const uint8_t *msg,
                         size_t msglen, uint8_t *out, size_t lanes,
                         size_t tag_len)
{
    __m256i h[8];
    uint32_t m[16];
    uint64_t t = 64;
    int i;
    for (i = 0; i < 8; i++)
        h[i] = _mm256_loadu_si256((const __m256i *)(group + 8 * i));
    while (msglen > 64) {
        t += 64;
        b2s_block_words(msg, 64, m);
        b2s_compress_x8(h, m, t, 0);
        msg += 64;
        msglen -= 64;
    }
    b2s_block_words(msg, msglen, m);
    t += msglen;
    b2s_compress_x8(h, m, t, 0xFFFFFFFFUL);
    b2s_emit_x8(h, out, lanes, tag_len);
}
#else
int colibri_has_avx2(void) { return 0; }
#endif

/* colibri_stamp over the transposed layout: 8 hops per compress. */
void colibri_stamp_t(const uint32_t *scheds_t, size_t nscheds,
                     const uint8_t *msg, size_t msglen,
                     uint8_t *out, size_t tag_len)
{
    size_t i;
#ifdef COLIBRI_AVX2
    if (colibri_has_avx2()) {
        if (msglen <= 64) {
            uint32_t m[16];
            uint64_t t = 64 + msglen;
            b2s_block_words(msg, msglen, m);
            for (i = 0; i < nscheds; i += 8) {
                size_t lanes = nscheds - i;
                if (lanes > 8) lanes = 8;
                b2s_tails_words_x8(scheds_t + i * 8, m, t, out + i * tag_len,
                                   lanes, tag_len);
            }
            return;
        }
        for (i = 0; i < nscheds; i += 8) {
            size_t lanes = nscheds - i;
            if (lanes > 8) lanes = 8;
            b2s_tails_x8(scheds_t + i * 8, msg, msglen, out + i * tag_len,
                         lanes, tag_len);
        }
        return;
    }
#endif
    for (i = 0; i < nscheds; i++) {
        uint32_t sc[8];
        sched_lane(scheds_t, i, sc);
        b2s_tail(sc, msg, msglen, out + i * tag_len, tag_len);
    }
}

void colibri_stamp_many_t(const uint32_t *scheds_t, size_t nscheds,
                          const uint8_t *msgs, size_t msglen, size_t nmsgs,
                          uint8_t *out, size_t tag_len)
{
    size_t p, i;
#ifdef COLIBRI_AVX2
    if (colibri_has_avx2() && msglen <= 64) {
        uint32_t m[16];
        uint64_t t = 64 + msglen;
        for (p = 0; p < nmsgs; p++) {
            uint8_t *row = out + p * nscheds * tag_len;
            b2s_block_words(msgs + p * msglen, msglen, m);
            for (i = 0; i < nscheds; i += 8) {
                size_t lanes = nscheds - i;
                if (lanes > 8) lanes = 8;
                b2s_tails_words_x8(scheds_t + i * 8, m, t, row + i * tag_len,
                                   lanes, tag_len);
            }
        }
        return;
    }
#endif
    for (p = 0; p < nmsgs; p++)
        colibri_stamp_t(scheds_t, nscheds, msgs + p * msglen, msglen,
                        out + p * nscheds * tag_len, tag_len);
}

void colibri_stamp_scatter_t(uint32_t * const *scheds_t,
                             const int32_t *nscheds,
                             const uint8_t *msgs, size_t msglen, size_t npkts,
                             uint8_t *out, const int64_t *offsets,
                             size_t tag_len)
{
    size_t p, i;
#ifdef COLIBRI_AVX2
    if (colibri_has_avx2() && msglen <= 64) {
        uint32_t m[16];
        uint64_t t = 64 + msglen;
        for (p = 0; p < npkts; p++) {
            const uint32_t *st = scheds_t[p];
            uint8_t *row = out + offsets[p];
            size_t hops = (size_t)nscheds[p];
            if (p + 1 < npkts) {
                const char *next = (const char *)scheds_t[p + 1];
                size_t nbytes = (((size_t)nscheds[p + 1] + 7) / 8) * 256;
                size_t line;
                for (line = 0; line < nbytes; line += 64)
                    __builtin_prefetch(next + line, 0, 1);
            }
            b2s_block_words(msgs + p * msglen, msglen, m);
            for (i = 0; i < hops; i += 8) {
                size_t lanes = hops - i;
                if (lanes > 8) lanes = 8;
                b2s_tails_words_x8(st + i * 8, m, t, row + i * tag_len,
                                   lanes, tag_len);
            }
        }
        return;
    }
#endif
    for (p = 0; p < npkts; p++)
        colibri_stamp_t(scheds_t[p], (size_t)nscheds[p], msgs + p * msglen,
                        msglen, out + offsets[p], tag_len);
}

/* Constant-time verify of one (truncated) tag under one schedule. */
int colibri_verify(const uint32_t *sched, const uint8_t *msg, size_t msglen,
                   const uint8_t *tag, size_t tag_len)
{
    uint8_t expect[32];
    uint8_t acc = 0;
    size_t i;
    b2s_tail(sched, msg, msglen, expect, tag_len > 32 ? 32 : tag_len);
    for (i = 0; i < tag_len; i++) acc |= (uint8_t)(expect[i] ^ tag[i]);
    return acc == 0;
}
"""

_BUILD_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_native_build")

def _module_name() -> str:
    digest = hashlib.blake2s(
        (_CDEF + _SOURCE).encode("utf-8"), digest_size=6
    ).hexdigest()
    return f"_colibri_b2s_{digest}"


def _find_extension(name: str) -> Optional[str]:
    if not os.path.isdir(_BUILD_DIR):
        return None
    for entry in sorted(os.listdir(_BUILD_DIR)):
        if entry.startswith(name) and entry.endswith(".so"):
            return os.path.join(_BUILD_DIR, entry)
    return None


def _compile_extension(name: str) -> str:
    """Build the extension into ``_BUILD_DIR`` and return its path.

    Compiles in a per-process scratch directory and atomically renames
    the result, so concurrent first-callers (e.g. spawned shard workers)
    cannot corrupt each other's build.
    """
    from cffi import FFI, VerificationError

    ffi = FFI()
    ffi.cdef(_CDEF)
    ffi.set_source(name, _SOURCE, extra_compile_args=["-O3"])
    scratch = os.path.join(_BUILD_DIR, f"tmp-{os.getpid()}")
    os.makedirs(scratch, exist_ok=True)
    try:
        built = ffi.compile(tmpdir=scratch, verbose=False)
        final = os.path.join(_BUILD_DIR, os.path.basename(built))
        os.replace(built, final)
    except VerificationError as error:  # no working C toolchain
        raise OSError(f"native kernel compile failed: {error}") from error
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return final


def _load() -> "NativeBackend":
    name = _module_name()
    path = _find_extension(name)
    if path is None:
        path = _compile_extension(name)
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load native extension at {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return NativeBackend(module.ffi, module.lib)


@functools.lru_cache(maxsize=1)
def _probe() -> tuple:
    """``(backend, unavailable_reason)`` — exactly one is non-``None``.

    Memoized pure probe of the host environment (``COLIBRI_NATIVE=0``
    disables; otherwise load a cached build or compile one).  Failure to
    build is remembered — a host without a compiler pays the probe once,
    not per reservation install.  The cache lives on the function object
    rather than in module globals so shard workers reaching this through
    forked fast paths stay shared-nothing (CF004): the memoized value is
    a pure function of the process environment, identical in every
    worker that probes it independently.
    """
    if os.environ.get("COLIBRI_NATIVE", "1").lower() in ("0", "no", "off"):
        return None, "disabled via COLIBRI_NATIVE"
    try:
        return _load(), None
    except ImportError as error:  # no cffi, or the built .so will not load
        return None, f"import failed: {error}"
    except OSError as error:  # no compiler, unwritable build dir, ...
        return None, f"build failed: {error}"


def backend() -> Optional["NativeBackend"]:
    """The loaded native backend, or ``None`` when unavailable."""
    return _probe()[0]


def available() -> bool:
    return backend() is not None


def why_unavailable() -> Optional[str]:
    """Human-readable reason the backend is off (``None`` when loaded)."""
    return _probe()[1]


def reset_for_tests() -> None:
    """Forget the probe result so tests can flip COLIBRI_NATIVE."""
    _probe.cache_clear()


def _normalize_key(key: bytes) -> bytes:
    """The :func:`repro.crypto.prf.prf` key rule: non-empty, and keys
    longer than one BLAKE2s block are compressed first."""
    if not key:
        raise ValueError("PRF key must be non-empty")
    if len(key) > 32:
        key = hashlib.blake2s(key).digest()
    return key


class NativeBackend:
    """A loaded kernel: the cffi ``ffi``/``lib`` pair plus constructors."""

    __slots__ = ("ffi", "lib", "has_avx2")

    def __init__(self, ffi, lib):
        self.ffi = ffi
        self.lib = lib
        # Decided once per process: when the CPU runs AVX2, schedule
        # blocks also build the transposed lane layout and every stamp
        # routes through the 8-way `_t` entry points.
        self.has_avx2 = bool(lib.colibri_has_avx2())

    def schedule_block(self, keys, tag_len: int = L_HVF) -> "ScheduleBlock":
        return ScheduleBlock(self, keys, tag_len)

    def burst_stamper(self, tag_len: int = L_HVF, slots: int = 64) -> "BurstStamper":
        return BurstStamper(self, tag_len, slots)


class ScheduleBlock:
    """Contiguous native key schedules for one ordered key set.

    The native analogue of :func:`repro.dataplane.hvf.sigma_states`: one
    32-byte chaining state per key, laid out back to back so a single C
    call stamps every hop of a packet (:meth:`stamp_flat`), a whole
    burst (:meth:`stamp_many_flat`), or writes tags straight into a wire
    buffer (:meth:`stamp_into`).  Output is byte-identical to the
    hashlib path by construction and by test.

    Not thread-safe (the output scratch buffer is reused per call) —
    the same single-threaded-per-component discipline as every other
    data-plane object here; shard workers each build their own.
    """

    __slots__ = (
        "count", "tag_len", "_ffi", "_lib", "_scheds", "_scheds_t",
        "_scatter", "_out", "_view",
    )

    def __init__(self, backend: NativeBackend, keys, tag_len: int = L_HVF):
        if not 0 < tag_len <= MAC_LENGTH:
            raise ValueError(
                f"tag length must be in (0, {MAC_LENGTH}], got {tag_len}"
            )
        ffi = backend.ffi
        lib = backend.lib
        keys = tuple(keys)
        scheds = ffi.new("uint32_t[]", 8 * len(keys))
        for index, key in enumerate(keys):
            key = _normalize_key(key)
            lib.colibri_b2s_key_schedule(key, len(key), MAC_LENGTH, scheds + 8 * index)
        self.count = len(keys)
        self.tag_len = tag_len
        self._ffi = ffi
        self._lib = lib
        self._scheds = scheds
        if backend.has_avx2:
            # The 8-way lane layout (see the C side): built once here at
            # install time so the per-packet stamps never gather.
            groups = (len(keys) + 7) // 8
            scheds_t = ffi.new("uint32_t[]", max(64, groups * 64))
            lib.colibri_b2s_transpose(scheds, len(keys), scheds_t)
        else:
            scheds_t = None
        self._scheds_t = scheds_t
        # What a BurstStamper plan should reference for this block —
        # matches the scatter entry point the stamper was built with.
        self._scatter = scheds_t if scheds_t is not None else scheds
        self._out = ffi.new("uint8_t[]", max(1, self.count * tag_len))
        self._view = ffi.buffer(self._out)

    def stamp_flat(self, message: bytes) -> bytes:
        """All per-key tags over ``message``, concatenated (one C call)."""
        if self._scheds_t is not None:
            self._lib.colibri_stamp_t(
                self._scheds_t, self.count, message, len(message),
                self._out, self.tag_len,
            )
        else:
            self._lib.colibri_stamp(
                self._scheds, self.count, message, len(message),
                self._out, self.tag_len,
            )
        return self._view[:]

    def stamp_into(self, message: bytes, out) -> None:
        """Stamp all per-key tags directly at ``out`` (a ``uint8_t *``
        into a caller-owned buffer) — the zero-copy wire path."""
        if self._scheds_t is not None:
            self._lib.colibri_stamp_t(
                self._scheds_t, self.count, message, len(message),
                out, self.tag_len,
            )
        else:
            self._lib.colibri_stamp(
                self._scheds, self.count, message, len(message),
                out, self.tag_len,
            )

    def stamp_many_flat(self, messages, message_len: int, count: int) -> bytes:
        """Tags for ``count`` fixed-size messages packed back to back.

        ``messages`` is any buffer of ``count * message_len`` bytes;
        the result is message-major: packet p's tags occupy
        ``[p*count_keys*tag_len, (p+1)*count_keys*tag_len)``.
        """
        ffi = self._ffi
        row = self.count * self.tag_len
        out = ffi.new("uint8_t[]", max(1, count * row))
        if self._scheds_t is not None:
            self._lib.colibri_stamp_many_t(
                self._scheds_t,
                self.count,
                ffi.from_buffer(messages),
                message_len,
                count,
                out,
                self.tag_len,
            )
        else:
            self._lib.colibri_stamp_many(
                self._scheds,
                self.count,
                ffi.from_buffer(messages),
                message_len,
                count,
                out,
                self.tag_len,
            )
        return ffi.buffer(out)[:]

    def pointer(self, ffi_buffer) -> object:
        """A ``uint8_t *`` to the start of a writable Python buffer,
        for :meth:`stamp_into` pointer arithmetic."""
        return self._ffi.cast("uint8_t *", self._ffi.from_buffer(ffi_buffer))

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Constant-time check of ``tag`` under the *first* schedule —
        the router's σ-cache entries hold exactly one key."""
        return (
            self._lib.colibri_verify(
                self._scheds, message, len(message), tag, len(tag)
            )
            == 1
        )


class BurstStamper:
    """Scatter plan for stamping one *mixed* burst with a single C call.

    :meth:`ScheduleBlock.stamp_many_flat` amortizes the Python->C
    boundary only for bursts addressed to one reservation; this is the
    general form.  The caller's per-packet loop records each packet's
    plan directly into the exposed cdata arrays — ``scheds[p]`` (the
    packet's version's :attr:`ScheduleBlock._scatter` block),
    ``counts[p]`` (its hop count), ``offsets[p]`` (where its tags go) —
    and appends its Eq. (6) message to :attr:`messages`; one
    ``colibri_stamp_scatter`` call then stamps every packet of the
    burst.  ``offsets`` are byte offsets relative to the output base:
    arena slot positions on the zero-copy wire path
    (:meth:`stamp_into`), a running row cursor on the object path
    (:meth:`stamp_flat`).

    The arrays are plain attributes rather than an ``add()`` method on
    purpose: the gateway's burst loop is the hottest Python in the
    repository, and a per-packet method call would give back a measurable
    slice of what the single C call saves.  Not thread-safe (the plan
    arrays and output scratch are reused per burst) — the same
    single-threaded-per-component discipline as :class:`ScheduleBlock`.
    """

    __slots__ = (
        "tag_len", "scheds", "counts", "offsets", "messages",
        "_ffi", "_lib", "_scatter_fn", "_capacity", "_out", "_out_size",
    )

    def __init__(self, backend: NativeBackend, tag_len: int = L_HVF, slots: int = 64):
        if not 0 < tag_len <= MAC_LENGTH:
            raise ValueError(
                f"tag length must be in (0, {MAC_LENGTH}], got {tag_len}"
            )
        self._ffi = backend.ffi
        self._lib = backend.lib
        # ScheduleBlock._scatter pointers built by the same backend use
        # the layout this entry point expects, so the pairing is always
        # consistent.
        self._scatter_fn = (
            backend.lib.colibri_stamp_scatter_t
            if backend.has_avx2
            else backend.lib.colibri_stamp_scatter
        )
        self.tag_len = tag_len
        self._capacity = 0
        self._out = None
        self._out_size = 0
        self.messages = bytearray()
        self.reserve(max(1, slots))

    def reserve(self, capacity: int) -> None:
        """Grow the plan arrays to hold ``capacity`` packets (never
        shrinks; reallocation invalidates previously written plans)."""
        if capacity > self._capacity:
            ffi = self._ffi
            self.scheds = ffi.new("uint32_t *[]", capacity)
            self.counts = ffi.new("int32_t[]", capacity)
            self.offsets = ffi.new("int64_t[]", capacity)
            self._capacity = capacity

    def pointer(self, writable_buffer) -> object:
        """A ``uint8_t *`` base for :meth:`stamp_into` (e.g. an arena)."""
        return self._ffi.cast("uint8_t *", self._ffi.from_buffer(writable_buffer))

    def stamp_into(self, npkts: int, message_len: int, out) -> None:
        """Stamp the planned burst: packet p's tags land at
        ``out + offsets[p]`` (one C call for the whole burst)."""
        self._scatter_fn(
            self.scheds,
            self.counts,
            self._ffi.from_buffer(self.messages),
            message_len,
            npkts,
            out,
            self.offsets,
            self.tag_len,
        )

    def stamp_flat(self, npkts: int, message_len: int, size: int) -> bytes:
        """Stamp the planned burst into scratch and return it as one
        ``bytes`` of ``size`` total tag bytes — packet p's row sits at
        ``offsets[p]``, ready for zero-copy ``HvfVector`` windows."""
        if size > self._out_size:
            self._out = self._ffi.new("uint8_t[]", max(1, size))
            self._out_size = max(1, size)
        self.stamp_into(npkts, message_len, self._out)
        return self._ffi.buffer(self._out, size)[:]
