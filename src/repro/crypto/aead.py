"""Authenticated encryption with associated data (AEAD).

HopAuths are returned to the source AS "over a channel secured through
authenticated encryption with associated data" (Eq. 5):
``AS_i -> AS_0 : AEAD_{K_{AS_i -> AS_0}}(sigma_i)``.

We build AEAD from the library PRF in an encrypt-then-MAC construction:

* a keystream is derived per message from ``(key, nonce)`` and XORed with
  the plaintext (a stream cipher in counter mode);
* a MAC over ``nonce || associated_data || ciphertext`` authenticates the
  whole message under a MAC subkey derived from the same key.

The nonce is chosen randomly per seal and carried with the ciphertext, so
callers only manage the shared DRKey.
"""

from __future__ import annotations

import os

from repro.crypto.mac import constant_time_equal, mac
from repro.crypto.prf import prf
from repro.errors import AeadError

NONCE_LENGTH = 12
TAG_LENGTH = 16

_ENC_LABEL = b"colibri-aead-enc"
_MAC_LABEL = b"colibri-aead-mac"


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Derive ``length`` pseudo-random bytes from ``(key, nonce)``."""
    enc_key = prf(key, _ENC_LABEL)
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(prf(enc_key, nonce + counter.to_bytes(8, "big")))
        counter += 1
    return b"".join(blocks)[:length]


def aead_seal(key: bytes, plaintext: bytes, associated_data: bytes = b"") -> bytes:
    """Encrypt and authenticate ``plaintext``.

    Returns ``nonce || ciphertext || tag``; the associated data is
    authenticated but not transmitted (the caller reconstructs it).
    """
    nonce = os.urandom(NONCE_LENGTH)
    stream = _keystream(key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    mac_key = prf(key, _MAC_LABEL)
    tag = mac(mac_key, nonce + associated_data + ciphertext)
    return nonce + ciphertext + tag


def aead_open(key: bytes, sealed: bytes, associated_data: bytes = b"") -> bytes:
    """Verify and decrypt a message produced by :func:`aead_seal`.

    Raises :class:`AeadError` if the message is truncated or the tag does
    not verify (tampering, wrong key, or wrong associated data).
    """
    if len(sealed) < NONCE_LENGTH + TAG_LENGTH:
        raise AeadError(f"sealed message too short: {len(sealed)} bytes")
    nonce = sealed[:NONCE_LENGTH]
    ciphertext = sealed[NONCE_LENGTH:-TAG_LENGTH]
    tag = sealed[-TAG_LENGTH:]
    mac_key = prf(key, _MAC_LABEL)
    expected = mac(mac_key, nonce + associated_data + ciphertext)
    if not constant_time_equal(expected, tag):
        raise AeadError("AEAD tag verification failed")
    stream = _keystream(key, nonce, len(ciphertext))
    return bytes(c ^ s for c, s in zip(ciphertext, stream))
