"""Message-authentication codes with optional truncation.

Colibri authenticates three kinds of objects with MACs (§4.5):

* SegR tokens — Eq. (3): ``MAC_{K_i}(ResInfo || (In_i, Eg_i))`` truncated
  to the first ``l_hvf`` bytes;
* HopAuths — Eq. (4): the same construction over ResInfo, EERInfo and the
  interface pair, **untruncated**, because the HopAuth doubles as a secret
  per-reservation key;
* per-packet HVFs — Eq. (6): ``MAC_{sigma_i}(Ts || PktSize)`` truncated to
  ``l_hvf`` bytes.

This module provides the MAC, its truncation, constant-time comparison
(to avoid timing side channels on the 4-byte tags), and a verify helper.
"""

from __future__ import annotations

import hmac

from repro.constants import L_HVF, MAC_LENGTH
from repro.crypto.prf import prf, prf_context
from repro.errors import CryptoError, MacVerificationError


# The default truncation width every hot-path caller uses is validated
# once at import; per-packet calls then only re-validate non-default
# lengths (see KeyedMacContext.truncated).
if not 0 < L_HVF <= MAC_LENGTH:  # pragma: no cover - import-time sanity
    raise ValueError(
        f"L_HVF must be in (0, {MAC_LENGTH}], got {L_HVF}"
    )


def mac(key: bytes, data: bytes) -> bytes:
    """Full-width (16-byte) MAC over ``data`` under ``key``."""
    tag = prf(key, data)
    if len(tag) != MAC_LENGTH:
        raise CryptoError(
            f"PRF produced a {len(tag)}-byte tag, expected {MAC_LENGTH}"
        )
    return tag


def truncated_mac(key: bytes, data: bytes, length: int = L_HVF) -> bytes:
    """MAC truncated to the first ``length`` bytes (Eq. 3 / Eq. 6).

    The paper argues the short lifetime of reservations makes 4-byte tags
    safe despite brute-force reuse in principle (§4.5).
    """
    if not 0 < length <= MAC_LENGTH:
        raise ValueError(f"truncation length must be in (0, {MAC_LENGTH}], got {length}")
    return mac(key, data)[:length]


class KeyedMacContext:
    """Prehashed MAC state: one key schedule amortized over many messages.

    The paper's DPDK prototype amortizes AES key expansion across packets;
    this is the keyed-BLAKE2s counterpart.  The batch fast paths (gateway
    HVF stamping, router σ-cache hits) create one context per key and
    clone it per message, replacing the per-call key scheduling inside
    :func:`mac`.  Results are byte-identical to :func:`mac` /
    :func:`truncated_mac` — the context caches only the key schedule,
    never message state, so it is safe to share within one component.
    """

    __slots__ = ("state",)

    def __init__(self, key: bytes):
        #: The keyed hash state.  Clone-only: callers in hot loops may
        #: read it directly but must ``.copy()`` before updating.
        self.state = prf_context(key)

    def mac(self, data: bytes) -> bytes:
        """Full-width MAC, equal to ``mac(key, data)``."""
        state = self.state.copy()
        state.update(data)
        return state.digest()

    def truncated(self, data: bytes, length: int = L_HVF) -> bytes:
        """Truncated MAC, equal to ``truncated_mac(key, data, length)``.

        The default width is validated at module import; only explicit
        non-default lengths pay the range check here, keeping the
        ``ValueError`` contract without a per-packet branch pair.
        """
        if length != L_HVF and not 0 < length <= MAC_LENGTH:
            raise ValueError(
                f"truncation length must be in (0, {MAC_LENGTH}], got {length}"
            )
        state = self.state.copy()
        state.update(data)
        return state.digest()[:length]

    def verify_truncated(self, data: bytes, tag: bytes) -> bool:
        """Constant-time check of a (possibly truncated) tag."""
        state = self.state.copy()
        state.update(data)
        return constant_time_equal(state.digest()[: len(tag)], tag)


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe tag comparison."""
    return hmac.compare_digest(a, b)


def verify_mac(key: bytes, data: bytes, tag: bytes) -> None:
    """Recompute the (possibly truncated) MAC and compare.

    Raises :class:`MacVerificationError` on mismatch — the router drops
    such packets (§4.6).
    """
    expected = mac(key, data)[: len(tag)]
    if not constant_time_equal(expected, tag):
        raise MacVerificationError(
            f"MAC mismatch: got {tag.hex()}, expected {expected.hex()}"
        )
