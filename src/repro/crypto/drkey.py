"""DRKey: dynamically-recreatable symmetric keys (§2.3, Eq. 1).

Each AS *A* holds a secret value ``K_A``.  The AS-level key shared with
another AS *B* is derived on the fly:

    K_{A->B} = PRF_{K_A}(B)

The arrow marks the asymmetry: *A* derives the key instantly from its
secret value; *B* must fetch it from *A*'s key server once per validity
period (:mod:`repro.crypto.keyserver`).  Host-level keys are derived from
the AS-level key by a further PRF step, as footnote 2 of the paper notes.

Secret values rotate: a :class:`DrkeySecret` is bound to an epoch of
``DRKEY_VALIDITY`` seconds, and a :class:`DrkeyDeriver` manages the
rotation so keys derived in one epoch verify only within it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.constants import DRKEY_VALIDITY
from repro.crypto.prf import prf, random_key
from repro.util.clock import Clock

EntityId = Union[bytes, str, int]


def encode_entity(entity: EntityId) -> bytes:
    """Canonical byte encoding of an AS or host identifier.

    Accepts raw bytes, strings (e.g. ``'1-ff00:0:110'``), integers, or any
    object exposing a ``packed`` bytes attribute (like
    :class:`repro.topology.addresses.IsdAs`).
    """
    packed = getattr(entity, "packed", None)
    if packed is not None:
        return bytes(packed)
    if isinstance(entity, bytes):
        return entity
    if isinstance(entity, str):
        return entity.encode("utf-8")
    if isinstance(entity, int):
        return entity.to_bytes(8, "big")
    raise TypeError(f"cannot encode entity of type {type(entity).__name__}")


def derive_as_key(secret_value: bytes, remote: EntityId) -> bytes:
    """Eq. (1): the AS-level key ``K_{A->B}`` from A's secret value."""
    return prf(secret_value, b"as|" + encode_entity(remote))


def derive_host_key(as_key: bytes, host: EntityId, protocol: bytes = b"colibri") -> bytes:
    """Protocol- and host-specific key below ``K_{A->B}`` (footnote 2)."""
    return prf(as_key, b"host|" + protocol + b"|" + encode_entity(host))


@dataclass(frozen=True)
class DrkeySecret:
    """An epoch-bound AS secret value.

    ``epoch`` is the integer index ``floor(creation_time / DRKEY_VALIDITY)``;
    keys derived from this secret are valid for that epoch only.
    """

    value: bytes
    epoch: int

    @property
    def not_before(self) -> float:
        return self.epoch * DRKEY_VALIDITY

    @property
    def not_after(self) -> float:
        return (self.epoch + 1) * DRKEY_VALIDITY

    def covers(self, when: float) -> bool:
        """Whether ``when`` falls inside this secret's validity epoch."""
        return self.not_before <= when < self.not_after


class DrkeyDeriver:
    """Manages an AS's secret values across epochs and derives keys.

    The same object serves both roles of Eq. (1): the fast side (deriving
    ``K_{A->B}`` from the local secret value) and, combined with a
    :class:`~repro.crypto.keyserver.KeyServer`, the slow side (answering
    fetches from remote ASes).
    """

    def __init__(self, local_as: EntityId, clock: Clock, seed: bytes = None):
        self.local_as = local_as
        self.clock = clock
        # A master seed lets epochs rotate deterministically, so two
        # components of the same AS (CServ, router, gateway) can be built
        # independently yet derive identical keys.
        self._master = seed if seed is not None else random_key()
        self._secrets: dict[int, DrkeySecret] = {}

    def _epoch_of(self, when: float) -> int:
        return int(when // DRKEY_VALIDITY)

    def secret_for(self, when: float = None) -> DrkeySecret:
        """The secret value covering time ``when`` (default: now)."""
        if when is None:
            when = self.clock.now()
        epoch = self._epoch_of(when)
        secret = self._secrets.get(epoch)
        if secret is None:
            value = prf(self._master, b"sv|" + epoch.to_bytes(8, "big"))
            secret = DrkeySecret(value=value, epoch=epoch)
            self._secrets[epoch] = secret
        return secret

    def as_key(self, remote: EntityId, when: float = None) -> bytes:
        """Derive ``K_{local->remote}`` for the epoch covering ``when``."""
        return derive_as_key(self.secret_for(when).value, remote)

    def host_key(
        self, remote: EntityId, host: EntityId, when: float = None, protocol: bytes = b"colibri"
    ) -> bytes:
        """Derive the host-level key under ``K_{local->remote}``."""
        return derive_host_key(self.as_key(remote, when), host, protocol)
