"""Cryptographic substrate: PRF, MAC, AEAD, and the DRKey infrastructure.

The paper's prototype uses AES-128 in CBC-MAC mode through AES-NI (§7.1).
This reproduction substitutes keyed BLAKE2s, which is available in the
standard library, has the same 16-byte output, and preserves every
property the protocol relies on: determinism, key-dependence, and
preimage/forgery resistance.  See DESIGN.md §2 for the substitution table.
"""

from repro.crypto.aead import aead_open, aead_seal
from repro.crypto.drkey import DrkeyDeriver, DrkeySecret, derive_as_key, derive_host_key
from repro.crypto.keyserver import KeyServer, KeyServerDirectory
from repro.crypto.mac import (
    KeyedMacContext,
    constant_time_equal,
    mac,
    truncated_mac,
    verify_mac,
)
from repro.crypto.prf import prf, prf_context, random_key

__all__ = [
    "prf",
    "prf_context",
    "random_key",
    "KeyedMacContext",
    "mac",
    "truncated_mac",
    "verify_mac",
    "constant_time_equal",
    "aead_seal",
    "aead_open",
    "DrkeySecret",
    "DrkeyDeriver",
    "derive_as_key",
    "derive_host_key",
    "KeyServer",
    "KeyServerDirectory",
]
