"""DRKey key servers and the fetch protocol (§2.3).

The slow side of DRKey: AS *B* cannot derive ``K_{A->B}`` itself, so it
requests the key from *A*'s key server.  In the real system that exchange
is protected by public-key cryptography and performed "ahead of time"
because keys live for about a day; here the directory plays the role of
the PKI-authenticated transport, and a per-requester cache reproduces the
prefetching behaviour.

Authorization matters: a key server must only hand ``K_{A->B}`` to *B*
itself, otherwise any AS could impersonate any source.  The directory
enforces that by passing the authenticated identity of the requester.
"""

from __future__ import annotations

from repro.crypto.drkey import DrkeyDeriver, EntityId, encode_entity
from repro.errors import KeyFetchError
from repro.util.clock import Clock


class KeyServer:
    """Serves AS-level DRKeys derived from the local AS's secret values."""

    def __init__(self, deriver: DrkeyDeriver):
        self.deriver = deriver
        self.fetch_count = 0  # observability: how often remotes hit us

    @property
    def local_as(self) -> EntityId:
        return self.deriver.local_as

    def fetch(self, requester: EntityId, when: float = None) -> bytes:
        """Return ``K_{local->requester}`` to the (authenticated) requester.

        The epoch is chosen from ``when`` (default: the server's clock),
        matching the prefetch pattern where *B* may ask for the key of the
        upcoming epoch before it starts.
        """
        self.fetch_count += 1
        return self.deriver.as_key(requester, when)


class KeyServerDirectory:
    """The reachability fabric between key servers.

    Stands in for the global PKI-protected fetch path.  Each AS registers
    its server; a remote AS calls :meth:`fetch_key` naming itself as the
    requester — the directory models the transport authenticating that
    identity (certificate check in the real system).

    Fetched keys are cached per ``(owner, requester, epoch)``; repeated
    lookups within an epoch never hit the remote server again, matching
    the "fetched ahead of time and only infrequently renewed" behaviour.
    """

    def __init__(self, clock: Clock):
        self.clock = clock
        self._servers: dict[bytes, KeyServer] = {}
        self._cache: dict[tuple[bytes, bytes, int], bytes] = {}

    def register(self, server: KeyServer) -> None:
        self._servers[encode_entity(server.local_as)] = server

    def fetch_key(self, owner: EntityId, requester: EntityId, when: float = None) -> bytes:
        """Fetch ``K_{owner->requester}`` on behalf of ``requester``."""
        if when is None:
            when = self.clock.now()
        owner_key = encode_entity(owner)
        server = self._servers.get(owner_key)
        if server is None:
            raise KeyFetchError(f"no key server registered for AS {owner!r}")
        epoch = server.deriver.secret_for(when).epoch
        cache_key = (owner_key, encode_entity(requester), epoch)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        key = server.fetch(requester, when)
        self._cache[cache_key] = key
        return key
