"""Colibri: a cooperative lightweight inter-domain bandwidth-reservation
infrastructure — a full Python reproduction of the CoNEXT 2021 paper.

Layered public API (see README.md for a quickstart):

* ``repro.app`` — end-host stack and one-call helpers;
* ``repro.sim`` — :class:`~repro.sim.scenario.ColibriNetwork`, the full
  per-AS deployment over any topology;
* ``repro.control`` / ``repro.dataplane`` / ``repro.admission`` — the
  CServ, gateway/router, and admission algorithms individually;
* ``repro.topology`` / ``repro.crypto`` / ``repro.packets`` — the
  SCION-style substrate: segments, DRKey, wire formats;
* ``repro.attacks`` / ``repro.baselines`` — adversaries of §5 and the
  IntServ/DiffServ comparison points.
"""

__version__ = "1.0.0"

from repro import constants, errors
from repro.app import ColibriSocket, EndHost, quick_network, reserve_and_send
from repro.sim import ColibriNetwork
from repro.topology import HostAddr, IsdAs

__all__ = [
    "constants",
    "errors",
    "ColibriNetwork",
    "EndHost",
    "ColibriSocket",
    "quick_network",
    "reserve_and_send",
    "IsdAs",
    "HostAddr",
    "__version__",
]
