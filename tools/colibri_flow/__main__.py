"""``python -m tools.colibri_flow`` entry point."""

from tools.colibri_flow.cli import main

if __name__ == "__main__":
    main()
