"""Whole-program model: modules, symbol tables, and name resolution.

A :class:`Project` is built once per run from every ``.py`` file under
the analyzed paths (plus, when analyzing a subtree of ``src/``, nothing
else — unresolved imports simply resolve to ``None`` and the rules fall
back to name heuristics).  Parsing goes through
:data:`tools.analysis_core.cache.GLOBAL_CACHE`, so a combined
lint-plus-flow run parses each file exactly once.

Qualified names ("qnames") are canonical strings:

* modules:    ``repro.dataplane.router``
* functions:  ``repro.crypto.mac.verify_mac``
* classes:    ``repro.dataplane.router.BorderRouter``
* methods:    ``repro.dataplane.router.BorderRouter._authenticate``
* nested:     ``repro.dataplane.shards._gateway_workload.<locals>.loop``
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from tools.analysis_core.cache import GLOBAL_CACHE
from tools.analysis_core.context import FileContext
from tools.analysis_core.engine import iter_python_files, relativize

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qname: str
    module: str
    ctx: FileContext
    node: ast.AST
    class_qname: Optional[str] = None
    parent_qname: Optional[str] = None  # enclosing function for nested defs
    params: List[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_method(self) -> bool:
        return self.class_qname is not None

    @property
    def is_nested(self) -> bool:
        return self.parent_qname is not None


@dataclass
class ClassInfo:
    """One class definition with its locally-resolvable base names."""

    qname: str
    module: str
    ctx: FileContext
    node: ast.ClassDef
    base_names: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` -> candidate class qnames, filled by the type pass.
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)


@dataclass
class GlobalBinding:
    """A module-level data binding (``NAME = <expr>`` at top level)."""

    module: str
    name: str
    node: ast.stmt
    value: Optional[ast.expr]


@dataclass
class ModuleInfo:
    name: str
    ctx: FileContext
    #: ``from a.b import c as d`` -> ``{"d": "a.b.c"}``
    imports: Dict[str, str] = field(default_factory=dict)
    #: ``import a.b as z`` -> ``{"z": "a.b"}``; ``import a.b`` -> ``{"a": "a"}``
    module_aliases: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    globals: Dict[str, GlobalBinding] = field(default_factory=dict)


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None




class Project:
    """All loaded modules plus cross-module name resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: bare method name -> every FunctionInfo defining it (fallback
        #: resolution when receiver types are unknown).
        self.method_index: Dict[str, List[FunctionInfo]] = {}

    # -- loading ------------------------------------------------------

    @classmethod
    def load_paths(cls, paths, root=None) -> "Project":
        project = cls()
        for file_path in iter_python_files(paths):
            rel = relativize(file_path, root)
            try:
                ctx = GLOBAL_CACHE.get(file_path, rel)
            except (OSError, SyntaxError, UnicodeDecodeError):
                continue  # the CLI reports these separately
            project.add_module(ctx)
        project.finish()
        return project

    @classmethod
    def load_sources(cls, sources: Dict[str, str]) -> "Project":
        """Build a project from in-memory ``{rel_path: source}`` (tests)."""
        project = cls()
        for rel_path, source in sources.items():
            project.add_module(GLOBAL_CACHE.parse(source, rel_path))
        project.finish()
        return project

    def add_module(self, ctx: FileContext) -> ModuleInfo:
        info = ModuleInfo(name=ctx.module_name, ctx=ctx)
        self.modules[info.name] = info
        self._collect_imports(info)
        self._collect_definitions(info)
        return info

    def finish(self) -> None:
        """Run passes that need every module present."""
        for module in self.modules.values():
            for cls_info in module.classes.values():
                for method in cls_info.methods.values():
                    self.method_index.setdefault(method.name, []).append(method)
        from tools.colibri_flow.typeinfer import infer_attribute_types

        infer_attribute_types(self)

    # -- collection ---------------------------------------------------

    def _collect_imports(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        info.module_aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a``.
                        head = alias.name.split(".")[0]
                        info.module_aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = self._from_base(info, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    info.imports[bound] = f"{base}.{alias.name}"

    @staticmethod
    def _from_base(info: ModuleInfo, node: ast.ImportFrom) -> Optional[str]:
        if not node.level:
            return node.module
        # Relative import: resolve against this module's package.
        parts = info.name.split(".")
        is_package = info.ctx.rel_path.endswith("__init__.py")
        drop = node.level - 1 if is_package else node.level
        if drop > len(parts):
            return None
        base_parts = parts[: len(parts) - drop] if drop else parts
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts) if base_parts else None

    def _collect_definitions(self, info: ModuleInfo) -> None:
        for node in info.ctx.tree.body:
            if isinstance(node, _FUNC_NODES):
                self._add_function(info, node, class_info=None, parent=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(info, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        info.globals[target.id] = GlobalBinding(
                            info.name, target.id, node, node.value
                        )
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                info.globals[node.target.id] = GlobalBinding(
                    info.name, node.target.id, node, node.value
                )

    def _add_function(self, info, node, class_info, parent) -> FunctionInfo:
        if class_info is not None:
            qname = f"{class_info.qname}.{node.name}"
        elif parent is not None:
            qname = f"{parent.qname}.<locals>.{node.name}"
        else:
            qname = f"{info.name}.{node.name}"
        args = node.args
        params = [arg.arg for arg in args.posonlyargs + args.args + args.kwonlyargs]
        fn = FunctionInfo(
            qname=qname,
            module=info.name,
            ctx=info.ctx,
            node=node,
            class_qname=class_info.qname if class_info else None,
            parent_qname=parent.qname if parent else None,
            params=params,
        )
        self.functions[qname] = fn
        if class_info is not None:
            class_info.methods[node.name] = fn
        elif parent is None:
            info.functions[node.name] = fn
        for child in ast.walk(node):
            if isinstance(child, _FUNC_NODES) and child is not node:
                if self._direct_parent_is(node, child):
                    self._add_function(info, child, class_info=None, parent=fn)
        return fn

    @staticmethod
    def _direct_parent_is(parent: ast.AST, child: ast.AST) -> bool:
        """Is ``child`` defined directly inside ``parent`` (not deeper)?"""
        for node in ast.walk(parent):
            if isinstance(node, _FUNC_NODES) and node is not parent:
                if child is node:
                    continue
                if any(sub is child for sub in ast.walk(node)):
                    return False
        return True

    def _add_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        cls_info = ClassInfo(
            qname=f"{info.name}.{node.name}",
            module=info.name,
            ctx=info.ctx,
            node=node,
            base_names=[
                name
                for name in (dotted_name(base) for base in node.bases)
                if name
            ],
        )
        info.classes[node.name] = cls_info
        self.classes[cls_info.qname] = cls_info
        for child in node.body:
            if isinstance(child, _FUNC_NODES):
                self._add_function(info, child, class_info=cls_info, parent=None)

    # -- resolution ---------------------------------------------------

    def resolve_name(self, module: ModuleInfo, dotted: str) -> Optional[str]:
        """Resolve a dotted name used inside ``module`` to a qname."""
        head, _, rest = dotted.partition(".")
        if head in module.imports:
            return self._chase(module.imports[head] + (f".{rest}" if rest else ""))
        if head in module.module_aliases:
            target = module.module_aliases[head]
            return self._chase(f"{target}.{rest}" if rest else target)
        return self._resolve_in(module, head, rest)

    def _resolve_in(
        self, module: ModuleInfo, head: str, rest: str, _depth: int = 0
    ) -> Optional[str]:
        """Resolve ``head(.rest)`` against one module's namespace."""
        if _depth > 8:
            return None
        if head in module.functions and not rest:
            return module.functions[head].qname
        if head in module.classes:
            cls_qname = module.classes[head].qname
            return f"{cls_qname}.{rest}" if rest else cls_qname
        if head in module.globals and not rest:
            return f"{module.name}.{head}"
        if head in module.imports:
            target = module.imports[head] + (f".{rest}" if rest else "")
            return self._chase(target, _depth + 1)
        if head in module.module_aliases:
            target = module.module_aliases[head]
            return self._chase(f"{target}.{rest}" if rest else target, _depth + 1)
        return None

    def _chase(self, full: str, _depth: int = 0) -> Optional[str]:
        """Canonicalize a fully-dotted target, following re-exports."""
        if _depth > 8:
            return None
        if full in self.modules:
            return full
        parts = full.split(".")
        # Longest module prefix wins.
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                module = self.modules[prefix]
                head = parts[cut]
                rest = ".".join(parts[cut + 1 :])
                resolved = self._resolve_in(module, head, rest, _depth + 1)
                if resolved is not None:
                    return resolved
                # Defined-but-unmodeled name: keep the dotted form so
                # callers can at least identify the module.
                return full
        return full if _is_external_root(parts[0]) else None

    # -- lookups ------------------------------------------------------

    def function(self, qname: Optional[str]) -> Optional[FunctionInfo]:
        if qname is None:
            return None
        return self.functions.get(qname)

    def class_info(self, qname: Optional[str]) -> Optional[ClassInfo]:
        if qname is None:
            return None
        return self.classes.get(qname)

    def mro(self, cls_qname: str) -> List[ClassInfo]:
        """Locally-resolvable ancestors, nearest first (approximate MRO)."""
        seen: Set[str] = set()
        order: List[ClassInfo] = []
        stack = [cls_qname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            order.append(info)
            module = self.modules.get(info.module)
            for base_name in info.base_names:
                resolved = (
                    self.resolve_name(module, base_name) if module else None
                )
                if resolved:
                    stack.append(resolved)
        return order

    def lookup_method(self, cls_qname: str, method: str) -> Optional[FunctionInfo]:
        for info in self.mro(cls_qname):
            if method in info.methods:
                return info.methods[method]
        return None

    def unique_method(self, name: str) -> Optional[FunctionInfo]:
        """The single project-wide method with this name, if unambiguous."""
        candidates = self.method_index.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None


#: Stdlib / third-party roots we keep as dotted names (so rules can
#: pattern-match ``time.monotonic`` etc.) instead of dropping them.
_EXTERNAL_ROOTS = frozenset(
    {
        "time",
        "datetime",
        "random",
        "secrets",
        "os",
        "uuid",
        "multiprocessing",
        "concurrent",
        "threading",
        "hashlib",
        "hmac",
        "struct",
        "json",
        "math",
        "itertools",
        "functools",
        "collections",
        "types",
        "dataclasses",
    }
)


def _is_external_root(root: str) -> bool:
    return root in _EXTERNAL_ROOTS
