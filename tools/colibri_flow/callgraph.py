"""Project call graph with per-call-site target resolution.

Resolution tries, in order:

1. the whole ``func`` chain as a dotted name through the module's
   import/alias tables (handles ``verify_mac(...)``,
   ``mac.verify_mac(...)``, ``ClassName.method(...)``, and stdlib calls
   like ``time.monotonic()`` which resolve to *external* dotted names);
2. receiver typing via :mod:`tools.colibri_flow.typeinfer` plus an
   approximate-MRO method lookup (handles ``self.monitor.check(...)``);
3. a unique-name fallback: if exactly one class in the whole project
   defines the method and the name isn't a generic container/protocol
   method, assume that's the callee.

Nested function bodies are *not* part of their parent's call sites —
each nested def is its own graph node; closure-style execution (a
worker calling a callback returned by a factory) is modeled by the
CF004 rule pulling every visited function's nested defs into the
closure.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.colibri_flow.project import FunctionInfo, Project, dotted_name
from tools.colibri_flow.typeinfer import ExprTyper

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Method names too generic for the unique-name fallback: matching one
#: of these against an arbitrary project class would wire ``list.append``
#: and friends into the graph.
_GENERIC_METHODS = frozenset(
    {
        "append", "add", "get", "pop", "update", "items", "keys", "values",
        "copy", "clear", "extend", "insert", "remove", "sort", "join",
        "split", "strip", "encode", "decode", "format", "read", "write",
        "close", "flush", "count", "index", "setdefault", "popitem",
        "discard", "hexdigest", "digest", "isoformat", "timestamp",
        "startswith", "endswith", "lower", "upper", "replace", "reset",
        "run", "start", "stop", "finish", "send", "put", "submit", "map",
    }
)


@dataclass
class CallTargets:
    """Everything we know about one call site."""

    name: str = ""  # syntactic terminal name: ``verify_mac``, ``map`` …
    functions: Set[str] = field(default_factory=set)
    classes: Set[str] = field(default_factory=set)
    external: Optional[str] = None  # dotted external name, e.g. ``time.time``


def iter_own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function defs."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNC_NODES):
                continue
            stack.append(child)


class CallGraph:
    def __init__(self, project: Project) -> None:
        self.project = project
        self.edges: Dict[str, Set[str]] = {}
        self._targets: Dict[Tuple[str, int], CallTargets] = {}
        self.typers: Dict[str, ExprTyper] = {}
        self._own_nodes: Dict[str, List[ast.AST]] = {}
        self._calls: Dict[str, List[ast.Call]] = {}
        self._parents: Dict[str, Dict[int, ast.AST]] = {}
        for fn in list(project.functions.values()):
            self._analyze_function(fn)

    # -- queries ------------------------------------------------------

    def targets_for(self, fn: FunctionInfo, call: ast.Call) -> CallTargets:
        return self._targets.get((fn.qname, id(call)), CallTargets())

    def own_nodes(self, fn: FunctionInfo) -> List[ast.AST]:
        """Cached :func:`iter_own_nodes` — the fixpoint engines re-walk
        function bodies every round, so walk each body once."""
        nodes = self._own_nodes.get(fn.qname)
        if nodes is None:
            nodes = list(iter_own_nodes(fn.node))
            self._own_nodes[fn.qname] = nodes
        return nodes

    def parent_map(self, fn: FunctionInfo) -> Dict[int, ast.AST]:
        """Cached child-id -> parent map over a function's own nodes."""
        parents = self._parents.get(fn.qname)
        if parents is None:
            parents = {}
            for node in self.own_nodes(fn):
                for child in ast.iter_child_nodes(node):
                    parents[id(child)] = node
            self._parents[fn.qname] = parents
        return parents

    def calls_in(self, fn: FunctionInfo) -> List[ast.Call]:
        calls = self._calls.get(fn.qname)
        if calls is None:
            calls = [
                node for node in self.own_nodes(fn) if isinstance(node, ast.Call)
            ]
            self._calls[fn.qname] = calls
        return calls

    def callees(self, qname: str) -> Set[str]:
        return self.edges.get(qname, set())

    def nested_functions(self, qname: str) -> List[FunctionInfo]:
        prefix = f"{qname}.<locals>."
        return [
            fn
            for name, fn in self.project.functions.items()
            if name.startswith(prefix)
        ]

    # -- construction -------------------------------------------------

    def _analyze_function(self, fn: FunctionInfo) -> None:
        project = self.project
        module = project.modules.get(fn.module)
        if module is None:
            return
        self_class = project.class_info(fn.class_qname)
        typer = ExprTyper(project, module, fn, self_class)
        self.typers[fn.qname] = typer
        aliases = self._local_callables(fn, typer)
        edges = self.edges.setdefault(fn.qname, set())
        for call in self.calls_in(fn):
            targets = self._resolve(fn, typer, call, aliases)
            self._targets[(fn.qname, id(call))] = targets
            edges |= targets.functions
            for cls_qname in targets.classes:
                init = project.lookup_method(cls_qname, "__init__")
                if init is not None:
                    edges.add(init.qname)

    def _local_callables(self, fn, typer: ExprTyper) -> Dict[str, Set[str]]:
        """Bound-method aliases: ``validate = router.validate_batch``.

        Hot loops in this codebase hoist method lookups into locals; a
        later ``validate(burst)`` call must still resolve to the method,
        or CF001 would miss exactly the sites the fast path hides.
        """
        project = self.project
        module = project.modules[fn.module]
        aliases: Dict[str, Set[str]] = {}
        for node in iter_own_nodes(fn.node):
            if not isinstance(node, ast.Assign) or isinstance(node.value, ast.Call):
                continue
            value = node.value
            resolved: Set[str] = set()
            dotted = dotted_name(value)
            if dotted is not None and not dotted.startswith("self."):
                qname = project.resolve_name(module, dotted)
                if qname in project.functions:
                    resolved.add(qname)
            if not resolved and isinstance(value, ast.Attribute):
                receiver_classes = typer.classes_of(value.value)
                for cls_qname in receiver_classes:
                    method = project.lookup_method(cls_qname, value.attr)
                    if method is not None:
                        resolved.add(method.qname)
                if (
                    not receiver_classes
                    and value.attr not in _GENERIC_METHODS
                ):
                    # Closure receivers (``router`` captured from the
                    # enclosing workload factory) defeat the typer; a
                    # project-unique method name still pins the callee.
                    fallback = project.unique_method(value.attr)
                    if fallback is not None:
                        resolved.add(fallback.qname)
            if not resolved:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases.setdefault(target.id, set()).update(resolved)
        return aliases

    def _resolve(
        self, fn, typer: ExprTyper, call: ast.Call, aliases=None
    ) -> CallTargets:
        project = self.project
        module = project.modules[fn.module]
        func = call.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else ""
        )
        targets = CallTargets(name=name)

        dotted = dotted_name(func)
        if dotted is not None and not dotted.startswith("self."):
            resolved = project.resolve_name(module, dotted)
            if resolved is not None:
                if resolved in project.functions:
                    targets.functions.add(resolved)
                    return targets
                if resolved in project.classes:
                    targets.classes.add(resolved)
                    return targets
                if resolved not in project.modules:
                    # Dotted but unmodeled: keep as external for
                    # pattern-matching rules (``time.monotonic`` …).
                    targets.external = resolved
                    # Fall through: a typed receiver may still win.

        if isinstance(func, ast.Attribute):
            receiver_classes = typer.classes_of(func.value)
            for cls_qname in receiver_classes:
                method = project.lookup_method(cls_qname, name)
                if method is not None:
                    targets.functions.add(method.qname)
            if targets.functions:
                targets.external = None
                return targets
            if not receiver_classes and name not in _GENERIC_METHODS:
                fallback = project.unique_method(name)
                if fallback is not None:
                    targets.functions.add(fallback.qname)
                    targets.external = None
                    return targets
        elif isinstance(func, ast.Name) and targets.external is None:
            if aliases and name in aliases:
                targets.functions |= aliases[name]
                return targets
            # Possibly a nested function defined in this same body.
            nested = project.functions.get(f"{fn.qname}.<locals>.{name}")
            if nested is not None:
                targets.functions.add(nested.qname)
        return targets
