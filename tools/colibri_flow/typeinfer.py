"""Lightweight local type inference: which classes can an expression be?

The call graph needs receiver types for ``obj.method(...)`` calls.  We
infer a *set of candidate class qnames* per expression from three cheap
signals, which is all this codebase's substrate-object style needs:

* parameter annotations (``monitor: DeterministicMonitor``, with
  ``Optional[X]`` / ``X | None`` unwrapped);
* constructor assignments (``x = BorderRouter(...)``,
  ``self.cache = SigmaCache(...)`` inside any method);
* ``or``-fallbacks (``clock = clock or SimClock()`` unions both arms).

No flow sensitivity, no generics, no unification — unknown stays
unknown and the call-graph falls back to unique-method-name matching.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

from tools.colibri_flow.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    dotted_name,
)


def annotation_classes(
    project: Project, module: ModuleInfo, annotation: Optional[ast.expr]
) -> Set[str]:
    """Candidate class qnames named by a type annotation."""
    if annotation is None:
        return set()
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotation: resolve the bare dotted text.
        resolved = project.resolve_name(module, annotation.value.strip())
        return {resolved} if resolved in project.classes else set()
    if isinstance(annotation, ast.Subscript):
        # Optional[X] / List[X] / Dict[K, V]: only Optional keeps the arg.
        base = dotted_name(annotation.value) or ""
        if base.split(".")[-1] == "Optional":
            return annotation_classes(project, module, annotation.slice)
        return set()
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return annotation_classes(
            project, module, annotation.left
        ) | annotation_classes(project, module, annotation.right)
    name = dotted_name(annotation)
    if name in (None, "None"):
        return set()
    resolved = project.resolve_name(module, name)
    return {resolved} if resolved in project.classes else set()


class ExprTyper:
    """Types expressions inside one function body."""

    def __init__(
        self,
        project: Project,
        module: ModuleInfo,
        fn: FunctionInfo,
        self_class: Optional[ClassInfo],
    ) -> None:
        self.project = project
        self.module = module
        self.fn = fn
        self.self_class = self_class
        self.locals: Dict[str, Set[str]] = {}
        self._seed_params()
        self._scan_assignments()

    def _seed_params(self) -> None:
        args = self.fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            classes = annotation_classes(self.project, self.module, arg.annotation)
            if classes:
                self.locals[arg.arg] = set(classes)

    def _scan_assignments(self) -> None:
        # Two sweeps so ``b = a`` after ``a = Clock()`` resolves.
        for _ in range(2):
            for node in ast.walk(self.fn.node):
                if isinstance(node, ast.Assign):
                    classes = self.classes_of(node.value)
                    if not classes:
                        continue
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.locals.setdefault(target.id, set()).update(classes)
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    classes = annotation_classes(
                        self.project, self.module, node.annotation
                    )
                    if node.value is not None:
                        classes = classes | self.classes_of(node.value)
                    if classes:
                        self.locals.setdefault(node.target.id, set()).update(classes)
                elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                    classes = self.classes_of(node.context_expr)
                    if classes and isinstance(node.optional_vars, ast.Name):
                        self.locals.setdefault(
                            node.optional_vars.id, set()
                        ).update(classes)

    def classes_of(self, expr: ast.expr) -> Set[str]:
        if isinstance(expr, ast.Name):
            found = set(self.locals.get(expr.id, ()))
            if expr.id == "self" and self.self_class is not None:
                found.add(self.self_class.qname)
            return found
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name is None:
                return set()
            resolved = self.project.resolve_name(self.module, name)
            if resolved in self.project.classes:
                return {resolved}
            return set()
        if isinstance(expr, ast.Attribute):
            # ``self.attr`` via the class attribute-type table.
            base = expr.value
            if (
                isinstance(base, ast.Name)
                and base.id == "self"
                and self.self_class is not None
            ):
                return set(self.self_class.attr_types.get(expr.attr, ()))
            # ``obj.attr`` via the typed base's attribute table.
            found: Set[str] = set()
            for cls_qname in self.classes_of(base):
                for ancestor in self.project.mro(cls_qname):
                    found |= set(ancestor.attr_types.get(expr.attr, ()))
            return found
        if isinstance(expr, ast.BoolOp):
            found = set()
            for value in expr.values:
                found |= self.classes_of(value)
            return found
        if isinstance(expr, ast.IfExp):
            return self.classes_of(expr.body) | self.classes_of(expr.orelse)
        if isinstance(expr, ast.NamedExpr):
            return self.classes_of(expr.value)
        return set()


def infer_attribute_types(project: Project) -> None:
    """Fill every class's ``attr_types`` from its method bodies.

    Two rounds so ``self.a = SomeClass(); self.b = self.a.helper`` and
    cross-class attribute chains settle.
    """
    for _ in range(2):
        for cls_info in project.classes.values():
            module = project.modules.get(cls_info.module)
            if module is None:
                continue
            # Class-level annotations (dataclass fields).
            for stmt in cls_info.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    classes = annotation_classes(project, module, stmt.annotation)
                    if classes:
                        cls_info.attr_types.setdefault(
                            stmt.target.id, set()
                        ).update(classes)
            for method in cls_info.methods.values():
                typer = ExprTyper(project, module, method, cls_info)
                for node in ast.walk(method.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    classes = typer.classes_of(node.value)
                    if not classes:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            cls_info.attr_types.setdefault(
                                target.attr, set()
                            ).update(classes)
