"""colibri-flow — interprocedural protocol-invariant analyzer.

Where colibri-lint (``tools/colibri_lint``) checks one file at a time,
colibri-flow loads the whole ``src/repro`` tree, builds a call graph and
per-function data-flow summaries, and proves four properties the Colibri
paper's protocol depends on but no single-file check can see:

* **CF001 verification-flow** — a value returned from a MAC / HVF
  verification helper must reach a forwarding decision on every path
  (the interprocedural generalization of lint rule CL007);
* **CF002 determinism taint** — wall-clock and entropy sources must not
  flow into protocol state outside the sanctioned clock module;
* **CF003 obs-guard discipline** — instrumentation calls through an
  optional observability context must be dominated by an
  ``obs is not None``-style guard (the 0%-overhead-when-disabled
  contract);
* **CF004 shard process-safety** — functions submitted to the shard
  executor must stay shared-nothing: module-level callables reaching no
  mutable module globals (paper §7.1's linear multi-core scaling).

Pure stdlib, layered on :mod:`tools.analysis_core` (one AST parse cache,
one finding/baseline/suppression format shared with colibri-lint).

Run it::

    python -m colibri_flow src/repro            # or: make flow
    python -m colibri_flow --list-rules
    python -m colibri_flow --format json src/repro

Suppress a finding with ``# colibri-flow: disable=CF002`` on the line or
``# colibri-flow: disable-file=CF004`` anywhere in the file.
"""

from __future__ import annotations

from tools.colibri_flow.api import analyze_paths, analyze_sources

__all__ = ["analyze_paths", "analyze_sources"]
