"""CF003 — instrumentation must be guarded by ``obs is not None``.

The observability layer's contract (ROADMAP: "0% overhead when
disabled") is that every component holds an *optional* ``ObsContext``
and dereferences it only behind a None-guard.  A single unguarded
``self.obs.tracer.start(...)`` turns every disabled-observability run
into an ``AttributeError`` — or worse, forces callers to always enable
observability, silently repealing the contract.

What counts as an *optional subject* inside a function:

* any ``obs`` name or ``….obs`` attribute chain (the conventional
  context slot), unless the name was produced locally by
  ``ObsContext.create(...)`` / ``enable_observability(...)`` /
  ``run_health_scenario(...)`` — producers return fully-populated,
  non-None contexts;
* one optional link deeper: ``<obs>.journal``, ``<obs>.alerts`` and
  ``<obs>.sampler`` are Optional fields of the context itself (the
  sampler gates the wire-path sampling profiler, so an unguarded
  ``obs.sampler.tick()`` breaks sampling-disabled runs the same way);
* local aliases of either (``obs = self.obs``,
  ``journal = self.obs.journal``) — guarding the alias name guards the
  value.

A dereference *past* an optional subject must be dominated by a guard
on that exact chain text: an enclosing ``if <subject> is not None:`` (or
truthiness test), an ``and`` short-circuit, the else-branch of an
``is None`` test, a guarded ternary, or a preceding early exit
(``if <subject> is None: return/raise/continue``).  The ``repro/obs``
package itself — the machinery being guarded — is exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from tools.analysis_core.findings import Finding
from tools.colibri_flow.callgraph import iter_own_nodes
from tools.colibri_flow.project import FunctionInfo, dotted_name
from tools.colibri_flow.rules.base import FlowRule
from tools.colibri_flow.rules.cf001_verification_flow import build_parent_map

#: Call names whose result is a definitely-populated ObsContext.
PRODUCERS = frozenset({"create", "enable_observability", "run_health_scenario"})

#: Optional attributes *of* the context (beyond the context itself).
OPTIONAL_LINKS = frozenset({"journal", "alerts", "sampler"})


def _chain(expr: ast.expr) -> Optional[str]:
    return dotted_name(expr)


def _terminal_call_name(expr: ast.expr) -> str:
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
    return ""


class _FunctionView:
    """Alias/definite classification for one function body."""

    def __init__(self, fn: FunctionInfo) -> None:
        self.fn = fn
        self.definite: Set[str] = set()
        self.alias_obs: Set[str] = set()
        self.alias_leaf: Set[str] = set()
        self._scan()

    def _scan(self) -> None:
        for node in iter_own_nodes(self.fn.node):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            names = [
                target.id
                for target in node.targets
                if isinstance(target, ast.Name)
            ]
            tuple_names = [
                element.id
                for target in node.targets
                if isinstance(target, (ast.Tuple, ast.List))
                for element in target.elts
                if isinstance(element, ast.Name)
            ]
            if _terminal_call_name(value) in PRODUCERS:
                self.definite.update(names)
                self.definite.update(tuple_names)
                continue
            chain = _chain(value)
            if chain is None or not names:
                continue
            parts = chain.split(".")
            if parts[-1] == "obs" or chain in self.alias_obs:
                self.alias_obs.update(names)
            elif parts[-1] in OPTIONAL_LINKS and self._is_obs_prefix(
                ".".join(parts[:-1])
            ):
                self.alias_leaf.update(names)

    def _is_obs_prefix(self, text: str) -> bool:
        if not text or text in self.definite:
            return False
        return text.split(".")[-1] == "obs" or text in self.alias_obs

    def subject_kind(self, text: str) -> Optional[str]:
        """Is this chain text an optional obs subject?"""
        if text in self.definite:
            return None
        parts = text.split(".")
        if parts[-1] == "obs" or text in self.alias_obs:
            return "obs"
        if text in self.alias_leaf:
            return "leaf"
        if parts[-1] in OPTIONAL_LINKS and self._is_obs_prefix(
            ".".join(parts[:-1])
        ):
            return "leaf"
        return None


def _positive_guard(test: ast.expr, subject: str) -> bool:
    """Does this (true) condition establish ``subject is not None``?"""
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left = _chain(test.left)
        comparator = test.comparators[0]
        if (
            left == subject
            and isinstance(test.ops[0], ast.IsNot)
            and isinstance(comparator, ast.Constant)
            and comparator.value is None
        ):
            return True
    if _chain(test) == subject:
        return True  # truthiness: ``if obs:``
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_positive_guard(value, subject) for value in test.values)
    return False


def _negative_guard(test: ast.expr, subject: str) -> bool:
    """Does this (true) condition establish ``subject is None``-or-exit?

    Used for early exits and else-branches; ``or`` is sound here because
    the exit fires (the else runs) whenever *any* (no) operand holds.
    """
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        comparator = test.comparators[0]
        if (
            _chain(test.left) == subject
            and isinstance(test.ops[0], ast.Is)
            and isinstance(comparator, ast.Constant)
            and comparator.value is None
        ):
            return True
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        if _chain(test.operand) == subject:
            return True
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        return any(_negative_guard(value, subject) for value in test.values)
    return False


_TERMINAL = (ast.Return, ast.Raise, ast.Continue, ast.Break)


def _early_exit_guard(stmt: ast.stmt, subject: str) -> bool:
    return (
        isinstance(stmt, ast.If)
        and _negative_guard(stmt.test, subject)
        and not stmt.orelse
        and bool(stmt.body)
        and isinstance(stmt.body[-1], _TERMINAL)
    )


def is_guarded(node: ast.AST, subject: str, parents: Dict[int, ast.AST]) -> bool:
    current = node
    while True:
        parent = parents.get(id(current))
        if parent is None:
            return False
        if isinstance(parent, ast.BoolOp) and isinstance(parent.op, ast.And):
            for value in parent.values:
                if value is current:
                    break
                if _positive_guard(value, subject):
                    return True
        if isinstance(parent, ast.IfExp):
            if current is parent.body and _positive_guard(parent.test, subject):
                return True
            if current is parent.orelse and _negative_guard(
                parent.test, subject
            ):
                return True
        if isinstance(parent, (ast.If, ast.While)):
            in_body = any(current is stmt for stmt in parent.body)
            in_orelse = any(current is stmt for stmt in parent.orelse)
            if in_body and _positive_guard(parent.test, subject):
                return True
            if in_orelse and _negative_guard(parent.test, subject):
                return True
        # Early exit in any enclosing block, before our statement.
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(parent, attr, None)
            if not isinstance(block, list):
                continue
            for stmt in block:
                if stmt is current:
                    break
                if isinstance(stmt, ast.stmt) and _early_exit_guard(
                    stmt, subject
                ):
                    return True
        current = parent


class ObsGuardRule(FlowRule):
    rule_id = "CF003"
    name = "guarded-instrumentation"
    rationale = (
        "Dereferencing an optional observability context without an "
        "`is not None` guard crashes disabled-observability runs and "
        "breaks the 0%-overhead-when-disabled contract."
    )

    def check(self, analysis) -> Iterator[Finding]:
        for fn in analysis.project.functions.values():
            ctx = fn.ctx
            if not ctx.is_production or ctx.is_test or ctx.is_obs_module:
                continue
            view = _FunctionView(fn)
            parents = analysis.graph.parent_map(fn)
            for node in analysis.graph.own_nodes(fn):
                if not isinstance(node, ast.Attribute) or not isinstance(
                    node.ctx, ast.Load
                ):
                    continue
                subject = _chain(node.value)
                if subject is None:
                    continue
                kind = view.subject_kind(subject)
                if kind is None:
                    continue
                if is_guarded(node, subject, parents):
                    continue
                optional_of = (
                    "the observability context"
                    if kind == "obs"
                    else f"optional field .{subject.rsplit('.', 1)[-1]}"
                )
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"`.{node.attr}` dereferences {subject} "
                    f"({optional_of}, may be None) without a dominating "
                    f"`{subject} is not None` guard",
                )
