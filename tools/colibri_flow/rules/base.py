"""Flow-rule interface.

Unlike colibri-lint rules (one :class:`FileContext` at a time), a flow
rule sees the whole :class:`~tools.colibri_flow.api.Analysis` — project,
call graph, taint summaries — and yields findings across files.  The
shared :class:`~tools.analysis_core.findings.Finding` type carries an
optional ``trace`` so interprocedural findings can show the path from
source to sink.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from tools.analysis_core.context import FileContext
from tools.analysis_core.findings import Finding, TraceStep


class FlowRule:
    rule_id: str = ""
    name: str = ""
    rationale: str = ""

    def check(self, analysis) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        line: int,
        col: int,
        message: str,
        trace: Tuple = (),
    ) -> Finding:
        return Finding(
            path=ctx.rel_path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
            line_text=ctx.line_text(line),
            trace=tuple(
                step if isinstance(step, TraceStep) else TraceStep(*step)
                for step in trace
            ),
        )
