"""Flow-rule registry, in rule-ID order."""

from __future__ import annotations

from tools.colibri_flow.rules.base import FlowRule
from tools.colibri_flow.rules.cf001_verification_flow import VerificationFlowRule
from tools.colibri_flow.rules.cf002_determinism import DeterminismTaintRule
from tools.colibri_flow.rules.cf003_obs_guard import ObsGuardRule
from tools.colibri_flow.rules.cf004_shard_safety import ShardSafetyRule

ALL_RULES: list = [
    VerificationFlowRule(),
    DeterminismTaintRule(),
    ObsGuardRule(),
    ShardSafetyRule(),
]

RULES_BY_ID: dict = {rule.rule_id: rule for rule in ALL_RULES}

__all__ = ["FlowRule", "ALL_RULES", "RULES_BY_ID"]
