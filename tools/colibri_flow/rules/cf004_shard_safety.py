"""CF004 — shard workloads must stay shared-nothing.

Paper §7.1's linear multi-core scaling argument rests on shards sharing
*nothing*: each worker process builds its own router/gateway stack and
communicates only through the submitted spec and the returned outcome.
Two things silently break that:

* a submitted entry point that isn't a plain module-level function
  (lambda, nested def, bound method) — unpicklable or, worse, a closure
  capturing parent-process state;
* any function *reachable from* the entry point touching mutable
  module-level state — under ``fork`` every worker inherits a divergent
  copy, under ``spawn`` re-import resets it; either way the "linear
  scaling because shared-nothing" claim becomes unsound.

The rule finds submission sites (``multiprocessing.Pool(...).map/...``,
``ProcessPoolExecutor.submit/map``, ``Process(target=...)``), resolves
the entry, and walks the call graph from it — including every visited
function's *nested* defs, which models the ``loop, snapshot =
_workload(spec); loop()`` callback pattern without tracking function
values.  Inside the closure it flags reads of mutable module globals
(``dict``/``list``/``set`` bindings — immutable tables like tuples,
``frozenset`` and ``MappingProxyType`` wrappers pass), ``global``
writes, and subscript/attribute stores to module globals.  Each finding
carries the call chain from the submitted entry as a trace.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.analysis_core.findings import Finding, TraceStep
from tools.colibri_flow.callgraph import iter_own_nodes
from tools.colibri_flow.project import FunctionInfo, GlobalBinding, dotted_name
from tools.colibri_flow.rules.base import FlowRule

# Same mutability judgment as lint rule CL010 — one definition of
# "mutable module-level container" across both tools.
from tools.colibri_lint.rules.module_state import is_mutable_container

#: Pool-ish constructors (terminal call name or external dotted name).
POOL_CTORS = frozenset({"Pool", "ProcessPoolExecutor"})
#: Methods that ship a callable to worker processes.
SUBMIT_METHODS = frozenset(
    {"map", "imap", "imap_unordered", "starmap", "starmap_async", "apply",
     "apply_async", "map_async", "submit"}
)


def _terminal_name(expr: ast.expr) -> str:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return ""


def _is_pool_ctor(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call) and _terminal_name(expr.func) in POOL_CTORS
    )


class ShardSafetyRule(FlowRule):
    rule_id = "CF004"
    name = "shared-nothing-shards"
    rationale = (
        "Functions dispatched to worker processes must be module-level "
        "and reach no mutable module globals; anything else breaks "
        "pickling or the shared-nothing scaling model."
    )

    def check(self, analysis) -> Iterator[Finding]:
        self.analysis = analysis
        for fn in analysis.project.functions.values():
            if not fn.ctx.is_production or fn.ctx.is_test:
                continue
            yield from self._check_function(fn)

    # -- submission sites ---------------------------------------------

    def _check_function(self, fn: FunctionInfo) -> Iterator[Finding]:
        pool_names = self._pool_names(fn)
        for call in self.analysis.graph.calls_in(fn):
            entry = self._submitted_entry(fn, call, pool_names)
            if entry is None:
                continue
            yield from self._check_entry(fn, call, entry)

    def _pool_names(self, fn: FunctionInfo) -> Set[str]:
        names: Set[str] = set()
        for node in self.analysis.graph.own_nodes(fn):
            if isinstance(node, ast.withitem) and _is_pool_ctor(
                node.context_expr
            ):
                if isinstance(node.optional_vars, ast.Name):
                    names.add(node.optional_vars.id)
            elif isinstance(node, ast.Assign) and _is_pool_ctor(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _submitted_entry(
        self, fn: FunctionInfo, call: ast.Call, pool_names: Set[str]
    ) -> Optional[ast.expr]:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in SUBMIT_METHODS:
            receiver = func.value
            is_pool = (
                isinstance(receiver, ast.Name) and receiver.id in pool_names
            ) or _is_pool_ctor(receiver)
            if is_pool and call.args:
                return call.args[0]
        if _terminal_name(func) == "Process":
            for keyword in call.keywords:
                if keyword.arg == "target":
                    return keyword.value
        return None

    # -- entry + closure ----------------------------------------------

    def _check_entry(
        self, fn: FunctionInfo, call: ast.Call, entry: ast.expr
    ) -> Iterator[Finding]:
        project = self.analysis.project
        if isinstance(entry, ast.Lambda):
            yield self.finding(
                fn.ctx, entry.lineno, entry.col_offset,
                "lambda submitted to a worker pool is not picklable; "
                "dispatch a module-level function",
            )
            return
        if isinstance(entry, ast.Attribute):
            base = entry.value
            if isinstance(base, ast.Name) and base.id == "self":
                yield self.finding(
                    fn.ctx, entry.lineno, entry.col_offset,
                    f"bound method self.{entry.attr} submitted to a worker "
                    "pool drags the whole parent object across the process "
                    "boundary; dispatch a module-level function",
                )
                return
        name = dotted_name(entry)
        if name is None:
            return
        module = project.modules.get(fn.module)
        nested = project.functions.get(f"{fn.qname}.<locals>.{name}")
        if nested is not None:
            yield self.finding(
                fn.ctx, entry.lineno, entry.col_offset,
                f"nested function {name}() submitted to a worker pool is "
                "not picklable (and closes over parent-process state); "
                "move it to module level",
            )
            return
        resolved = project.resolve_name(module, name) if module else None
        entry_fn = project.function(resolved)
        if entry_fn is None:
            return
        yield from self._check_closure(fn, entry_fn)

    def _check_closure(
        self, site_fn: FunctionInfo, entry: FunctionInfo
    ) -> Iterator[Finding]:
        project = self.analysis.project
        graph = self.analysis.graph
        # BFS with parent pointers for traces.
        parent_of: Dict[str, Optional[str]] = {entry.qname: None}
        queue: List[str] = [entry.qname]
        seen: Set[str] = {entry.qname}
        reported: Set[Tuple[str, str]] = set()
        while queue:
            qname = queue.pop(0)
            fn = project.function(qname)
            if fn is None:
                continue
            yield from self._check_worker_function(
                fn, entry, parent_of, reported
            )
            neighbors = set(graph.callees(qname))
            neighbors.update(
                nested.qname for nested in graph.nested_functions(qname)
            )
            for neighbor in sorted(neighbors):
                if neighbor not in seen:
                    seen.add(neighbor)
                    parent_of[neighbor] = qname
                    queue.append(neighbor)

    def _trace(self, fn, entry, parent_of) -> Tuple[TraceStep, ...]:
        steps: List[TraceStep] = []
        current: Optional[str] = fn.qname
        while current is not None and len(steps) < 4:
            info = self.analysis.project.function(current)
            hop = parent_of.get(current)
            if info is not None and current != fn.qname:
                steps.append(
                    TraceStep(
                        info.ctx.rel_path,
                        info.node.lineno,
                        f"reached via {info.name}()",
                    )
                )
            current = hop
        steps.append(
            TraceStep(
                entry.ctx.rel_path,
                entry.node.lineno,
                f"worker entry point {entry.name}()",
            )
        )
        return tuple(steps)

    # -- per-function checks inside the closure ------------------------

    def _check_worker_function(
        self, fn, entry, parent_of, reported
    ) -> Iterator[Finding]:
        project = self.analysis.project
        module = project.modules.get(fn.module)
        if module is None:
            return

        global_writes: Set[str] = set()
        local_names: Set[str] = set(fn.params)
        nodes = self.analysis.graph.own_nodes(fn)
        for node in nodes:
            if isinstance(node, ast.Global):
                global_writes.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                local_names.add(node.id)
        local_names -= global_writes

        for node in nodes:
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                if node.id in global_writes:
                    key = (fn.qname, f"global:{node.id}")
                    if key in reported:
                        continue
                    reported.add(key)
                    yield self.finding(
                        fn.ctx, node.lineno, node.col_offset,
                        f"worker function {fn.name}() writes module global "
                        f"{node.id}; shard workers must be shared-nothing",
                        trace=self._trace(fn, entry, parent_of),
                    )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in local_names:
                    continue
                binding = self._module_binding(module, node.id)
                if binding is None:
                    continue
                if binding.value is None or not is_mutable_container(
                    binding.value
                ):
                    continue
                key = (fn.qname, f"read:{binding.module}.{binding.name}")
                if key in reported:
                    continue
                reported.add(key)
                trace = self._trace(fn, entry, parent_of) + (
                    TraceStep(
                        project.modules[binding.module].ctx.rel_path,
                        binding.node.lineno,
                        f"mutable module-level binding {binding.name} "
                        "defined here",
                    ),
                )
                yield self.finding(
                    fn.ctx, node.lineno, node.col_offset,
                    f"worker-reachable {fn.name}() reads mutable module "
                    f"global {node.id}; make it a tuple/frozenset/"
                    "MappingProxyType or pass it through the spec",
                    trace=trace,
                )
            elif isinstance(node, (ast.Subscript, ast.Attribute)) and isinstance(
                node.ctx, ast.Store
            ):
                base = node.value
                if not isinstance(base, ast.Name):
                    continue
                binding = self._module_binding(module, base.id)
                if binding is None:
                    continue
                key = (fn.qname, f"store:{binding.module}.{binding.name}")
                if key in reported:
                    continue
                reported.add(key)
                yield self.finding(
                    fn.ctx, node.lineno, node.col_offset,
                    f"worker-reachable {fn.name}() mutates module global "
                    f"{base.id}; shard workers must be shared-nothing",
                    trace=self._trace(fn, entry, parent_of),
                )

    def _module_binding(self, module, name: str) -> Optional[GlobalBinding]:
        """The module-level data binding a name load refers to, if any."""
        project = self.analysis.project
        if name in module.globals:
            return module.globals[name]
        if name in module.imports:
            resolved = project.resolve_name(module, name)
            if resolved is None:
                return None
            owner_name, _, attr = resolved.rpartition(".")
            owner = project.modules.get(owner_name)
            if owner is not None and attr in owner.globals:
                return owner.globals[attr]
        return None
