"""CF002 — nondeterminism must not taint protocol state.

The reproduction's results (and the paper's attack/defense timelines)
are only checkable because every component runs on an injected clock and
a seeded RNG — lint rules CL001/CL002 ban the *syntax* of ``time.time()``
and bare ``random.*`` outside ``repro/util/clock.py``.  This rule closes
the interprocedural gap: a wall-clock or entropy value that is obtained
legally (or smuggled through a helper's return value) still must never
reach *protocol state* — an attribute or mapping store, or a PRNG seed.

Sinks, from :class:`~tools.colibri_flow.dataflow.TaintEngine`:

* ``state-store``  — ``self.x = <tainted>`` / ``table[k] = <tainted>``;
* ``prng-seed``    — ``random.Random(<tainted>)`` / ``rng.seed(<tainted>)``
  (seeds must come from injected config, never from time or entropy);
* ``callee-state`` — a tainted argument handed to a function whose
  summary says that parameter reaches state (trace points at the store).

Two sanctioned boundaries exist, one per source kind:

* ``repro/util/clock.py`` for **wall-clock** — values returned by the
  injected clock are clean, which is what makes ``self.t0 =
  clock.now()`` legal while ``self.t0 = time.time()`` is not;
* ``repro/crypto/`` for **entropy** — AEAD nonces and AS secret values
  must be unpredictable (a deterministic nonce is a security bug);
  reproducible runs inject seeds (``DrkeyDeriver(seed=...)``) instead
  of derandomizing the crypto.  Entropy read *outside* the crypto
  package, and wall-clock read *inside* it, are still findings.
"""

from __future__ import annotations

from typing import Iterator

from tools.analysis_core.findings import Finding, TraceStep
from tools.colibri_flow.dataflow import source_kind
from tools.colibri_flow.rules.base import FlowRule


class DeterminismTaintRule(FlowRule):
    rule_id = "CF002"
    name = "no-nondeterminism-into-state"
    rationale = (
        "Wall-clock and entropy values flowing into protocol state make "
        "runs unreproducible; time and randomness enter only through the "
        "injected clock and seeded RNGs."
    )

    def check(self, analysis) -> Iterator[Finding]:
        for sink in analysis.taint.sinks:
            fn = sink.fn
            ctx = fn.ctx
            if not ctx.is_production or ctx.is_test or ctx.is_clock_module:
                continue
            tags = sorted(sink.tags)
            kinds = sorted({source_kind(tag) for tag in tags})
            trace = []
            for tag in tags[:3]:
                site = sink.tags[tag]
                if site is not None:
                    trace.append(
                        TraceStep(site[0], site[1], f"{tag}() read here")
                    )
            for step in sink.trace:
                (path, line), note = step
                trace.append(TraceStep(path, line, note))
            if sink.kind == "prng-seed":
                message = (
                    f"PRNG seeded from {'/'.join(kinds)} source "
                    f"({', '.join(tags)}); seeds must come from injected "
                    "configuration"
                )
            else:
                where = sink.detail or "state"
                message = (
                    f"{'/'.join(kinds)} value ({', '.join(tags)}) flows "
                    f"into protocol state via {where}; route it through "
                    "the injected clock/config instead"
                )
            yield self.finding(
                ctx,
                sink.node.lineno,
                getattr(sink.node, "col_offset", 0),
                message,
                trace=tuple(trace),
            )
