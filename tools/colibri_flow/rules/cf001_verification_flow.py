"""CF001 — verification verdicts must reach a forwarding decision.

The interprocedural generalization of lint rule CL007.  CL007 can see
``constant_time_equal(...)`` called as a bare statement; it cannot see
that ``router.validate_batch(burst)`` *returns the HVF verdicts* and
that discarding that list accepts every packet in the burst (the paper's
§4.6 pipeline is verify-then-forward at every hop — a verdict that
reaches no branch is a forged packet forwarded).

The analysis classifies every project function to a fixpoint:

* **raising** — the body contains ``raise``; failure escapes as an
  exception, so statement position is fine (``verify_mac``,
  ``AuthenticatedRequest.verify_at`` …);
* **verdict carrier** — the return value is *decided by* a
  verification: it returns verification-derived data, returns under a
  branch whose test is a verification, or returns another carrier's
  result.  ``_authenticate`` (returns under ``constant_time_equal``
  branches), ``_validate_one``, ``validate_batch`` and the whole
  ``process*`` pipeline become carriers this way.

At every call site of a carrier (or of an unresolved ``verify*``
predicate), the result must be *consumed*: branch test, comparison,
``assert`` / ``return`` / ``raise``, argument to another call, or an
assignment whose name (transitively) reaches such a use.  A bare
statement call, or an assignment nothing ever branches on, is a
finding — with a trace to where the verdict was computed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.analysis_core.findings import Finding
from tools.colibri_flow.callgraph import iter_own_nodes
from tools.colibri_flow.project import FunctionInfo
from tools.colibri_flow.rules.base import FlowRule

# Shared vocabulary with the single-file rule (CL007).
from tools.colibri_lint.rules.verification import (
    PREDICATE_VERIFIERS,
    RAISING_VERIFIERS,
)

Step = Tuple[str, int, str]


def build_parent_map(fn: FunctionInfo) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in iter_own_nodes(fn.node):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


_PASS_THROUGH = (
    ast.Tuple,
    ast.List,
    ast.Set,
    ast.Dict,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.Starred,
    ast.Attribute,
    ast.BinOp,
    ast.Await,
    ast.FormattedValue,
    ast.JoinedStr,
)

_CONSUMING_EXPR = (ast.Compare, ast.BoolOp, ast.UnaryOp)
_CONSUMING_STMT = (ast.Assert, ast.Return, ast.Raise)


def consumption(node: ast.AST, parents: Dict[int, ast.AST]):
    """How is this expression's value used?

    Returns ``("consumed", ())``, ``("discarded", ())``, or
    ``("assigned", names)`` when the value lands in local names whose
    later uses decide the verdict's fate.
    """
    current = node
    while True:
        parent = parents.get(id(current))
        if parent is None:
            return ("consumed", ())
        if isinstance(parent, (ast.Call, ast.keyword)):
            return ("consumed", ())
        if isinstance(parent, _CONSUMING_EXPR) or isinstance(
            parent, (ast.Yield, ast.YieldFrom)
        ):
            return ("consumed", ())
        if isinstance(parent, _CONSUMING_STMT):
            return ("consumed", ())
        if isinstance(parent, (ast.If, ast.While)):
            return ("consumed", ())  # the value is the branch test
        if isinstance(parent, ast.IfExp):
            if current is parent.test:
                return ("consumed", ())
            current = parent
            continue
        if isinstance(parent, ast.comprehension):
            if current is parent.iter or any(
                current is test for test in parent.ifs
            ):
                return ("consumed", ())
            current = parent
            continue
        if isinstance(parent, ast.Subscript):
            if current is parent.slice:
                return ("consumed", ())
            current = parent
            continue
        if isinstance(parent, ast.For):
            return ("consumed", ())  # loop over the verdicts
        if isinstance(parent, (ast.withitem, ast.AugAssign, ast.NamedExpr)):
            return ("consumed", ())
        if isinstance(parent, ast.Expr):
            return ("discarded", ())
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets
                if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            names = tuple(
                target.id for target in targets if isinstance(target, ast.Name)
            )
            if names:
                return ("assigned", names)
            # Tuple-unpacked or stored into object state: give the
            # benefit of the doubt (the container is state, not a local).
            return ("consumed", ())
        if isinstance(parent, _PASS_THROUGH):
            current = parent
            continue
        current = parent


class _Classifier:
    """Project-wide raising/carrier classification, run to a fixpoint."""

    def __init__(self, analysis) -> None:
        self.analysis = analysis
        self.raising: Dict[str, bool] = {}
        self.carriers: Dict[str, Tuple[Step, ...]] = {}
        for fn in analysis.project.functions.values():
            self.raising[fn.qname] = any(
                isinstance(node, ast.Raise)
                for node in analysis.graph.own_nodes(fn)
            )
        for _ in range(10):
            changed = False
            for fn in analysis.project.functions.values():
                if fn.qname in self.carriers:
                    continue
                origin = self._carrier_origin(fn)
                if origin is not None:
                    self.carriers[fn.qname] = origin
                    changed = True
            if not changed:
                break

    # -- verification-call detection ---------------------------------

    def verification_origin(
        self, fn: FunctionInfo, call: ast.Call
    ) -> Optional[Tuple[Step, ...]]:
        """If this call is a predicate verification, where its verdict
        comes from (trace steps); ``None`` for non-verification or
        raising-verifier calls."""
        targets = self.analysis.graph.targets_for(fn, call)
        name = targets.name
        site: Step = (fn.ctx.rel_path, call.lineno, f"{name}() verdict produced here")

        for qname in targets.functions:
            if qname in self.carriers:
                callee = self.analysis.project.function(qname)
                step: Step = (
                    callee.ctx.rel_path,
                    callee.node.lineno,
                    f"{callee.name}() decides its result by verification",
                )
                return (step,) + self.carriers[qname][:2]
        if name in PREDICATE_VERIFIERS:
            return (site,)
        if not name.startswith("verify"):
            return None
        if targets.functions:
            # Resolved verify*: raising ones are fine in any position;
            # non-raising, non-carrier ones return a report the caller
            # must read (e.g. forensics.verify_evidence).
            for qname in targets.functions:
                if not self.raising.get(qname, False):
                    callee = self.analysis.project.function(qname)
                    return (
                        (
                            callee.ctx.rel_path,
                            callee.node.lineno,
                            f"{callee.name}() returns its result instead of raising",
                        ),
                    )
            return None
        if name in RAISING_VERIFIERS:
            return None
        return (site,)

    # -- carrier classification --------------------------------------

    def _carrier_origin(self, fn: FunctionInfo) -> Optional[Tuple[Step, ...]]:
        parents = self.analysis.graph.parent_map(fn)
        carrier_names = self._carrier_names(fn)

        def expr_origin(expr: ast.AST) -> Optional[Tuple[Step, ...]]:
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Call):
                    origin = self.verification_origin(fn, sub)
                    if origin is not None:
                        return origin
                elif (
                    isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Load)
                    and sub.id in carrier_names
                ):
                    return carrier_names[sub.id]
            return None

        for node in self.analysis.graph.own_nodes(fn):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            # (a) returns verification-derived data
            origin = expr_origin(node.value)
            if origin is not None:
                return origin
            # (b) returns under a verification-decided branch
            current: ast.AST = node
            while True:
                parent = parents.get(id(current))
                if parent is None:
                    break
                if isinstance(parent, (ast.If, ast.While)):
                    origin = expr_origin(parent.test)
                    if origin is not None:
                        return origin
                current = parent
        return None

    def _carrier_names(
        self, fn: FunctionInfo
    ) -> Dict[str, Tuple[Step, ...]]:
        """Local names holding verification-derived values."""
        names: Dict[str, Tuple[Step, ...]] = {}
        for _ in range(3):
            changed = False
            for node in self.analysis.graph.own_nodes(fn):
                if not isinstance(node, ast.Assign):
                    continue
                origin = None
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Call):
                        origin = self.verification_origin(fn, sub)
                    elif (
                        isinstance(sub, ast.Name)
                        and isinstance(sub.ctx, ast.Load)
                        and sub.id in names
                    ):
                        origin = names[sub.id]
                    if origin is not None:
                        break
                if origin is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id not in names:
                        names[target.id] = origin
                        changed = True
            if not changed:
                break
        return names


class VerificationFlowRule(FlowRule):
    rule_id = "CF001"
    name = "verification-reaches-decision"
    rationale = (
        "A verification verdict that reaches no branch, return, or raise "
        "accepts forged packets; every carrier of a MAC/HVF result must "
        "flow into the forwarding decision on every path."
    )

    def check(self, analysis) -> Iterator[Finding]:
        classifier = _Classifier(analysis)
        for fn in analysis.project.functions.values():
            if not fn.ctx.is_production or fn.ctx.is_test:
                continue
            parents = analysis.graph.parent_map(fn)
            for call in analysis.graph.calls_in(fn):
                origin = classifier.verification_origin(fn, call)
                if origin is None:
                    continue
                status, names = consumption(call, parents)
                if status == "consumed":
                    continue
                if status == "assigned" and self._has_decision_use(
                    analysis.graph.own_nodes(fn), names, parents
                ):
                    continue
                verb = (
                    "is discarded"
                    if status == "discarded"
                    else f"is bound to {', '.join(names)} but never decides anything"
                )
                call_name = analysis.graph.targets_for(fn, call).name or "verification"
                yield self.finding(
                    fn.ctx,
                    call.lineno,
                    call.col_offset,
                    f"verification result of {call_name}() {verb}; the "
                    "verdict must reach a branch, return, or raise",
                    trace=origin,
                )

    @staticmethod
    def _has_decision_use(nodes, names, parents) -> bool:
        tracked: Set[str] = set(names)
        for _ in range(3):
            grew = False
            for node in nodes:
                if not isinstance(node, ast.Assign):
                    continue
                if not any(
                    isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Load)
                    and sub.id in tracked
                    for sub in ast.walk(node.value)
                ):
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id not in tracked:
                        tracked.add(target.id)
                        grew = True
            if not grew:
                break
        for node in nodes:
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in tracked
            ):
                status, _ = consumption(node, parents)
                if status == "consumed":
                    return True
        return False
