"""Command-line interface: ``python -m colibri_flow [paths...]``.

Mirrors colibri-lint's CLI exactly (same flags, same exit codes, same
baseline semantics): 0 clean (modulo baseline), 1 findings, 2 usage
error.  The default path is ``src/repro`` — flow rules reason about the
production protocol tree, not tests or tooling.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.analysis_core import baseline as baseline_mod
from tools.analysis_core.reporters import render_json, render_text
from tools.colibri_flow.api import analyze_paths
from tools.colibri_flow.rules import ALL_RULES, RULES_BY_ID

DEFAULT_BASELINE_NAME = ".colibri-flow-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m colibri_flow",
        description=(
            "Interprocedural protocol-invariant analyzer for the Colibri "
            "reproduction: verification-flow, determinism taint, obs-guard "
            "discipline, and shard process-safety."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="report format"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline JSON of grandfathered findings (default: "
            f"{DEFAULT_BASELINE_NAME} in the cwd, if present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def _pick_rules(select, ignore) -> list:
    chosen = list(ALL_RULES)
    if select:
        wanted = {rule_id.strip().upper() for rule_id in select.split(",")}
        unknown = wanted - set(RULES_BY_ID)
        if unknown:
            raise SystemExit(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        chosen = [rule for rule in chosen if rule.rule_id in wanted]
    if ignore:
        skipped = {rule_id.strip().upper() for rule_id in ignore.split(",")}
        chosen = [rule for rule in chosen if rule.rule_id not in skipped]
    return chosen


def _safe_print(text: str) -> None:
    try:
        print(text)
    except BrokenPipeError:
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())


def run(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            _safe_print(f"{rule.rule_id}  {rule.name}")
            _safe_print(f"       {rule.rationale}")
        return 0

    try:
        rules = _pick_rules(args.select, args.ignore)
    except SystemExit as error:
        print(error, file=sys.stderr)
        return 2

    findings, _ = analyze_paths(args.paths, rules=rules)

    baseline_path = Path(args.baseline or DEFAULT_BASELINE_NAME)
    if args.update_baseline:
        baseline_mod.write_baseline(findings, baseline_path, tool="colibri-flow")
        _safe_print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    grandfathered: list = []
    if not args.no_baseline:
        known = baseline_mod.load_baseline(baseline_path)
        findings, grandfathered = baseline_mod.filter_findings(findings, known)

    renderer = render_json if args.format == "json" else render_text
    _safe_print(
        renderer(
            findings,
            grandfathered_count=len(grandfathered),
            tool="colibri-flow",
        )
    )
    return 1 if findings else 0


def main() -> None:
    raise SystemExit(run())
