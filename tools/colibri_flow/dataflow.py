"""Interprocedural taint engine (backs rule CF002).

Per function we compute, flow-insensitively, which *source tags* (dotted
names of nondeterminism sources: ``time.time``, ``datetime.datetime.now``,
``os.urandom`` …) can reach each local name, then summarize:

* ``returns``      — source tags that can reach a ``return`` (with the
  site where the source call happened, for traces);
* ``params_to_return`` — parameter indices whose value can reach a
  ``return`` (so taint flows through helpers like ``int(...)`` wrappers
  written in-project);
* ``params_to_state``  — parameter indices whose value can reach an
  attribute / subscript store or a PRNG seed (so the *caller* holding
  the tainted value gets the finding, with a trace into the callee).

Summaries are iterated to a fixpoint over the call graph (the codebase
has no deep summary chains; the loop is capped defensively).  Functions
in the sanctioned clock module are the determinism boundary: their
summaries are forced empty, so ``clock.now()`` values are clean by
construction — that is exactly the paper's simulation-reproducibility
contract (inject time, never read the wall clock).

Everything here is also reusable with a different source table, which
is how the tests exercise the engine in isolation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from tools.colibri_flow.callgraph import CallGraph, CallTargets, iter_own_nodes
from tools.colibri_flow.project import FunctionInfo, Project

Site = Tuple[str, int]  # (rel_path, line)

#: Dotted names whose call result is nondeterministic.
WALL_CLOCK_SOURCES = frozenset(
    {
        "time.time",
        "time.monotonic",
        "time.perf_counter",
        "time.time_ns",
        "time.monotonic_ns",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

ENTROPY_SOURCES = frozenset(
    {
        "os.urandom",
        "uuid.uuid4",
        "uuid.uuid1",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.randbelow",
        "random.random",
        "random.randint",
        "random.randrange",
        "random.uniform",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.getrandbits",
        "random.randbytes",
        "random.gauss",
    }
)

DEFAULT_SOURCES = WALL_CLOCK_SOURCES | ENTROPY_SOURCES


def source_kind(tag: str) -> str:
    return "wall-clock" if tag in WALL_CLOCK_SOURCES else "entropy"


@dataclass
class Sink:
    """A place where tainted data enters protocol state."""

    fn: FunctionInfo
    node: ast.AST
    kind: str  # "state-store" | "prng-seed" | "callee-state"
    tags: Dict[str, Optional[Site]]
    detail: str = ""
    trace: Tuple = ()


@dataclass
class TaintSummary:
    returns: Dict[str, Optional[Site]] = field(default_factory=dict)
    params_to_return: Set[int] = field(default_factory=set)
    params_to_state: Set[int] = field(default_factory=set)
    #: per state-reaching param: one representative store site + label
    param_state_sites: Dict[int, Tuple[Site, str]] = field(default_factory=dict)

    def snapshot(self):
        return (
            frozenset(self.returns),
            frozenset(self.params_to_return),
            frozenset(self.params_to_state),
        )


def _param_tag(index: int) -> str:
    return f"<param:{index}>"


def _is_param_tag(tag: str) -> bool:
    return tag.startswith("<param:")


def _param_index(tag: str) -> int:
    return int(tag[len("<param:") : -1])


class TaintEngine:
    def __init__(
        self,
        project: Project,
        graph: CallGraph,
        sources: frozenset = DEFAULT_SOURCES,
    ) -> None:
        self.project = project
        self.graph = graph
        self.sources = sources
        self.summaries: Dict[str, TaintSummary] = {}
        self.sinks: List[Sink] = []
        self._solve()

    # -- driver -------------------------------------------------------

    def _solve(self) -> None:
        functions = list(self.project.functions.values())
        for fn in functions:
            self.summaries[fn.qname] = TaintSummary()
        # callee -> callers, to re-summarize only affected functions.
        callers: Dict[str, Set[str]] = {}
        for caller, callees in self.graph.edges.items():
            for callee in callees:
                callers.setdefault(callee, set()).add(caller)
        pending = list(functions)
        rounds: Dict[str, int] = {}
        while pending:
            batch, pending = pending, []
            queued: Set[str] = set()
            for fn in batch:
                if rounds.get(fn.qname, 0) >= 10:
                    continue  # defensive cap; summaries only ever grow
                rounds[fn.qname] = rounds.get(fn.qname, 0) + 1
                new = self._summarize(fn, collect_sinks=False)
                if new.snapshot() == self.summaries[fn.qname].snapshot():
                    continue
                self.summaries[fn.qname] = new
                for caller_qname in callers.get(fn.qname, ()):
                    if caller_qname not in queued:
                        queued.add(caller_qname)
                        caller = self.project.function(caller_qname)
                        if caller is not None:
                            pending.append(caller)
        for fn in functions:
            self._summarize(fn, collect_sinks=True)

    def _sanctioned(self, fn: FunctionInfo) -> bool:
        return fn.ctx.is_clock_module

    @staticmethod
    def _entropy_sanctioned(fn: FunctionInfo) -> bool:
        """Is crypto-strength entropy legitimate here?

        ``repro/crypto`` is the entropy boundary the way ``util/clock``
        is the wall-clock boundary: AEAD nonces and AS secret values
        *must* be unpredictable (a deterministic nonce is a security
        bug), and reproducible runs get determinism by injecting seeds
        (``DrkeyDeriver(seed=...)``), not by derandomizing the crypto.
        Wall-clock reads stay banned inside crypto; entropy reads stay
        banned outside it.
        """
        return "/repro/crypto/" in f"/{fn.ctx.rel_path}"

    # -- per-function analysis ---------------------------------------

    def _summarize(self, fn: FunctionInfo, collect_sinks: bool) -> TaintSummary:
        summary = TaintSummary()
        if self._sanctioned(fn):
            return summary
        env: Dict[str, Dict[str, Optional[Site]]] = {}
        params = fn.params
        start = 1 if fn.is_method and params and params[0] in ("self", "cls") else 0
        for index in range(start, len(params)):
            env[params[index]] = {_param_tag(index): None}

        nodes = self.graph.own_nodes(fn)
        for _ in range(3):
            before = {name: set(tags) for name, tags in env.items()}
            for node in nodes:
                self._transfer(fn, node, env)
            if {name: set(tags) for name, tags in env.items()} == before:
                break

        for node in nodes:
            if isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
                for tag, site in self._expr_tags(fn, node.value, env).items():
                    if _is_param_tag(tag):
                        summary.params_to_return.add(_param_index(tag))
                    else:
                        summary.returns.setdefault(tag, site)
            else:
                self._check_sinks(fn, node, env, summary, collect_sinks)
        return summary

    def _transfer(self, fn, node, env) -> None:
        if isinstance(node, ast.Assign):
            tags = self._expr_tags(fn, node.value, env)
            if tags:
                for target in node.targets:
                    self._bind(target, tags, env)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            tags = self._expr_tags(fn, node.value, env)
            if tags:
                self._bind(node.target, tags, env)
        elif isinstance(node, ast.AugAssign):
            tags = self._expr_tags(fn, node.value, env)
            if tags:
                self._bind(node.target, tags, env)
        elif isinstance(node, ast.NamedExpr):
            tags = self._expr_tags(fn, node.value, env)
            if tags:
                self._bind(node.target, tags, env)
        elif isinstance(node, ast.For):
            tags = self._expr_tags(fn, node.iter, env)
            if tags:
                self._bind(node.target, tags, env)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            tags = self._expr_tags(fn, node.context_expr, env)
            if tags:
                self._bind(node.optional_vars, tags, env)

    def _bind(self, target, tags, env) -> None:
        if isinstance(target, ast.Name):
            env.setdefault(target.id, {})
            for tag, site in tags.items():
                env[target.id].setdefault(tag, site)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, tags, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tags, env)
        # Attribute / Subscript targets are sinks, handled separately.

    # -- expression taint --------------------------------------------

    def _expr_tags(self, fn, expr, env) -> Dict[str, Optional[Site]]:
        found: Dict[str, Optional[Site]] = {}
        self._collect_tags(fn, expr, env, found, depth=0)
        return found

    def _collect_tags(self, fn, expr, env, found, depth) -> None:
        if depth > 30 or expr is None:
            return
        if isinstance(expr, ast.Name):
            for tag, site in env.get(expr.id, {}).items():
                found.setdefault(tag, site)
            return
        if isinstance(expr, ast.Call):
            for tag, site in self._call_tags(fn, expr, env, depth).items():
                found.setdefault(tag, site)
            return
        if isinstance(expr, ast.Attribute):
            self._collect_tags(fn, expr.value, env, found, depth + 1)
            return
        if isinstance(expr, ast.IfExp):
            self._collect_tags(fn, expr.body, env, found, depth + 1)
            self._collect_tags(fn, expr.orelse, env, found, depth + 1)
            return
        if isinstance(expr, ast.Lambda):
            return  # deferred execution; out of scope
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._collect_tags(fn, child, env, found, depth + 1)

    def _call_tags(self, fn, call: ast.Call, env, depth) -> Dict[str, Optional[Site]]:
        targets = self.graph.targets_for(fn, call)
        site: Site = (fn.ctx.rel_path, call.lineno)

        tag = self._source_tag(targets)
        if tag is not None:
            if tag in ENTROPY_SOURCES and self._entropy_sanctioned(fn):
                return {}
            return {tag: site}

        result: Dict[str, Optional[Site]] = {}
        if targets.functions:
            for callee_qname in targets.functions:
                callee = self.project.function(callee_qname)
                summary = self.summaries.get(callee_qname)
                if callee is None or summary is None:
                    continue
                for callee_tag, callee_site in summary.returns.items():
                    result.setdefault(callee_tag, callee_site or site)
                if summary.params_to_return:
                    for index, arg in self._map_args(callee, call):
                        if index in summary.params_to_return:
                            self._collect_tags(fn, arg, env, result, depth + 1)
            return result

        # Unresolved or external non-source call: conservatively pass
        # argument taint through (``int(time.time())``, constructors of
        # unmodeled classes, …).
        for arg in call.args:
            self._collect_tags(fn, arg, env, result, depth + 1)
        for keyword in call.keywords:
            self._collect_tags(fn, keyword.value, env, result, depth + 1)
        return result

    def _source_tag(self, targets: CallTargets) -> Optional[str]:
        external = targets.external
        if external in self.sources:
            return external
        return None

    def _map_args(self, callee: FunctionInfo, call: ast.Call):
        """Yield ``(param_index, arg_expr)`` pairs for a call site."""
        offset = 0
        if (
            callee.is_method
            and callee.params
            and callee.params[0] in ("self", "cls")
            and isinstance(call.func, ast.Attribute)
        ):
            offset = 1
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            yield position + offset, arg
        by_name = {name: index for index, name in enumerate(callee.params)}
        for keyword in call.keywords:
            if keyword.arg is not None and keyword.arg in by_name:
                yield by_name[keyword.arg], keyword.value

    # -- sinks --------------------------------------------------------

    def _check_sinks(self, fn, node, env, summary: TaintSummary, collect) -> None:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            if value is None:
                return
            stateful = [
                target
                for target in targets
                if isinstance(target, (ast.Attribute, ast.Subscript))
            ]
            if not stateful:
                return
            tags = self._expr_tags(fn, value, env)
            self._record_state_sink(
                fn, node, tags, summary, collect, "state-store",
                detail=_target_text(stateful[0]),
            )
        elif isinstance(node, ast.Call):
            self._check_call_sinks(fn, node, env, summary, collect)

    def _check_call_sinks(self, fn, call, env, summary, collect) -> None:
        targets = self.graph.targets_for(fn, call)
        # PRNG seeding: random.Random(x) / rng.seed(x).
        is_seed = targets.name == "seed" or (
            targets.external or ""
        ) == "random.Random"
        if is_seed and (call.args or call.keywords):
            tags: Dict[str, Optional[Site]] = {}
            for arg in call.args:
                self._collect_tags(fn, arg, env, tags, 0)
            for keyword in call.keywords:
                self._collect_tags(fn, keyword.value, env, tags, 0)
            self._record_state_sink(
                fn, call, tags, summary, collect, "prng-seed", detail="seed"
            )
        # Tainted argument handed to a callee that stores it.
        for callee_qname in targets.functions:
            callee = self.project.function(callee_qname)
            callee_summary = self.summaries.get(callee_qname)
            if callee is None or callee_summary is None:
                continue
            if not callee_summary.params_to_state:
                continue
            for index, arg in self._map_args(callee, call):
                if index not in callee_summary.params_to_state:
                    continue
                tags = self._expr_tags(fn, arg, env)
                store_site, store_label = callee_summary.param_state_sites.get(
                    index, (None, "")
                )
                trace = ()
                if store_site is not None:
                    trace = (
                        (
                            store_site,
                            f"stored into {store_label or 'state'} inside "
                            f"{callee.name}()",
                        ),
                    )
                self._record_state_sink(
                    fn, call, tags, summary, collect, "callee-state",
                    detail=f"argument to {callee.name}()", trace=trace,
                )

    def _record_state_sink(
        self, fn, node, tags, summary, collect, kind, detail="", trace=()
    ) -> None:
        if not tags:
            return
        site: Site = (fn.ctx.rel_path, node.lineno)
        real = {tag: s for tag, s in tags.items() if not _is_param_tag(tag)}
        for tag in tags:
            if _is_param_tag(tag):
                index = _param_index(tag)
                summary.params_to_state.add(index)
                summary.param_state_sites.setdefault(index, (site, detail))
        if collect and real:
            self.sinks.append(
                Sink(fn=fn, node=node, kind=kind, tags=real, detail=detail,
                     trace=trace)
            )


def _target_text(target: ast.AST) -> str:
    try:
        return ast.unparse(target)
    except (ValueError, AttributeError):  # unparse is near-total on exprs
        return "<state>"
