"""Programmatic entry points: build an analysis, run the rules.

``analyze_paths`` is what the CLI calls; ``analyze_sources`` runs the
same pipeline over in-memory ``{rel_path: source}`` mappings, which is
how the test fixtures exercise each rule without touching disk.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

from tools.analysis_core.cache import GLOBAL_CACHE
from tools.analysis_core.engine import (
    apply_suppressions,
    iter_python_files,
    relativize,
)
from tools.analysis_core.findings import Finding
from tools.colibri_flow.callgraph import CallGraph
from tools.colibri_flow.dataflow import TaintEngine
from tools.colibri_flow.project import Project

#: Pseudo-rule for files the parser rejects (flow's analogue of CL000).
SYNTAX_ERROR_ID = "CF000"

#: Suppression comment tag: ``# colibri-flow: disable=CF003``.
SUPPRESSION_TAG = "colibri-flow"


class Analysis:
    """Project + call graph + (lazy) taint summaries, handed to rules."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.graph = CallGraph(project)
        self._taint: Optional[TaintEngine] = None

    @property
    def taint(self) -> TaintEngine:
        if self._taint is None:
            self._taint = TaintEngine(self.project, self.graph)
        return self._taint


def _run_rules(project: Project, rules=None) -> List[Finding]:
    if rules is None:
        from tools.colibri_flow.rules import ALL_RULES

        rules = ALL_RULES
    analysis = Analysis(project)
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(analysis))
    # Suppression comments, per file.
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    kept: List[Finding] = []
    contexts = {
        module.ctx.rel_path: module.ctx for module in project.modules.values()
    }
    for path, group in by_path.items():
        ctx = contexts.get(path)
        if ctx is None:
            kept.extend(group)
        else:
            kept.extend(apply_suppressions(ctx, group, SUPPRESSION_TAG))
    # Two resolution candidates can report the same defect; identity
    # ignores traces, so dict.fromkeys collapses them.
    return sorted(dict.fromkeys(kept), key=lambda finding: finding.sort_key)


def analyze_sources(sources: Dict[str, str], rules=None) -> List[Finding]:
    """Run flow rules over in-memory sources (used by the test suite)."""
    return _run_rules(Project.load_sources(sources), rules=rules)


def analyze_paths(
    paths, rules=None, root: Optional[Path] = None
) -> Tuple[List[Finding], Project]:
    """Run flow rules over files/directories.

    Unreadable or unparseable files become ``CF000`` findings, mirroring
    colibri-lint's ``CL000`` contract that a broken file fails the run.
    """
    findings: List[Finding] = []
    project = Project()
    for file_path in iter_python_files(paths):
        rel = relativize(file_path, root)
        try:
            ctx = GLOBAL_CACHE.get(file_path, rel)
        except (OSError, UnicodeDecodeError) as error:
            findings.append(
                Finding(
                    path=rel, line=1, col=0, rule_id=SYNTAX_ERROR_ID,
                    message=f"cannot read file: {error}", line_text="",
                )
            )
            continue
        except SyntaxError as error:
            findings.append(
                Finding(
                    path=rel, line=error.lineno or 1, col=error.offset or 0,
                    rule_id=SYNTAX_ERROR_ID,
                    message=f"syntax error: {error.msg}", line_text="",
                )
            )
            continue
        project.add_module(ctx)
    project.finish()
    findings.extend(_run_rules(project, rules=rules))
    return sorted(findings, key=lambda finding: finding.sort_key), project
