#!/usr/bin/env python
"""Run the canonical scenario campaigns and write their artifact sets.

The CI ``campaign-smoke`` job runs this at quick scale; every campaign
must finish green (all harness invariants, SLO replay equivalence) and
the artifact directory then carries, per campaign:

* ``journal.jsonl``  — the complete exported flight recording,
* ``slo_replay.json`` — live vs. replayed alert transitions,
* ``summary.json``    — per-phase stats, telemetry, memory rows,

plus one shared ``memory_footprint.txt`` with a row per campaign
(arrivals vs. peak store vs. final live EERs — the "state stays
sublinear in processed flows" record; a non-zero final live count fails
the run here).

Usage::

    PYTHONPATH=src python tools/run_campaigns.py \
        [--scale quick] [--seed 7] [--out campaign_artifacts] [NAME ...]
"""
# Wall-clock budgets measure real elapsed time on purpose (the whole
# point of a load budget); the injected-Clock rule does not apply here.
# colibri-lint: disable-file=CL001

from __future__ import annotations

import argparse
import sys
import time

from repro.sim.campaign import CampaignRunner
from repro.sim.campaigns import CANONICAL


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("names", nargs="*", default=None,
                        help="campaign names (default: all canonical)")
    parser.add_argument("--scale", default="quick",
                        choices=("quick", "default", "full"))
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="campaign_artifacts")
    args = parser.parse_args(argv)

    names = args.names or list(CANONICAL)
    unknown = [name for name in names if name not in CANONICAL]
    if unknown:
        parser.error(f"unknown campaigns: {', '.join(unknown)}")

    failures = 0
    for name in names:
        spec = CANONICAL[name](args.scale, seed=args.seed)
        start = time.perf_counter()
        result = CampaignRunner(spec).run()
        wall = time.perf_counter() - start
        result.write_artifacts(args.out)
        residual = (
            result.phase_reports[-1].memory.get("live_eers", 0.0)
            if result.phase_reports
            else 0.0
        )
        status = "ok" if result.ok and residual == 0.0 else "FAIL"
        if status == "FAIL":
            failures += 1
        print(
            f"{status:>4}  {result.name:<28} wall {wall:6.1f}s  "
            f"replay_equivalent={result.replay_equivalent}  "
            f"residual_eers={residual:.0f}"
        )
        for violation in result.violations:
            print(f"      violation: {violation}")
    print(f"artifacts written under {args.out}/")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
