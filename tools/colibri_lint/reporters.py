"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter


def render_text(findings: list, grandfathered_count: int = 0) -> str:
    lines = [
        f"{finding.path}:{finding.line}:{finding.col + 1}: "
        f"{finding.rule_id} {finding.message}"
        for finding in findings
    ]
    if findings:
        per_rule = Counter(finding.rule_id for finding in findings)
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(per_rule.items())
        )
        lines.append("")
        lines.append(f"{len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("colibri-lint: clean")
    if grandfathered_count:
        lines.append(f"{grandfathered_count} grandfathered finding(s) in baseline")
    return "\n".join(lines)


def render_json(findings: list, grandfathered_count: int = 0) -> str:
    payload = {
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
        "grandfathered": grandfathered_count,
    }
    return json.dumps(payload, indent=2)
