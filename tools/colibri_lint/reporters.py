"""Compat shim: reporters now live in
:mod:`tools.analysis_core.reporters`, shared with colibri-flow (their
defaults render under the ``colibri-lint`` name)."""

from __future__ import annotations

from tools.analysis_core.reporters import render_json, render_text

__all__ = ["render_json", "render_text"]
