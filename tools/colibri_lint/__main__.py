"""Entry point for ``python -m tools.colibri_lint``."""

from tools.colibri_lint.cli import main

if __name__ == "__main__":
    main()
