"""colibri-lint: AST-based invariant checker for the Colibri reproduction.

The reproduction's correctness rests on conventions no generic linter
knows about: time flows through injected Clocks (paper §2.3's ±0.1 s sync
assumption), randomness is seeded per component, bandwidths are bits/s
floats built with the units helpers, security checks are not strippable,
and paper constants cite their section.  This package enforces them with
eight pure-stdlib AST rules (CL001-CL008), per-line/per-file suppression
comments, a checked-in baseline for grandfathered findings, and text/JSON
reporters.

Usage::

    python -m tools.colibri_lint src/ tests/
    python -m tools.colibri_lint --list-rules
    python -m tools.colibri_lint src/ --format json

See ``docs/static_analysis.md`` for the rule catalogue and workflow.
"""

from tools.colibri_lint.engine import check_source, lint_paths
from tools.colibri_lint.findings import Finding
from tools.colibri_lint.rules import ALL_RULES, RULES_BY_ID

__all__ = ["check_source", "lint_paths", "Finding", "ALL_RULES", "RULES_BY_ID"]
