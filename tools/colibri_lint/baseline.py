"""Baseline support for colibri-lint.

The mechanics (load / filter / write, matching on ``(path, rule,
line_text)``) are shared with colibri-flow and live in
:mod:`tools.analysis_core.baseline`; this module pins the lint tool's
default file name and comment.
"""

from __future__ import annotations

from pathlib import Path

from tools.analysis_core.baseline import (
    BASELINE_VERSION,
    filter_findings,
    load_baseline,
)
from tools.analysis_core.baseline import write_baseline as _write_baseline

DEFAULT_BASELINE_NAME = ".colibri-lint-baseline.json"


def write_baseline(findings: list, path: Path) -> None:
    _write_baseline(findings, path, tool="colibri-lint")


__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "filter_findings",
    "load_baseline",
    "write_baseline",
]
