"""Compat shim: the :class:`Finding` record now lives in
:mod:`tools.analysis_core.findings`, shared with colibri-flow."""

from __future__ import annotations

from tools.analysis_core.findings import Finding

__all__ = ["Finding"]
