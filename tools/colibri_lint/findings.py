"""The :class:`Finding` record produced by every lint rule."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``line_text`` carries the stripped source line; the baseline matches on
    it (rather than on line numbers) so grandfathered findings survive
    unrelated edits that shift lines around.
    """

    path: str  # posix-style path, relative to the lint root where possible
    line: int
    col: int
    rule_id: str
    message: str
    line_text: str = field(default="", compare=False)

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "line_text": self.line_text,
        }
