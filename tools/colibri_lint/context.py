"""Compat shim: :class:`FileContext` now lives in
:mod:`tools.analysis_core.context`, shared with colibri-flow."""

from __future__ import annotations

from tools.analysis_core.context import FileContext

__all__ = ["FileContext"]
