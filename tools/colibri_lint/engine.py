"""File collection, rule execution, and suppression handling.

Suppression syntax (searched in comments):

* ``# colibri-lint: disable=CL003`` on the offending line silences the
  listed rule(s) (comma-separated; ``all`` silences everything) for that
  line only;
* ``# colibri-lint: disable-file=CL003`` anywhere in a file silences the
  listed rule(s) for the whole file.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Optional

from tools.colibri_lint.context import FileContext
from tools.colibri_lint.findings import Finding
from tools.colibri_lint.rules import ALL_RULES

SUPPRESS_LINE_RE = re.compile(r"colibri-lint:\s*disable=([A-Za-z0-9,\s]+)")
SUPPRESS_FILE_RE = re.compile(r"colibri-lint:\s*disable-file=([A-Za-z0-9,\s]+)")

#: Rule ID used for files the parser rejects; not a real rule, but it
#: must fail the lint run like one.
SYNTAX_ERROR_ID = "CL000"


def _parse_rule_list(raw: str) -> set:
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


def iter_python_files(paths: Iterable) -> list:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            found.append(path)
    return found


def relativize(path: Path, root: Optional[Path] = None) -> str:
    """Posix path relative to ``root`` (default cwd) when possible."""
    base = (root or Path.cwd()).resolve()
    resolved = path.resolve()
    try:
        return resolved.relative_to(base).as_posix()
    except ValueError:
        return resolved.as_posix()


def check_source(source: str, rel_path: str, rules=None) -> list:
    """Lint one in-memory source blob; returns unsuppressed findings."""
    try:
        ctx = FileContext(rel_path, source)
    except SyntaxError as error:
        return [
            Finding(
                path=rel_path,
                line=error.lineno or 1,
                col=error.offset or 0,
                rule_id=SYNTAX_ERROR_ID,
                message=f"file does not parse: {error.msg}",
            )
        ]
    findings = []
    for rule in rules if rules is not None else ALL_RULES:
        if rule.applies_to(ctx):
            findings.extend(rule.check(ctx))
    return sorted(_apply_suppressions(ctx, findings), key=lambda f: f.sort_key)


def _apply_suppressions(ctx: FileContext, findings: list) -> list:
    file_disabled: set = set()
    line_disabled: dict = {}
    for line, comment in ctx.comments.items():
        file_match = SUPPRESS_FILE_RE.search(comment)
        if file_match:
            file_disabled |= _parse_rule_list(file_match.group(1))
        line_match = SUPPRESS_LINE_RE.search(comment)
        if line_match:
            line_disabled.setdefault(line, set()).update(
                _parse_rule_list(line_match.group(1))
            )

    def suppressed(finding: Finding) -> bool:
        if finding.rule_id in file_disabled or "ALL" in file_disabled:
            return True
        on_line = line_disabled.get(finding.line, set())
        return finding.rule_id in on_line or "ALL" in on_line

    return [finding for finding in findings if not suppressed(finding)]


def lint_paths(paths: Iterable, rules=None, root: Optional[Path] = None) -> list:
    """Lint every Python file under ``paths``; returns sorted findings."""
    findings = []
    for file_path in iter_python_files(paths):
        rel_path = relativize(file_path, root)
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            findings.append(
                Finding(
                    path=rel_path,
                    line=1,
                    col=0,
                    rule_id=SYNTAX_ERROR_ID,
                    message=f"file is unreadable: {error}",
                )
            )
            continue
        findings.extend(check_source(source, rel_path, rules=rules))
    return sorted(findings, key=lambda f: f.sort_key)
