"""Rule execution for colibri-lint, on top of :mod:`tools.analysis_core`.

File collection, the per-file AST parse cache, and suppression handling
(``# colibri-lint: disable=...`` / ``disable-file=...``) live in
:mod:`tools.analysis_core.engine`; this module binds them to the lint
rule registry.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional

from tools.analysis_core import GLOBAL_CACHE
from tools.analysis_core.context import FileContext
from tools.analysis_core.engine import (
    SYNTAX_ERROR_ID,
    apply_suppressions,
    iter_python_files,
    relativize,
)
from tools.analysis_core.findings import Finding
from tools.colibri_lint.rules import ALL_RULES

SUPPRESSION_TAG = "colibri-lint"


def check_context(ctx: FileContext, rules=None) -> list:
    """Run the (selected) lint rules over one parsed file."""
    findings = []
    for rule in rules if rules is not None else ALL_RULES:
        if rule.applies_to(ctx):
            findings.extend(rule.check(ctx))
    return sorted(
        apply_suppressions(ctx, findings, SUPPRESSION_TAG),
        key=lambda f: f.sort_key,
    )


def check_source(source: str, rel_path: str, rules=None) -> list:
    """Lint one in-memory source blob; returns unsuppressed findings."""
    try:
        ctx = GLOBAL_CACHE.parse(source, rel_path)
    except SyntaxError as error:
        return [
            Finding(
                path=rel_path,
                line=error.lineno or 1,
                col=error.offset or 0,
                rule_id=SYNTAX_ERROR_ID,
                message=f"file does not parse: {error.msg}",
            )
        ]
    return check_context(ctx, rules)


def lint_paths(paths: Iterable, rules=None, root: Optional[Path] = None) -> list:
    """Lint every Python file under ``paths``; returns sorted findings."""
    findings = []
    for file_path in iter_python_files(paths):
        rel_path = relativize(file_path, root)
        try:
            ctx = GLOBAL_CACHE.get(file_path, rel_path)
        except (OSError, UnicodeDecodeError) as error:
            findings.append(
                Finding(
                    path=rel_path,
                    line=1,
                    col=0,
                    rule_id=SYNTAX_ERROR_ID,
                    message=f"file is unreadable: {error}",
                )
            )
            continue
        except SyntaxError as error:
            findings.append(
                Finding(
                    path=rel_path,
                    line=error.lineno or 1,
                    col=error.offset or 0,
                    rule_id=SYNTAX_ERROR_ID,
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        findings.extend(check_context(ctx, rules))
    return sorted(findings, key=lambda f: f.sort_key)
