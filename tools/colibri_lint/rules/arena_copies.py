"""CL011 — no arena copies inside profiled data-plane hot paths.

The zero-copy wire path exists precisely so the per-packet loop never
materializes a fresh ``bytes`` (``docs/performance.md``, round 2): the
gateway stamps into :class:`~repro.packets.wire.PacketArena` slots and
the router validates straight out of them.  One careless
``bytes(view)`` or ``view.tobytes()`` inside a hot loop silently
reintroduces the very allocation the arena removed — the benchmark
regresses, the tests stay green, nobody notices until the trajectory
file does.

This rule fences the invariant syntactically: inside any
``src/repro/dataplane/`` function decorated ``@profiled(...)`` (the
marker the perf harness uses for hot-path attribution), calling
``bytes(...)`` or ``.tobytes()`` on a memoryview-ish expression is a
finding.  "Memoryview-ish" means the expression is, or is a local
assigned from,

* a ``memoryview(...)`` construction,
* a ``.view()`` call (the :class:`WirePacketView` accessor), or
* a ``.buffer`` attribute (the arena's backing slab).

Deliberate cold-path copies (``WirePacketView.materialize`` on a cache
miss) live in undecorated helpers, outside the fence.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from tools.analysis_core.context import FileContext
from tools.analysis_core.findings import Finding
from tools.colibri_lint.rules.base import Rule

#: The hot-path marker decorator.
HOT_DECORATOR = "profiled"
#: Method calls whose result is a zero-copy window.
VIEW_CALLS = frozenset({"memoryview", "view"})
#: Attributes exposing a shared backing buffer.
VIEW_ATTRS = frozenset({"buffer"})


def _decorator_name(node: ast.expr) -> str:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_profiled(fn: ast.AST) -> bool:
    return any(
        _decorator_name(decorator) == HOT_DECORATOR
        for decorator in getattr(fn, "decorator_list", [])
    )


def _is_view_expr(expr: ast.expr, view_locals: Set[str]) -> bool:
    """Is this expression a zero-copy window (or a local bound to one)?"""
    if isinstance(expr, ast.Name):
        return expr.id in view_locals
    if isinstance(expr, ast.Call):
        func = expr.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        return name in VIEW_CALLS
    if isinstance(expr, ast.Attribute):
        return expr.attr in VIEW_ATTRS
    if isinstance(expr, ast.Subscript):
        # A slice of a view is still a view (memoryview slicing is
        # zero-copy); a slice of anything else is not our business.
        return _is_view_expr(expr.value, view_locals)
    return False


class ArenaCopyRule(Rule):
    rule_id = "CL011"
    name = "no-arena-copies-in-hot-paths"
    rationale = (
        "bytes(view)/.tobytes() on an arena memoryview inside a "
        "@profiled data-plane function reintroduces the per-packet "
        "allocation the zero-copy path removed; copy in a cold-path "
        "helper instead."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.is_production and "/repro/dataplane/" in f"/{ctx.rel_path}"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_profiled(node):
                continue
            yield from self._check_hot_function(ctx, node)

    def _check_hot_function(
        self, ctx: FileContext, fn: ast.AST
    ) -> Iterator[Finding]:
        view_locals: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and _is_view_expr(
                node.value, view_locals
            ):
                view_locals.update(
                    target.id
                    for target in node.targets
                    if isinstance(target, ast.Name)
                )
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "tobytes"
                and _is_view_expr(func.value, view_locals)
            ):
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"hot path {fn.name}() copies an arena view with "
                    ".tobytes(); keep the zero-copy invariant or move the "
                    "copy to an undecorated cold-path helper",
                )
            elif (
                isinstance(func, ast.Name)
                and func.id == "bytes"
                and len(node.args) == 1
                and _is_view_expr(node.args[0], view_locals)
            ):
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"hot path {fn.name}() materializes bytes(...) from an "
                    "arena view; keep the zero-copy invariant or move the "
                    "copy to an undecorated cold-path helper",
                )
