"""Rule interface.

A rule is a small object with an ID (``CLxxx``), a one-line name, and a
``check`` generator over a :class:`~tools.colibri_lint.context.FileContext`.
``applies_to`` lets a rule scope itself to production code, to a single
module, or exclude an allowed module — path discipline lives with the rule
instead of in the engine.
"""

from __future__ import annotations

from typing import Iterator

from tools.analysis_core.context import FileContext
from tools.analysis_core.findings import Finding


class Rule:
    rule_id: str = ""
    name: str = ""
    rationale: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, line: int, col: int, message: str) -> Finding:
        return Finding(
            path=ctx.rel_path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
            line_text=ctx.line_text(line),
        )
