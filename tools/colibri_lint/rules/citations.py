"""CL008 — paper constants must cite their source.

Every value in ``repro/constants.py`` comes from the Colibri paper; a
constant without a section citation cannot be checked against the source
and silently drifts.  Each module-level assignment needs a citation
(``§4.5``, ``Eq. 3``, ``Table 2``, ``Fig. 4``, ``Appendix D``,
``footnote``) either in a trailing comment or in the contiguous
comment/assignment block directly above it (one block comment may cover a
group of related constants).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from tools.analysis_core.context import FileContext
from tools.analysis_core.findings import Finding
from tools.colibri_lint.rules.base import Rule

CITATION_RE = re.compile(r"§\s*\S|Eq\.|Table\s*\d|Fig\.|footnote|Appendix")


class ConstantCitationRule(Rule):
    rule_id = "CL008"
    name = "constants-cite-paper"
    rationale = (
        "Constants in repro/constants.py must carry a paper-section "
        "citation so drift from the source is detectable."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.is_constants_module

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            else:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names:
                continue
            if not self._is_cited(ctx, node.lineno):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"constant {', '.join(names)} lacks a paper citation "
                    "(§/Eq./Table/Fig./Appendix) in a trailing or preceding "
                    "comment",
                )

    def _is_cited(self, ctx: FileContext, lineno: int) -> bool:
        comment = ctx.comments.get(lineno)
        if comment and CITATION_RE.search(comment):
            return True
        # Walk upward through the contiguous block of comments and sibling
        # assignments; a blank line or unrelated statement ends the block.
        line = lineno - 1
        while line >= 1:
            text = ctx.lines[line - 1].strip()
            if not text:
                return False
            comment = ctx.comments.get(line)
            if comment is not None and CITATION_RE.search(comment):
                return True
            is_comment_line = text.startswith("#")
            is_assignment_line = (
                re.match(r"^[A-Za-z_][A-Za-z0-9_]*\s*(?::[^=]+)?=", text) is not None
            )
            if not (is_comment_line or is_assignment_line):
                return False
            line -= 1
        return False
