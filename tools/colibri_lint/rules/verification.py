"""CL007 — MAC/HVF verification results must not be discarded.

Two ways a verification can silently become a no-op:

* a *predicate* verifier (``constant_time_equal``, ``hmac.compare_digest``)
  returns a bool; calling it as a bare statement throws the result away and
  the packet is "verified" no matter what;
* a ``verify*`` function that returns a result instead of raising, called
  for effect only.

The repro's own verifiers (``verify_mac``, ``verify_segment_token``,
``verify_eer_hvf``, ``AuthenticatedRequest.verify_at``, ``verify_grants``)
raise :class:`~repro.errors.MacVerificationError`/:class:`HvfMismatch` on
failure, so statement position is exactly right for them — they are
allowlisted.  Any other ``verify*`` call whose return value is unused is
flagged; if a new raising verifier is added, extend the allowlist (or
suppress with ``# colibri-lint: disable=CL007`` at the call site).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.analysis_core.context import FileContext
from tools.analysis_core.findings import Finding
from tools.colibri_lint.rules.base import Rule

#: Verifiers that raise on failure — calling them as a statement is correct.
RAISING_VERIFIERS = frozenset(
    {
        "verify_mac",
        "verify_at",
        "verify_grants",
        "verify_segment_token",
        "verify_eer_hvf",
    }
)

#: Verifiers that *return* the verdict — discarding it is always a bug.
PREDICATE_VERIFIERS = frozenset({"constant_time_equal", "compare_digest"})


def _call_name(func) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


class DiscardedVerificationRule(Rule):
    rule_id = "CL007"
    name = "no-discarded-verification"
    rationale = (
        "A verification whose result is thrown away accepts every packet; "
        "predicate verifiers must feed a branch/raise, and only known "
        "raising verifiers may be called as statements."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
                continue
            name = _call_name(node.value.func)
            if name in PREDICATE_VERIFIERS:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"result of {name}() is discarded — the comparison has "
                    "no effect; branch on it or raise",
                )
            elif name.startswith("verify") and name not in RAISING_VERIFIERS:
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"return value of {name}() is unused; if it raises on "
                    "failure add it to CL007's raising-verifier allowlist, "
                    "otherwise the check is a no-op",
                )
