"""CL010 — no mutable module-level state in the data plane or crypto.

The shard executor's shared-nothing claim (paper §7.1: linear multi-core
scaling) and the ROADMAP's persistent-worker plans both assume that the
code a shard worker runs reaches no cross-process shared state.  A
module-scope ``dict``/``list``/``set`` is exactly that: under ``fork``
every worker silently inherits (and can diverge from) one copy, under
``spawn`` re-import re-creates it, and either way mutation from two
shards is a race the type system never sees.  ``colibri_flow``'s CF004
proves reachability per submitted entry point; this rule keeps the two
packages where workers live free of such bindings in the first place.

Module-level *immutable* tables stay legal: tuples, ``frozenset``, and
``types.MappingProxyType(...)``-wrapped mappings (the idiom
``repro/dataplane/dscp.py`` uses for its DSCP tables).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.analysis_core.context import FileContext
from tools.analysis_core.findings import Finding
from tools.colibri_lint.rules.base import Rule

#: Constructor names that produce mutable containers.
MUTABLE_CALLS = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "Counter", "deque",
     "OrderedDict"}
)


def _call_name(func) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def is_mutable_container(value) -> bool:
    """Does this expression build a mutable container?

    ``MappingProxyType(...)`` wrappers are immutable views and pass.
    """
    if isinstance(
        value, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)
    ):
        return True
    if isinstance(value, ast.Call):
        return _call_name(value.func) in MUTABLE_CALLS
    return False


class ModuleStateRule(Rule):
    rule_id = "CL010"
    name = "no-module-level-mutable-state"
    rationale = (
        "Module-scope dict/list/set bindings in repro/dataplane and "
        "repro/crypto are cross-shard shared state; use a tuple, "
        "frozenset, or types.MappingProxyType wrapper instead."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if not ctx.is_production:
            return False
        path = f"/{ctx.rel_path}"
        return "/repro/dataplane/" in path or "/repro/crypto/" in path

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if names == ["__all__"]:
                continue
            if is_mutable_container(value):
                label = ", ".join(names) or "<target>"
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"module-level mutable container {label} is cross-shard "
                    "shared state; use a tuple/frozenset or wrap in "
                    "types.MappingProxyType",
                )
