"""CL002 — randomness must be seeded and instance-scoped.

Simulations replay deterministically only if every random draw comes from
a ``random.Random(seed)`` instance owned by the component.  Module-level
``random.choice()`` etc. share hidden global state across components and
test runs, exactly the silent-drift failure mode SIBRA/Hummingbird warn
about for reservation replay.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.analysis_core.context import FileContext
from tools.analysis_core.findings import Finding
from tools.colibri_lint.rules.base import Rule

#: Constructors that are fine to reach through the module: a seeded
#: instance, or the OS entropy source for key material.
ALLOWED_ATTRS = frozenset({"Random", "SystemRandom"})


class UnseededRandomRule(Rule):
    rule_id = "CL002"
    name = "no-module-level-random"
    rationale = (
        "All randomness flows through an explicitly seeded random.Random "
        "instance so simulations replay deterministically."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                ):
                    if func.attr not in ALLOWED_ATTRS:
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"module-level random.{func.attr}() uses hidden "
                            "global state; draw from a seeded "
                            "random.Random(seed) instance",
                        )
                    elif func.attr == "Random" and not node.args and not node.keywords:
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            "random.Random() without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in ALLOWED_ATTRS:
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"from random import {alias.name} pulls a "
                            "global-state function; import random and use a "
                            "seeded random.Random(seed)",
                        )
