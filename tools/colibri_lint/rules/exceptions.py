"""CL004 — no blanket exception swallowing.

``except Exception:`` (or a bare ``except:``) that neither re-raises nor
logs converts every bug — unit mistakes, expired-reservation races, broken
invariants — into silent admission drift.  Handlers must name the specific
exception types they expect, and anything broader must re-raise or at
least log.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.analysis_core.context import FileContext
from tools.analysis_core.findings import Finding
from tools.colibri_lint.rules.base import Rule

BROAD_NAMES = frozenset({"Exception", "BaseException"})
LOG_METHODS = frozenset(
    {"debug", "info", "warning", "warn", "error", "exception", "critical", "log"}
)


def _is_broad(type_node) -> bool:
    if type_node is None:
        return True  # bare except:
    if isinstance(type_node, ast.Name):
        return type_node.id in BROAD_NAMES
    if isinstance(type_node, ast.Tuple):
        return any(_is_broad(element) for element in type_node.elts)
    return False


def _handler_recovers(handler: ast.ExceptHandler) -> bool:
    """True if the handler re-raises or logs what it caught."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in LOG_METHODS
        ):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in LOG_METHODS
        ):
            return True
    return False


class BroadExceptRule(Rule):
    rule_id = "CL004"
    name = "no-silent-broad-except"
    rationale = (
        "Blanket except Exception handlers that neither re-raise nor log "
        "turn bugs into silent reservation drift; catch the specific types "
        "the call site actually raises."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node.type) and not _handler_recovers(node):
                label = (
                    "bare except:"
                    if node.type is None
                    else "blanket except Exception:"
                )
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"{label} swallows errors silently; catch the specific "
                    "exception types expected here, or re-raise/log",
                )
