"""CL005 — bandwidth literals must go through the units helpers.

Bandwidths inside the library are floats in **bits per second**
(`repro/util/units.py`).  A literal like ``bandwidth=0.4`` almost always
means "0.4 Gbps" (Table 2's reservation 1) but is read as 0.4 bps — a
nine-order-of-magnitude silent unit error, the SIBRA-class monitoring bug.
Any positive numeric literal below 1 Kbps bound to a bandwidth-flavoured
keyword or default is flagged; write ``gbps(0.4)`` / ``mbps(4)`` instead.
Literal ``0``/``0.0`` stays legal (explicit "no bandwidth").
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.analysis_core.context import FileContext
from tools.analysis_core.findings import Finding
from tools.colibri_lint.rules.base import Rule

UNIT_KEYWORDS = frozenset(
    {
        "bandwidth",
        "capacity",
        "rate",
        "min_bandwidth",
        "max_bandwidth",
        "bandwidth_bps",
        "link_capacity",
    }
)

#: Anything below 1 Kbps bound to a bandwidth keyword is almost certainly
#: a value in the wrong unit (a reservation of < 1000 bps is nonsense).
SUSPICIOUS_BELOW = 1_000.0


def _suspicious_literal(node) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and 0 < node.value < SUSPICIOUS_BELOW
    )


class UnitLiteralRule(Rule):
    rule_id = "CL005"
    name = "use-unit-helpers"
    rationale = (
        "Bandwidths are bits/s floats; sub-Kbps literals on bandwidth "
        "keywords are unit mistakes — use gbps()/mbps()/kbps() from "
        "repro.util.units."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.is_production

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg in UNIT_KEYWORDS and _suspicious_literal(
                        keyword.value
                    ):
                        value = keyword.value.value
                        yield self.finding(
                            ctx,
                            keyword.value.lineno,
                            keyword.value.col_offset,
                            f"{keyword.arg}={value!r} is {value} bits/s — "
                            f"almost certainly a unit error; write "
                            f"gbps({value!r}) or mbps({value!r}) from "
                            "repro.util.units",
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(ctx, node)

    def _check_defaults(self, ctx: FileContext, node) -> Iterator[Finding]:
        positional = node.args.posonlyargs + node.args.args
        defaults = node.args.defaults
        paired = list(zip(positional[len(positional) - len(defaults) :], defaults))
        paired += [
            (arg, default)
            for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults)
            if default is not None
        ]
        for arg, default in paired:
            if arg.arg in UNIT_KEYWORDS and _suspicious_literal(default):
                value = default.value
                yield self.finding(
                    ctx,
                    default.lineno,
                    default.col_offset,
                    f"default {arg.arg}={value!r} is {value} bits/s — "
                    f"almost certainly a unit error; write gbps({value!r}) "
                    f"or mbps({value!r}) from repro.util.units",
                )
