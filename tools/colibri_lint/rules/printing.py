"""CL009 — no ``print`` or ad-hoc ``logging`` in library code.

The library's sanctioned output channels are structured: journal events
(:mod:`repro.obs.events`), metrics instruments, and trace spans.  A
``print`` in a control- or data-plane module writes unparseable text to
stdout — invisible to the SLO engine, the forensic verifier, and every
test — and ``logging`` smuggles in global mutable configuration the
deterministic scenarios cannot control.  The CLI (``repro/cli.py``) is
the one place whose entire job is printing; it is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.analysis_core.context import FileContext
from tools.analysis_core.findings import Finding
from tools.colibri_lint.rules.base import Rule


class LibraryPrintRule(Rule):
    rule_id = "CL009"
    name = "no-library-print"
    rationale = (
        "library code must report through journal events, metrics, or "
        "spans — print()/logging output is invisible to the SLO engine "
        "and the forensic verifier."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.is_production and not ctx.rel_path.endswith("repro/cli.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "print() in library code; emit a journal event, metric, "
                    "or span instead",
                )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "logging" or alias.name.startswith("logging."):
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            "ad-hoc logging in library code; the sanctioned "
                            "channels are journal events, metrics, and spans",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "logging":
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "ad-hoc logging in library code; the sanctioned channels "
                    "are journal events, metrics, and spans",
                )
