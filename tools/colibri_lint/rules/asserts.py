"""CL003 — no bare ``assert`` in production code.

``python -O`` strips assert statements.  A data-plane or crypto check
written as an assert (e.g. a MAC tag-length guard) silently disappears in
optimized deployments — the exact "strippable check" failure the paper's
security argument (§4.5-§4.6) cannot tolerate.  Production code raises
typed exceptions from :mod:`repro.errors` instead; tests may assert freely.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.analysis_core.context import FileContext
from tools.analysis_core.findings import Finding
from tools.colibri_lint.rules.base import Rule


class ProductionAssertRule(Rule):
    rule_id = "CL003"
    name = "no-production-assert"
    rationale = (
        "assert statements vanish under python -O; production invariants "
        "must raise typed exceptions from repro.errors."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.is_production

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "bare assert is stripped under python -O; raise a typed "
                    "exception from repro.errors instead",
                )
