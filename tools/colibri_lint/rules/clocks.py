"""CL001 — all time must flow through the Clock abstraction.

The paper assumes ASes are synchronized within ±0.1 s (§2.3); DESIGN's
clock discipline models that by injecting a :class:`repro.util.clock.Clock`
everywhere.  A component that reads ``time.time()`` directly bypasses the
``SimClock``/``SkewedClock`` machinery, making simulations nondeterministic
and skew untestable.  Only ``repro/util/clock.py`` may touch :mod:`time`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.analysis_core.context import FileContext
from tools.analysis_core.findings import Finding
from tools.colibri_lint.rules.base import Rule

CLOCK_READS = frozenset(
    {
        "time",
        "monotonic",
        "perf_counter",
        "time_ns",
        "monotonic_ns",
        "perf_counter_ns",
        "clock_gettime",
    }
)


class DirectClockRule(Rule):
    rule_id = "CL001"
    name = "no-direct-clock"
    rationale = (
        "Components must take a Clock (repro.util.clock); direct time.time()/"
        "time.monotonic() calls break SimClock determinism and the ±0.1 s "
        "skew model of paper §2.3."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.is_clock_module

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in CLOCK_READS
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                ):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"direct clock read time.{func.attr}(); inject a "
                        "repro.util.clock.Clock and call .now() instead",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in CLOCK_READS:
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"importing {alias.name} from time invites direct "
                            "clock reads; inject a Clock instead",
                        )
