"""Rule registry: every shipped rule, in rule-ID order."""

from __future__ import annotations

from tools.colibri_lint.rules.arena_copies import ArenaCopyRule
from tools.colibri_lint.rules.asserts import ProductionAssertRule
from tools.colibri_lint.rules.base import Rule
from tools.colibri_lint.rules.citations import ConstantCitationRule
from tools.colibri_lint.rules.clocks import DirectClockRule
from tools.colibri_lint.rules.exceptions import BroadExceptRule
from tools.colibri_lint.rules.module_state import ModuleStateRule
from tools.colibri_lint.rules.mutable_defaults import MutableDefaultRule
from tools.colibri_lint.rules.printing import LibraryPrintRule
from tools.colibri_lint.rules.randomness import UnseededRandomRule
from tools.colibri_lint.rules.units import UnitLiteralRule
from tools.colibri_lint.rules.verification import DiscardedVerificationRule

ALL_RULES: list = [
    DirectClockRule(),
    UnseededRandomRule(),
    ProductionAssertRule(),
    BroadExceptRule(),
    UnitLiteralRule(),
    MutableDefaultRule(),
    DiscardedVerificationRule(),
    ConstantCitationRule(),
    LibraryPrintRule(),
    ModuleStateRule(),
    ArenaCopyRule(),
]

RULES_BY_ID: dict = {rule.rule_id: rule for rule in ALL_RULES}

__all__ = ["Rule", "ALL_RULES", "RULES_BY_ID"]
