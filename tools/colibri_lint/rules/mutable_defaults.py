"""CL006 — no mutable default arguments.

A ``def f(hops=[])`` default is created once and shared by every call —
state leaks across reservations, simulations stop being independent, and
replays diverge.  Use ``None`` plus an in-body default.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.analysis_core.context import FileContext
from tools.analysis_core.findings import Finding
from tools.colibri_lint.rules.base import Rule

MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _is_mutable(node) -> bool:
    if isinstance(node, MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in MUTABLE_CONSTRUCTORS
    )


class MutableDefaultRule(Rule):
    rule_id = "CL006"
    name = "no-mutable-defaults"
    rationale = (
        "Mutable defaults are shared across calls, leaking state between "
        "reservations and breaking replay independence."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            all_defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in all_defaults:
                if _is_mutable(default):
                    yield self.finding(
                        ctx,
                        default.lineno,
                        default.col_offset,
                        "mutable default argument is shared across calls; "
                        "use None and create the value in the body",
                    )
