"""Development tooling for the Colibri reproduction (not shipped with the library)."""
