#!/usr/bin/env python
"""Gate benchmark throughput against the recorded trajectory.

``benchmark_results/trajectory.jsonl`` accumulates one entry per bench
run (appended by ``benchmarks/_helpers.report_json``, deduplicated by
content-hash run id).  This tool compares, per bench, the **latest**
entry against the **best prior** throughput recorded for each matching
configuration, and exits non-zero when the geometric-mean ratio across
matched configurations regresses by more than the threshold (15% by
default).

Configurations are matched exactly (the sorted-JSON form of the
``config`` dict), so a quick-mode CI run with shrunken sweep axes is
only compared against prior runs of the same axes — never against the
committed full-sweep numbers.  A bench with a single entry, or with no
configuration overlap against its history, passes vacuously.

Usage::

    python tools/bench_regress.py [--trajectory PATH] [--threshold 0.15]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

DEFAULT_TRAJECTORY = os.path.join(
    os.path.dirname(__file__), "..", "benchmark_results", "trajectory.jsonl"
)
DEFAULT_THRESHOLD = 0.15


def load_trajectory(path: str) -> dict:
    """Entries grouped by bench name, file order (oldest first)."""
    by_name: dict = {}
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            by_name.setdefault(entry["name"], []).append(entry)
    return by_name


def best_prior_by_config(priors: list) -> dict:
    """Best recorded pps per exact configuration across prior runs."""
    best: dict = {}
    for run in priors:
        for row in run["results"]:
            key = json.dumps(row["config"], sort_keys=True)
            pps = float(row["pps"])
            if pps > best.get(key, 0.0):
                best[key] = pps
    return best


def config_deltas(latest: dict, priors: list) -> list:
    """Per-configuration comparison rows for the latest run:
    ``(config_key, baseline_pps, current_pps)`` for every configuration
    shared with the history, in latest-run order."""
    best = best_prior_by_config(priors)
    rows = []
    for row in latest["results"]:
        key = json.dumps(row["config"], sort_keys=True)
        prior = best.get(key)
        if prior and prior > 0:
            rows.append((key, prior, float(row["pps"])))
    return rows


def compare(latest: dict, priors: list):
    """``(geomean_ratio, matched)`` for the latest run vs its history;
    ``(None, 0)`` when no configuration overlaps."""
    ratios = [
        current / baseline
        for _, baseline, current in config_deltas(latest, priors)
    ]
    if not ratios:
        return None, 0
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    return geomean, len(ratios)


def delta_table(rows: list) -> list:
    """Human-readable per-config lines: which configuration moved, from
    what baseline, by how much — so a gate failure names the culprit
    instead of just the aggregate."""
    lines = [
        f"  {'config':<64} | {'baseline':>10} | {'current':>10} | {'delta':>7}"
    ]
    for key, baseline, current in rows:
        delta = (current / baseline - 1.0) * 100.0
        lines.append(
            f"  {key:<64} | {baseline:>10.1f} | {current:>10.1f} | "
            f"{delta:>+6.1f}%"
        )
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trajectory", default=DEFAULT_TRAJECTORY)
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="maximum tolerated fractional throughput regression",
    )
    args = parser.parse_args(argv)
    if not os.path.exists(args.trajectory):
        print(f"bench-regress: no trajectory at {args.trajectory}; nothing to gate")
        return 0
    failures = []
    for name, runs in sorted(load_trajectory(args.trajectory).items()):
        latest, priors = runs[-1], runs[:-1]
        if not priors:
            print(f"{name}: first recorded run ({latest['run_id']}), baseline set")
            continue
        geomean, matched = compare(latest, priors)
        if geomean is None:
            print(f"{name}: no configurations shared with prior runs, skipped")
            continue
        verdict = "OK"
        if geomean < 1.0 - args.threshold:
            verdict = "REGRESSION"
            failures.append((name, geomean, config_deltas(latest, priors)))
        print(
            f"{name}: {matched} matched configs, throughput x{geomean:.3f} "
            f"vs best prior — {verdict}"
        )
    if failures:
        for name, geomean, rows in failures:
            print(
                f"bench-regress: {name} throughput regressed to "
                f"{geomean:.3f}x of the best recorded run "
                f"(threshold {1.0 - args.threshold:.2f}x)",
                file=sys.stderr,
            )
            for line in delta_table(rows):
                print(line, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
