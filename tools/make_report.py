#!/usr/bin/env python3
"""Collate benchmark_results/ into a single REPRODUCTION_REPORT.md.

Run after ``pytest benchmarks/ --benchmark-only``:

    python tools/make_report.py

The report orders the artifacts paper-first (figures, table, appendix),
then the supporting measurements and ablations, each as the exact text
the bench emitted — so the report always reflects the latest run on
*this* machine rather than numbers copied by hand.
"""

from __future__ import annotations

import os
import sys

RESULTS = os.path.join(os.path.dirname(__file__), "..", "benchmark_results")
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "REPRODUCTION_REPORT.md")

#: Paper-first presentation order; anything not listed lands at the end.
ORDER = [
    "fig3_segr_admission",
    "fig3_throughput",
    "fig4_eer_admission",
    "fig4_throughput",
    "fig5_gateway",
    "fig6_scaling",
    "fig6_parallel_measured",
    "table2_protection",
    "appendix_e_payload",
    "control_load_segr",
    "control_load_eer",
    "control_load_renewal",
    "latency_protection",
    "churn",
    "topology_scale",
    "crypto_micro",
    "memory_footprint",
    "ofd_comparison",
    "ablation_memoization",
    "ablation_two_step_mac",
    "ablation_isolation",
    "baseline_state",
    "baseline_refresh",
    "baseline_guarantees",
]

HEADER = """# Reproduction report

Auto-generated from the latest `pytest benchmarks/ --benchmark-only`
run on this machine (`python tools/make_report.py`).  Paper-vs-measured
analysis and shape-claim discussion live in EXPERIMENTS.md; this file is
the raw regenerated evidence.

"""


def main() -> int:
    if not os.path.isdir(RESULTS):
        print("no benchmark_results/ — run the benchmark suite first", file=sys.stderr)
        return 1
    available = {name[:-4] for name in os.listdir(RESULTS) if name.endswith(".txt")}
    ordered = [name for name in ORDER if name in available]
    ordered += sorted(available - set(ORDER))
    sections = [HEADER]
    for name in ordered:
        with open(os.path.join(RESULTS, f"{name}.txt")) as handle:
            body = handle.read().rstrip()
        sections.append(f"```\n{body}\n```\n")
    with open(OUTPUT, "w") as handle:
        handle.write("\n".join(sections))
    print(f"wrote {os.path.relpath(OUTPUT)} with {len(ordered)} result blocks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
