"""The :class:`Finding` record produced by every analysis rule.

Shared by ``colibri_lint`` (local AST rules) and ``colibri_flow``
(interprocedural rules).  Flow findings may carry a *taint trace* — the
chain of source locations a value travelled through before reaching the
flagged sink — rendered indented under the finding by the text reporter
and as a ``trace`` array in JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceStep:
    """One hop of a taint/flow trace attached to a finding."""

    path: str
    line: int
    note: str

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "note": self.note}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``line_text`` carries the stripped source line; the baseline matches on
    it (rather than on line numbers) so grandfathered findings survive
    unrelated edits that shift lines around.
    """

    path: str  # posix-style path, relative to the analysis root where possible
    line: int
    col: int
    rule_id: str
    message: str
    line_text: str = field(default="", compare=False)
    #: Flow rules attach the path a value took from source to sink;
    #: empty for single-location (lint) findings.  Not part of identity:
    #: the same defect reported with a longer or shorter trace is still
    #: the same defect.
    trace: tuple = field(default=(), compare=False)

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> dict:
        payload = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "line_text": self.line_text,
        }
        if self.trace:
            payload["trace"] = [step.to_dict() for step in self.trace]
        return payload
