"""File collection and suppression handling shared by both tools.

Suppression syntax (searched in comments; ``TAG`` is the tool's name,
``colibri-lint`` or ``colibri-flow``):

* ``# TAG: disable=CL003`` on the offending line silences the listed
  rule(s) (comma-separated; ``all`` silences everything) for that line
  only;
* ``# TAG: disable-file=CL003`` anywhere in a file silences the listed
  rule(s) for the whole file.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Optional

from tools.analysis_core.context import FileContext
from tools.analysis_core.findings import Finding

#: Rule ID used for files the parser rejects; not a real rule, but it
#: must fail an analysis run like one.
SYNTAX_ERROR_ID = "CL000"


def _parse_rule_list(raw: str) -> set:
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


def iter_python_files(paths: Iterable) -> list:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            found.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            found.append(path)
    return found


def relativize(path: Path, root: Optional[Path] = None) -> str:
    """Posix path relative to ``root`` (default cwd) when possible."""
    base = (root or Path.cwd()).resolve()
    resolved = path.resolve()
    try:
        return resolved.relative_to(base).as_posix()
    except ValueError:
        return resolved.as_posix()


def suppression_patterns(tag: str) -> tuple:
    """Compiled ``(line, file)`` suppression regexes for a tool tag."""
    return (
        re.compile(rf"{re.escape(tag)}:\s*disable=([A-Za-z0-9,\s]+)"),
        re.compile(rf"{re.escape(tag)}:\s*disable-file=([A-Za-z0-9,\s]+)"),
    )


def apply_suppressions(ctx: FileContext, findings: list, tag: str) -> list:
    """Drop findings silenced by ``# TAG: disable=...`` comments."""
    line_re, file_re = suppression_patterns(tag)
    file_disabled: set = set()
    line_disabled: dict = {}
    for line, comment in ctx.comments.items():
        file_match = file_re.search(comment)
        if file_match:
            file_disabled |= _parse_rule_list(file_match.group(1))
        line_match = line_re.search(comment)
        if line_match:
            line_disabled.setdefault(line, set()).update(
                _parse_rule_list(line_match.group(1))
            )

    def suppressed(finding: Finding) -> bool:
        if finding.rule_id in file_disabled or "ALL" in file_disabled:
            return True
        on_line = line_disabled.get(finding.line, set())
        return finding.rule_id in on_line or "ALL" in on_line

    return [finding for finding in findings if not suppressed(finding)]
