"""Combined runner: colibri-lint + colibri-flow in one process.

``make lint`` executes ``python -m tools.analysis_core`` so both tools
share :data:`~tools.analysis_core.cache.GLOBAL_CACHE` — every file under
``src`` is parsed exactly once even though lint checks it file-by-file
and flow loads it into a whole-program model.  Reports and baselines
stay per-tool (``.colibri-lint-baseline.json`` /
``.colibri-flow-baseline.json``); the combined exit code is 1 if either
tool reports a non-grandfathered finding.
"""

from __future__ import annotations

import sys
from pathlib import Path

from tools.analysis_core import baseline as baseline_mod
from tools.analysis_core.reporters import render_text

#: What each tool covers in a combined run (lint sweeps the whole repo's
#: Python, flow reasons about the production protocol tree).
LINT_PATHS = ("src", "tests", "tools")
FLOW_PATHS = ("src/repro",)


def run(argv=None) -> int:
    from tools.colibri_flow.api import analyze_paths
    from tools.colibri_flow.cli import DEFAULT_BASELINE_NAME as FLOW_BASELINE
    from tools.colibri_lint import baseline as lint_baseline_mod
    from tools.colibri_lint.engine import lint_paths

    argv = list(sys.argv[1:] if argv is None else argv)
    if argv:
        print(
            "usage: python -m tools.analysis_core  (no arguments; use "
            "`python -m tools.colibri_lint` or `python -m colibri_flow` "
            "for per-tool options)",
            file=sys.stderr,
        )
        return 2

    exit_code = 0

    lint_findings = lint_paths(list(LINT_PATHS))
    known = lint_baseline_mod.load_baseline(
        Path(lint_baseline_mod.DEFAULT_BASELINE_NAME)
    )
    lint_findings, lint_old = lint_baseline_mod.filter_findings(
        lint_findings, known
    )
    print(
        render_text(
            lint_findings, grandfathered_count=len(lint_old), tool="colibri-lint"
        )
    )
    if lint_findings:
        exit_code = 1

    flow_findings, _ = analyze_paths(list(FLOW_PATHS))
    known = baseline_mod.load_baseline(Path(FLOW_BASELINE))
    flow_findings, flow_old = baseline_mod.filter_findings(flow_findings, known)
    print(
        render_text(
            flow_findings, grandfathered_count=len(flow_old), tool="colibri-flow"
        )
    )
    if flow_findings:
        exit_code = 1

    return exit_code


def main() -> None:
    raise SystemExit(run())
