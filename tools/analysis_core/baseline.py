"""Baseline (grandfathered findings) support, shared by both tools.

The baseline is a checked-in JSON file listing findings that predate an
analyzer.  Entries match on ``(path, rule, line_text)`` — not line
numbers — so unrelated edits that shift code around don't resurrect
grandfathered findings, while any edit to the offending line itself
forces a fix.

Workflow: ``python -m tools.colibri_lint src/ --update-baseline`` (or the
colibri-flow equivalent) rewrites the tool's file from the current
findings; review the diff and commit it.  The goal is an empty baseline —
new code must never be added to it.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from tools.analysis_core.findings import Finding

BASELINE_VERSION = 1


def _entry_key(path: str, rule: str, line_text: str) -> tuple:
    return (path, rule, line_text.strip())


def _finding_key(finding: Finding) -> tuple:
    return _entry_key(finding.path, finding.rule_id, finding.line_text)


def load_baseline(path: Path) -> Counter:
    """Multiset of grandfathered finding keys (empty if no file)."""
    if not path.is_file():
        return Counter()
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("findings", [])
    return Counter(
        _entry_key(entry["path"], entry["rule"], entry.get("line_text", ""))
        for entry in entries
    )


def filter_findings(findings: list, baseline: Counter) -> tuple:
    """Split findings into (new, grandfathered) against the baseline."""
    remaining = Counter(baseline)
    new, grandfathered = [], []
    for finding in findings:
        key = _finding_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered


def write_baseline(findings: list, path: Path, tool: str = "analysis") -> None:
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            f"Grandfathered {tool} findings. Shrink this file; never "
            "add to it. Regenerate with --update-baseline and review the "
            "diff."
        ),
        "findings": [
            {
                "path": finding.path,
                "rule": finding.rule_id,
                "line_text": finding.line_text.strip(),
            }
            for finding in findings
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
