"""``python -m tools.analysis_core`` — combined lint + flow run."""

from tools.analysis_core.cli import main

if __name__ == "__main__":
    main()
