"""Finding reporters: human-readable text and machine-readable JSON.

Shared by both tools; flow findings additionally render their taint
trace — indented ``via`` lines in text, a ``trace`` array in JSON.  The
JSON schema is documented in docs/static_analysis.md and is stable:
``{"tool", "findings": [{path, line, col, rule, message, line_text,
trace?}], "count", "grandfathered"}``.
"""

from __future__ import annotations

import json
from collections import Counter


def render_text(findings: list, grandfathered_count: int = 0, tool: str = "colibri-lint") -> str:
    lines = []
    for finding in findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule_id} {finding.message}"
        )
        for step in finding.trace:
            lines.append(f"    via {step.path}:{step.line}: {step.note}")
    if findings:
        per_rule = Counter(finding.rule_id for finding in findings)
        breakdown = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(per_rule.items())
        )
        lines.append("")
        lines.append(f"{len(findings)} finding(s) ({breakdown})")
    else:
        lines.append(f"{tool}: clean")
    if grandfathered_count:
        lines.append(f"{grandfathered_count} grandfathered finding(s) in baseline")
    return "\n".join(lines)


def render_json(findings: list, grandfathered_count: int = 0, tool: str = "colibri-lint") -> str:
    payload = {
        "tool": tool,
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
        "grandfathered": grandfathered_count,
    }
    return json.dumps(payload, indent=2)
