"""Per-file analysis context shared by all rules of all tools.

A :class:`FileContext` parses one Python source file once (AST plus a
comment map extracted with :mod:`tokenize`) and answers the path-scoping
questions rules care about: is this production library code under
``src/repro``, is it the one module allowed to read the wall clock, and
so on.  Contexts are cached process-wide by
:class:`tools.analysis_core.cache.AstCache`, so a run of both tools
parses each file exactly once.
"""

from __future__ import annotations

import ast
import io
import tokenize


class FileContext:
    """Parsed view of one source file handed to every rule."""

    def __init__(self, rel_path: str, source: str):
        #: Posix-style path used in findings, scoping and baselines.
        self.rel_path = rel_path.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=self.rel_path)
        #: line number -> comment text (including the leading ``#``).
        self.comments: dict[int, str] = {}
        try:
            for token in tokenize.generate_tokens(io.StringIO(source).readline):
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string
        except tokenize.TokenizeError:
            # ast.parse accepted the file, so the comment map is merely
            # incomplete; rules degrade to "no suppressions seen".
            pass

    # -- path scoping ----------------------------------------------------------

    @property
    def parts(self) -> tuple:
        return tuple(part for part in self.rel_path.split("/") if part)

    @property
    def filename(self) -> str:
        return self.parts[-1] if self.parts else self.rel_path

    @property
    def is_test(self) -> bool:
        return "tests" in self.parts or self.filename.startswith("test_")

    @property
    def is_production(self) -> bool:
        """Library code under ``repro`` — where strict rules apply."""
        return "repro" in self.parts and not self.is_test

    @property
    def is_clock_module(self) -> bool:
        return self.rel_path.endswith("repro/util/clock.py")

    @property
    def is_constants_module(self) -> bool:
        return self.rel_path.endswith("repro/constants.py")

    @property
    def is_obs_module(self) -> bool:
        """Inside the observability machinery itself (``repro/obs/``)."""
        return "/repro/obs/" in f"/{self.rel_path}"

    @property
    def module_name(self) -> str:
        """Dotted module name derived from the path.

        Strips a leading ``src/`` source root, drops the ``.py`` suffix,
        and maps ``__init__`` files onto their package — the name the
        flow analyzer's import resolution keys on.
        """
        parts = list(self.parts)
        if parts and parts[0] == "src":
            parts = parts[1:]
        if not parts:
            return ""
        last = parts[-1]
        if last.endswith(".py"):
            last = last[: -len(".py")]
        if last == "__init__":
            parts = parts[:-1]
        else:
            parts = parts[:-1] + [last]
        return ".".join(parts)

    # -- helpers ---------------------------------------------------------------

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""
