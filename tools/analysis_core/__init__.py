"""Shared infrastructure for the repo's static-analysis tools.

Two tools sit on top of this package:

* ``tools/colibri_lint`` — single-file AST rules (CL001-CL010);
* ``tools/colibri_flow`` — the interprocedural protocol-invariant
  analyzer (CF001-CF004, docs/static_analysis.md "Flow analysis").

They share one :class:`~tools.analysis_core.findings.Finding` record,
one baseline format, one suppression syntax (parameterized by tool tag),
one reporter pair, and — crucially — one per-file AST parse cache
(:mod:`tools.analysis_core.cache`), so a combined run (``make lint``,
which executes ``python -m tools.analysis_core``) parses every source
file exactly once no matter how many tools inspect it.
"""

from __future__ import annotations

from tools.analysis_core.baseline import (
    BASELINE_VERSION,
    filter_findings,
    load_baseline,
    write_baseline,
)
from tools.analysis_core.cache import AstCache, GLOBAL_CACHE
from tools.analysis_core.context import FileContext
from tools.analysis_core.engine import (
    SYNTAX_ERROR_ID,
    apply_suppressions,
    iter_python_files,
    relativize,
)
from tools.analysis_core.findings import Finding, TraceStep
from tools.analysis_core.reporters import render_json, render_text

__all__ = [
    "AstCache",
    "BASELINE_VERSION",
    "FileContext",
    "Finding",
    "GLOBAL_CACHE",
    "SYNTAX_ERROR_ID",
    "TraceStep",
    "apply_suppressions",
    "filter_findings",
    "iter_python_files",
    "load_baseline",
    "relativize",
    "render_json",
    "render_text",
    "write_baseline",
]
