"""Process-wide AST parse cache.

Both analysis tools ask for :class:`~tools.analysis_core.context.FileContext`
objects through here.  The cache keys on the resolved filesystem path, so
a combined run (``python -m tools.analysis_core``, which executes
colibri-lint *and* colibri-flow) parses each source file exactly once —
``parse_count`` exists so tests can assert that.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from tools.analysis_core.context import FileContext


class AstCache:
    """Path-keyed cache of parsed :class:`FileContext` objects."""

    def __init__(self):
        self._contexts: dict = {}
        #: Number of actual ``ast.parse`` invocations (cache misses).
        self.parse_count = 0

    def get(self, file_path: Path, rel_path: str) -> FileContext:
        """The parsed context for ``file_path``, reading it on first use.

        Raises ``OSError``/``UnicodeDecodeError`` if the file is
        unreadable and ``SyntaxError`` if it does not parse — callers
        turn those into ``CL000``/``CF000`` findings.
        """
        key = str(Path(file_path).resolve())
        cached = self._contexts.get(key)
        if cached is not None:
            return cached
        source = Path(file_path).read_text(encoding="utf-8")
        ctx = self.parse(source, rel_path)
        self._contexts[key] = ctx
        return ctx

    def parse(self, source: str, rel_path: str) -> FileContext:
        """Parse an in-memory blob (not cached — no stable key)."""
        self.parse_count += 1
        return FileContext(rel_path, source)

    def invalidate(self, file_path: Optional[Path] = None) -> None:
        if file_path is None:
            self._contexts.clear()
        else:
            self._contexts.pop(str(Path(file_path).resolve()), None)


#: The cache shared by every tool in this process.
GLOBAL_CACHE = AstCache()
