#!/usr/bin/env python
"""Gate the observability cost of the zero-copy wire path.

``send_batch_wire`` promises 0% overhead when observability is
disabled: the only addition over the pre-obs code is one ``self.obs``
attribute read per burst.  This tool measures that promise and fails
when it breaks, timing three modes over identical pregenerated bursts:

* **baseline** — the structural equivalent of the pre-obs path:
  ``arena.reset()`` + ``_send_burst_wire(...)`` called directly, no
  obs check at all;
* **disabled** — ``send_batch_wire`` with ``gateway.obs = None`` (the
  shipped default everyone who never enables obs runs);
* **enabled** — ``send_batch_wire`` with a ``SamplingProfiler`` at the
  default sampling period, for the informational overhead figure.

Rounds interleave the modes (baseline, disabled, enabled, repeat) so a
frequency ramp or a noisy neighbour hits all three equally, and each
mode keeps its best round — shared-host noise only ever slows a sample
down.  The gate: disabled throughput must stay within ``--threshold``
(default 2%) of baseline.  The enabled figure is reported but not
gated — sampling costs what it costs, by design, and only when asked
for.

Usage::

    PYTHONPATH=src python tools/obs_overhead.py [--rounds 5]
        [--duration 0.08] [--threshold 0.02]
"""
# This tool *is* a wall-clock benchmark; the injected-Clock rule does
# not apply here.
# colibri-lint: disable-file=CL001

from __future__ import annotations

import argparse
import random
import sys
import time

from repro.constants import EER_LIFETIME
from repro.dataplane.gateway import ColibriGateway
from repro.obs import ObsContext
from repro.obs.sampling import SamplingProfiler
from repro.packets.colibri import ColibriPacket
from repro.packets.fields import EerInfo, PathField, ResInfo
from repro.packets.wire import PacketArena
from repro.reservation.ids import ReservationId
from repro.topology.addresses import HostAddr, IsdAs
from repro.util.clock import SimClock
from repro.util.units import gbps

SRC = IsdAs(1, 0xFF00_0000_0000 + 1)
PATH_LENGTH = 4
RESERVATIONS = 2**10
BATCH = 64


def build_gateway():
    """A fig5-style gateway: 2^10 EERs on 4-AS paths, synthetic
    HopAuths (the gateway only MACs under them)."""
    clock = SimClock(1000.0)
    gateway = ColibriGateway(SRC, clock)
    rng = random.Random(42)
    pairs = [(0, 1)] + [(2, 3)] * (PATH_LENGTH - 2) + [(4, 0)]
    path = PathField(tuple(pairs))
    eer_info = EerInfo(HostAddr(1), HostAddr(2))
    expiry = clock.now() + EER_LIFETIME * 1000
    ids = []
    for index in range(RESERVATIONS):
        res_id = ReservationId(SRC, index + 1)
        res_info = ResInfo(
            reservation=res_id, bandwidth=gbps(1000), expiry=expiry, version=1
        )
        hop_auths = tuple(
            rng.getrandbits(128).to_bytes(16, "big")
            for _ in range(PATH_LENGTH)
        )
        gateway.install(res_id, path, eer_info, res_info, hop_auths)
        ids.append(res_id)
    return gateway, ids


def make_batches(ids, rng, count, batch=BATCH):
    n = len(ids)
    return [
        [(ids[rng.randrange(n)], b"") for _ in range(batch)]
        for _ in range(count)
    ]


def timed_pps(send_one, gateway, batches, duration):
    """Sustained throughput of ``send_one(requests)`` cycling over the
    pregenerated bursts, one virtual microsecond per burst (Ts
    uniqueness; see benchmarks/test_fig5_gateway.py)."""
    send_one(batches[0])  # warm up
    advance = gateway.clock.advance
    count = len(batches)
    index = 0
    done = 0
    start = time.perf_counter()
    while time.perf_counter() - start < duration:
        send_one(batches[index])
        advance(1e-6)
        done += BATCH
        index += 1
        if index == count:
            index = 0
    return done / (time.perf_counter() - start)


def measure(rounds: int, duration: float) -> dict:
    """Best-of-``rounds`` pps per mode, rounds interleaved."""
    gateway, ids = build_gateway()
    batches = make_batches(ids, random.Random(7), count=256)
    arena = PacketArena(
        slots=BATCH, slot_size=ColibriPacket.header_size_for(PATH_LENGTH)
    )

    def baseline(requests):
        arena.reset()
        gateway._send_burst_wire(requests, arena, gateway.clock.now())

    def through_api(requests):
        gateway.send_batch_wire(requests, arena)

    obs = ObsContext.create(gateway.clock, seed=7)
    obs.sampler = SamplingProfiler()

    modes = [("baseline", None), ("disabled", None), ("enabled", obs)]
    best = {name: 0.0 for name, _ in modes}
    # Saturate the CPU governor and every lazy cache before the first
    # measured sample, then rotate which mode goes first each round —
    # otherwise a frequency ramp systematically flatters whichever mode
    # happens to run last.
    gateway.obs = None
    timed_pps(through_api, gateway, batches, duration)
    for round_index in range(rounds):
        for offset in range(len(modes)):
            name, obs_value = modes[(round_index + offset) % len(modes)]
            gateway.obs = obs_value
            send_one = baseline if name == "baseline" else through_api
            pps = timed_pps(send_one, gateway, batches, duration)
            if pps > best[name]:
                best[name] = pps
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--duration", type=float, default=0.08,
                        help="seconds per timing sample")
    parser.add_argument(
        "--threshold", type=float, default=0.02,
        help="maximum tolerated disabled-path fractional regression",
    )
    args = parser.parse_args(argv)

    best = measure(args.rounds, args.duration)
    disabled_ratio = best["disabled"] / best["baseline"]
    enabled_ratio = best["enabled"] / best["baseline"]
    print(f"{'mode':<10} | {'best pps':>12} | {'vs baseline':>11}")
    for name in ("baseline", "disabled", "enabled"):
        ratio = best[name] / best["baseline"]
        print(f"{name:<10} | {best[name]:>12.1f} | {ratio:>10.3f}x")
    print(
        f"enabled-mode sampling overhead (informational): "
        f"{(1.0 - enabled_ratio) * 100.0:+.1f}%"
    )
    if disabled_ratio < 1.0 - args.threshold:
        print(
            f"obs-overhead: disabled wire path at {disabled_ratio:.3f}x of "
            f"baseline exceeds the {args.threshold:.0%} budget — the "
            f"obs-disabled fast path regressed",
            file=sys.stderr,
        )
        return 1
    print(
        f"obs-overhead: disabled wire path within "
        f"{args.threshold:.0%} of baseline — OK"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
