"""Repo-root shim so ``python -m colibri_flow`` works from a checkout.

The real package is :mod:`tools.colibri_flow`; with ``-m`` the current
directory lands on ``sys.path``, so this module is importable exactly
where the Makefile and CI run it (mirrors nothing in colibri-lint only
because that tool predates the shared ``tools/`` layout).
"""

from tools.colibri_flow.cli import main, run  # noqa: F401

if __name__ == "__main__":
    main()
