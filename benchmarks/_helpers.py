"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper's evaluation
(§6-§7, appendices).  Series are printed AND written to
``benchmark_results/<name>.txt`` so the tee'd bench output and
EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

import os
import time

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmark_results")


def report(name: str, title: str, lines: list) -> None:
    """Print a result table and persist it for EXPERIMENTS.md."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    body = "\n".join([title, "-" * len(title), *lines, ""])
    print("\n" + body)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(body)


def time_per_call(fn, repeat: int = 200, number: int = 1) -> float:
    """Best-of-``repeat`` seconds per call (min reduces scheduler noise)."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = (time.perf_counter() - start) / number
        if elapsed < best:
            best = elapsed
    return best


def throughput(fn, duration: float = 0.5) -> float:
    """Calls per second sustained over roughly ``duration`` seconds."""
    # Warm up and estimate cost.
    fn()
    start = time.perf_counter()
    count = 0
    while time.perf_counter() - start < duration:
        fn()
        count += 1
    return count / (time.perf_counter() - start)
