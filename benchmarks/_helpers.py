"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper's evaluation
(§6-§7, appendices).  Series are printed AND written to
``benchmark_results/<name>.txt`` so the tee'd bench output and
EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "benchmark_results")


def quick_mode() -> bool:
    """Whether the bench should run its reduced CI-smoke configuration.

    Set ``COLIBRI_BENCH_QUICK=1`` (the CI ``bench-smoke`` job does) to
    shrink sweep axes and durations: the numbers are not publication
    grade, but every code path still runs end to end.
    """
    return os.environ.get("COLIBRI_BENCH_QUICK", "") not in ("", "0")


def report(name: str, title: str, lines: list) -> None:
    """Print a result table and persist it for EXPERIMENTS.md."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    body = "\n".join([title, "-" * len(title), *lines, ""])
    print("\n" + body)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(body)


def report_json(
    name: str, bench: str, rows: list, profile: dict = None,
    sampling: dict = None,
) -> None:
    """Persist machine-readable results as ``BENCH_<name>.json``.

    ``rows`` is a list of ``{"config": {...}, "pps": float}`` entries.
    The run id is a content hash of the bench name, configs, and rates —
    deliberately timestamp-free so re-running identical code on
    identical inputs produces an identical file (the diff, not a clock,
    says whether performance changed).

    ``profile`` is an optional :meth:`repro.obs.Profiler.snapshot` from a
    separate instrumented pass.  It is attached *after* the run id is
    computed: profile timings are wall-clock noise by nature and must not
    churn the content hash of the actual measurements.

    ``sampling`` is an optional
    :meth:`repro.obs.sampling.SamplingProfiler.snapshot` from a sampled
    wire-path pass (docs/observability.md §9); like ``profile`` it is
    wall-clock noise and stays outside the run id and the trajectory.

    Every run is also appended to ``benchmark_results/trajectory.jsonl``
    (deduplicated by run id, profile excluded), the append-only history
    ``tools/bench_regress.py`` gates regressions against.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {"bench": bench, "results": rows}
    digest = hashlib.blake2s(
        json.dumps(payload, sort_keys=True).encode("utf-8"), digest_size=8
    ).hexdigest()
    payload["run_id"] = digest
    _append_trajectory(
        {"name": name, "bench": bench, "run_id": digest, "results": rows}
    )
    if profile is not None:
        payload["profile"] = profile
    if sampling is not None:
        payload["sampling"] = sampling
    with open(os.path.join(RESULTS_DIR, f"BENCH_{name}.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _append_trajectory(entry: dict) -> None:
    """Append one run to the bench trajectory unless the identical run
    (same name + content-hash run id) is already recorded — re-running
    unchanged code on unchanged inputs must not grow the history."""
    path = os.path.join(RESULTS_DIR, "trajectory.jsonl")
    if os.path.exists(path):
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                prior = json.loads(line)
                if (
                    prior.get("name") == entry["name"]
                    and prior.get("run_id") == entry["run_id"]
                ):
                    return
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def time_per_call(fn, repeat: int = 200, number: int = 1) -> float:
    """Best-of-``repeat`` seconds per call (min reduces scheduler noise)."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = (time.perf_counter() - start) / number
        if elapsed < best:
            best = elapsed
    return best


def throughput(fn, duration: float = 0.5) -> float:
    """Calls per second sustained over roughly ``duration`` seconds."""
    # Warm up and estimate cost.
    fn()
    start = time.perf_counter()
    count = 0
    while time.perf_counter() - start < duration:
        fn()
        count += 1
    return count / (time.perf_counter() - start)
