"""Baseline comparison: Colibri vs. the IntServ/DiffServ archetypes (§1).

Three quantified contrasts:

1. **data-plane state** — IntServ routers hold one entry per flow;
   Colibri border routers hold zero reservation state at any flow count;
2. **control-plane refresh cost** — RSVP soft state costs O(flows) work
   per refresh period at every router; Colibri admission stays O(1);
3. **guarantees under adversarial marking** — a DiffServ EF flood
   crushes the victim's premium traffic, while the equivalent Colibri
   scenario (Table 2 phase 3) clamps the attacker instead.
"""

from __future__ import annotations

import pytest

from _helpers import report, throughput
from test_fig6_scaling import build_router_and_packets
from repro.baselines import DiffServRouter, DscpClass, IntServNetwork
from repro.topology import IsdAs
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000
PATH = [IsdAs(1, BASE + i) for i in range(1, 5)]

FLOW_COUNTS = [100, 1000, 10_000]


@pytest.mark.benchmark(group="baselines")
def test_state_growth_intserv_vs_colibri(benchmark):
    lines = [f"{'flows':>8} | {'IntServ state/router':>21} | {'Colibri BR state':>17}"]
    for flows in FLOW_COUNTS:
        net = IntServNetwork(PATH, capacity=gbps(1000))
        for _ in range(flows):
            net.reserve(PATH[0], PATH[-1], mbps(1))
        per_router = net.routers[PATH[0]].state_size
        lines.append(f"{flows:>8} | {per_router:>21} | {'0 (stateless)':>17}")
        assert per_router == flows
    report(
        "baseline_state",
        "Baseline — per-router reservation state (IntServ vs Colibri)",
        lines,
    )
    # Colibri router processes packets with zero reservation state.
    router, packets = build_router_and_packets()
    benchmark(lambda: router.validate_only(packets[0]))


@pytest.mark.benchmark(group="baselines")
def test_refresh_cost_intserv_vs_colibri(benchmark):
    lines = [f"{'flows':>8} | {'RSVP refresh ops/period/router':>31}"]
    for flows in FLOW_COUNTS:
        net = IntServNetwork(PATH, capacity=gbps(1000))
        for _ in range(flows):
            net.reserve(PATH[0], PATH[-1], mbps(1), now=0.0)
        router = net.routers[PATH[0]]
        router.refresh_work = 0
        router.refresh_sweep(now=1.0)
        lines.append(f"{flows:>8} | {router.refresh_work:>31}")
        assert router.refresh_work == flows
    lines.append("Colibri: reservations expire on their own; admission is O(1)")
    report(
        "baseline_refresh",
        "Baseline — control-plane soft-state cost (RSVP) vs Colibri",
        lines,
    )
    net = IntServNetwork(PATH, capacity=gbps(1000))
    for _ in range(1000):
        net.reserve(PATH[0], PATH[-1], mbps(1), now=0.0)
    benchmark(lambda: net.routers[PATH[0]].refresh_sweep(now=1.0))


@pytest.mark.benchmark(group="baselines")
def test_guarantees_under_attack_diffserv_vs_colibri(benchmark):
    """The victim offers 0.4 'Gbps' of premium traffic while an attacker
    floods 40 into the same premium class.  DiffServ: the victim
    collapses.  Colibri (Table 2 phase 3): the attacker is clamped."""
    duration, ticks = 1.0, 1000
    router = DiffServRouter(capacity=mbps(40), queue_bytes=25_000)
    packet = 500
    attack_per_tick = int(mbps(160) * duration / ticks / 8) // packet  # 4x link
    for tick in range(ticks):
        # Alternate arrival order so the victim is not always last in.
        if tick % 2 == 0:
            router.enqueue("victim", packet, DscpClass.EF)
        for _ in range(attack_per_tick):
            router.enqueue("attacker", packet, DscpClass.EF)
        if tick % 2 == 1:
            router.enqueue("victim", packet, DscpClass.EF)
        router.drain(duration / ticks)
    victim_rate = router.flow_rate(DscpClass.EF, "victim", duration)
    victim_offered = packet * ticks * 8 / duration
    attacker_rate = router.flow_rate(DscpClass.EF, "attacker", duration)
    lines = [
        "attacker marks a 400x flood (4x link capacity) as premium (EF):",
        f"  DiffServ: victim keeps {victim_rate / victim_offered:6.1%} of its "
        f"premium traffic; attacker takes {attacker_rate / mbps(40):6.1%} of the link",
        "  Colibri:  victim keeps 100% (authenticated admission caps the",
        "            attacker at its reservation; see Table 2 phase 3)",
    ]
    report(
        "baseline_guarantees",
        "Baseline — guarantees under adversarial marking (DiffServ) vs Colibri",
        lines,
    )
    assert victim_rate < victim_offered * 0.9  # DiffServ victim loses traffic
    benchmark(lambda: router.drain(0.001))
