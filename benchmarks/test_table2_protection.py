"""Table 2: data-plane protection under the three §7.1 threat mixes.

Paper geometry: three 40 Gbps input ports into one 40 Gbps output port.
Reservations 1 and 2 hold 0.4 and 0.8 Gbps guarantees.  Three phases:

  phase 1 — best-effort congestion (39.2 + 40 Gbps of BE);
  phase 2 — 20 Gbps of unauthentic Colibri traffic added;
  phase 3 — reservation 1 floods 40 Gbps over its 0.4 Gbps guarantee.

Paper outputs: reservations always get exactly their guarantee, the
unauthentic traffic contributes zero, the overuser is clamped to its
guarantee, and best-effort fills the remainder (~38.6 Gbps).

Reproduction: same geometry with the Gbps axis scaled 1000x down to
Mbps (every mechanism — priority queues, MAC checks, token buckets,
sketches — is rate-free; only the ratios matter), simulated for 0.5 s
in 1 ms ticks through a real border router.
"""

from __future__ import annotations

import pytest

from _helpers import report
from repro.dataplane.router import Verdict
from repro.sim import ColibriNetwork, PortSim
from repro.sim.netsim import AtHop
from repro.sim.traffic import (
    BestEffortSource,
    BogusColibriSource,
    OverusingSource,
    ReservationSource,
)
from repro.topology import IsdAs, build_two_isd_topology
from repro.util.units import mbps

BASE = 0xFF00_0000_0000
SRC1 = IsdAs(1, BASE + 101)
SRC2 = IsdAs(1, BASE + 111)
DST = IsdAs(2, BASE + 101)
MEASURE = IsdAs(2, BASE + 1)

CAPACITY = mbps(40)  # "40 Gbps", scaled
RES1 = mbps(0.4)
RES2 = mbps(0.8)
PACKET = 500
DURATION = 0.5


def build(overuse_res1: bool):
    net = ColibriNetwork(build_two_isd_topology())
    net.reserve_segments(SRC1, DST, mbps(10))
    net.reserve_segments(SRC2, DST, mbps(10))
    handle1 = net.establish_eer(SRC1, DST, RES1)
    handle2 = net.establish_eer(SRC2, DST, RES2)
    hop1 = [h.isd_as for h in handle1.hops].index(MEASURE)
    hop2 = [h.isd_as for h in handle2.hops].index(MEASURE)
    if overuse_res1:
        source1 = OverusingSource(net.gateway(SRC1), handle1, mbps(40), PACKET)
        net.gateway(SRC1).monitor.unwatch(handle1.reservation_id.packed)
    else:
        source1 = ReservationSource(net.gateway(SRC1), handle1, RES1, PACKET)
    source2 = ReservationSource(net.gateway(SRC2), handle2, RES2, PACKET)
    sim = PortSim(net.router(MEASURE), net.clock, CAPACITY)
    return net, sim, AtHop(source1, hop1), AtHop(source2, hop2)


def run_phase(phase: int):
    overuse = phase == 3
    net, sim, src1, src2 = build(overuse_res1=overuse)
    colibri = [(1, src1, "res1"), (2, src2, "res2")]
    best_effort = [(2, BestEffortSource(mbps(39.2), PACKET))]
    if phase == 1:
        best_effort.append((3, BestEffortSource(mbps(40), PACKET)))
    else:
        best_effort.append((3, BestEffortSource(mbps(20), PACKET)))
        bogus = BogusColibriSource(
            IsdAs(1, BASE + 121), ((0, 1), (2, 0)), mbps(20), PACKET,
            expiry=net.clock.now() + 100,
        )
        colibri.append((3, AtHop(bogus, 0), PortSim.UNAUTH))
    rates = sim.run(DURATION, colibri, best_effort)
    return rates, sim


ROWS = [
    ("Reservation 1", "res1"),
    ("Reservation 2", "res2"),
    ("Best effort", PortSim.BEST_EFFORT),
    ("Colibri unauth.", PortSim.UNAUTH),
]


@pytest.mark.benchmark(group="table2")
def test_table2_all_phases(benchmark):
    lines = [f"{'Traffic class':<16} | {'phase 1':>8} | {'phase 2':>8} | {'phase 3':>8}"]
    results = {}
    for phase in (1, 2, 3):
        rates, sim = run_phase(phase)
        results[phase] = (rates, sim)
    for label, key in ROWS:
        row = []
        for phase in (1, 2, 3):
            rates, _ = results[phase]
            # PortSim reports (scaled) Gbps; the scale is Mbps-as-Gbps.
            row.append(rates.get(key, 0.0) * 1e9 / 1e6)
        lines.append(
            f"{label:<16} | " + " | ".join(f"{value:7.3f}M" for value in row)
        )
    lines.append(
        "(output rates in scaled units: paper Gbps -> bench Mbps, 1000x)"
    )
    report("table2_protection", "Table 2 — data-plane protection phases", lines)

    # Paper invariants, phase by phase.
    for phase in (1, 2):
        rates, _ = results[phase]
        assert rates.get("res1", 0.0) * 1e9 == pytest.approx(RES1, rel=0.1)
        assert rates.get("res2", 0.0) * 1e9 == pytest.approx(RES2, rel=0.1)
        assert rates.get(PortSim.BEST_EFFORT, 0.0) * 1e9 > CAPACITY * 0.9
    rates2, sim2 = results[2]
    assert rates2.get(PortSim.UNAUTH, 0.0) == 0.0
    assert sim2.router_drops[Verdict.DROP_BAD_HVF] > 0
    rates3, sim3 = results[3]
    assert rates3.get("res1", 0.0) * 1e9 < mbps(40) * 0.25  # clamped
    assert rates3.get("res2", 0.0) * 1e9 == pytest.approx(RES2, rel=0.1)
    drops3 = sim3.router_drops
    assert (
        drops3.get(Verdict.DROP_OVERUSE, 0) + drops3.get(Verdict.DROP_BLOCKED, 0) > 0
    )

    # pytest-benchmark hook: one phase-1 tick as the timed unit.
    net, sim, src1, src2 = build(overuse_res1=False)
    flood = BestEffortSource(mbps(40), PACKET)

    def one_tick():
        now = net.clock.now()
        for packet in src1.packets(now, 0.001):
            result = sim.router.process(packet)
            if not result.verdict.is_drop:
                sim.scheduler.enqueue(packet.total_size, 1)
        for size in flood.sizes(now, 0.001):
            sim.scheduler.enqueue(size, 2)
        sim.scheduler.drain(0.001)
        net.clock.advance(0.001)

    # Fixed rounds: each tick advances the simulated clock 1 ms and the
    # EER lives 16 s, so unbounded calibration would expire it mid-bench.
    benchmark.pedantic(one_tick, rounds=1000, iterations=1)
