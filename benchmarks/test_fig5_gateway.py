"""Figure 5: gateway forwarding performance vs. path length and number
of installed reservations.

Paper result (one core): performance decreases with the number of
on-path ASes {2, 4, 8, 16} (more HVFs to compute per packet, Eq. 6) and
with the number of existing reservations r in {2^0, 2^10, 2^15, 2^17,
2^20} (cache pressure on the reservation table); even the worst case
(16 ASes, 2^20 reservations) still forwards 0.4 Mpps.  Packets arrive
with *random* reservation IDs — the worst case for caching (§7.1).

Measured through :meth:`ColibriGateway.send_batch` over 64-packet
bursts, matching the paper's DPDK burst processing; request batches are
pregenerated so the timed region contains gateway work only.  The serial
``send`` path stamps byte-identical packets (enforced by
tests/test_batch_equivalence.py) — the batch API only amortizes fixed
costs.

Shape targets: pps monotonically decreasing in path length; mild
decrease with r; absolute numbers are Python-scale (kpps, not Mpps).
r is capped at 2^17 here (2^20 gateway entries exceed a laptop-class
memory budget in pure Python; the cache-pressure trend is visible well
before that).
"""

from __future__ import annotations

import random
import time

import pytest

from _helpers import quick_mode, report, report_json, throughput
from repro.constants import EER_LIFETIME
from repro.dataplane.gateway import ColibriGateway
from repro.dataplane.hvf import (
    backend_name,
    eer_hvf_message,
    sigma_schedule,
    sigma_states,
    verify_hvfs_batch,
)
from repro.obs import ObsContext
from repro.obs.profile import profiling
from repro.obs.sampling import SamplingProfiler
from repro.packets.colibri import ColibriPacket
from repro.packets.fields import EerInfo, PathField, ResInfo
from repro.packets.wire import PacketArena
from repro.reservation.ids import ReservationId
from repro.topology.addresses import HostAddr, IsdAs
from repro.util.clock import SimClock
from repro.util.units import gbps

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 1)

BATCH = 64  # packets per send_batch burst (a typical NIC burst size)

if quick_mode():
    PATH_LENGTHS = [2, 16]
    RESERVATION_COUNTS = [1, 2**10]
    DURATION = 0.04
else:
    PATH_LENGTHS = [2, 4, 8, 16]
    RESERVATION_COUNTS = [1, 2**10, 2**15, 2**17]
    DURATION = 0.12


def build_gateway(path_length: int, reservations: int):
    """A gateway with ``reservations`` installed EERs on ``path_length``-AS
    paths.  HopAuths are synthetic (the gateway never verifies them; it
    only MACs under them, so random keys exercise the same code path)."""
    clock = SimClock(1000.0)
    gateway = ColibriGateway(SRC, clock)
    rng = random.Random(42)
    pairs = [(0, 1)] + [(2, 3)] * (path_length - 2) + [(4, 0)]
    path = PathField(tuple(pairs))  # shared: the path is not the sweep axis
    eer_info = EerInfo(HostAddr(1), HostAddr(2))
    expiry = clock.now() + EER_LIFETIME * 1000  # keep alive for the bench
    ids = []
    for index in range(reservations):
        res_id = ReservationId(SRC, index + 1)
        res_info = ResInfo(
            reservation=res_id, bandwidth=gbps(1000), expiry=expiry, version=1
        )
        hop_auths = tuple(
            rng.getrandbits(128).to_bytes(16, "big") for _ in range(path_length)
        )
        gateway.install(res_id, path, eer_info, res_info, hop_auths)
        ids.append(res_id)
    return gateway, ids


def random_send(gateway: ColibriGateway, ids: list, rng: random.Random):
    """One serial send with a random reservation ID (the per-packet
    baseline path; kept for other benches and the ablations)."""
    gateway.send(ids[rng.randrange(len(ids))], b"")


def make_batches(ids: list, rng: random.Random, count: int, batch: int = BATCH):
    """Pregenerated random-ID request bursts: the workload arrives from
    end hosts; generating it is not gateway work and stays untimed."""
    n = len(ids)
    return [
        [(ids[rng.randrange(n)], b"") for _ in range(batch)]
        for _ in range(count)
    ]


def batch_pps(gateway: ColibriGateway, batches: list, duration: float) -> float:
    """Sustained send_batch throughput, cycling over ``batches``.

    The virtual clock advances one microsecond per burst: Ts uniqueness
    gives each microsecond 2^16 sequence numbers, and a frozen SimClock
    would exhaust them at r=1 (every packet lands on one reservation in
    the "same" instant — a regime no physical NIC can produce).
    """
    gateway.send_batch(batches[0])  # warm up
    send_batch = gateway.send_batch
    advance = gateway.clock.advance
    count = len(batches)
    index = 0
    done = 0
    start = time.perf_counter()
    while time.perf_counter() - start < duration:
        send_batch(batches[index])
        advance(1e-6)
        done += BATCH
        index += 1
        if index == count:
            index = 0
    return done / (time.perf_counter() - start)


def wire_pps(
    gateway: ColibriGateway, batches: list, arena: PacketArena, duration: float
) -> float:
    """Sustained zero-copy throughput: the same bursts through
    ``send_batch_wire``, every packet written in place into ``arena``."""
    gateway.send_batch_wire(batches[0], arena)  # warm up
    send_wire = gateway.send_batch_wire
    advance = gateway.clock.advance
    count = len(batches)
    index = 0
    done = 0
    start = time.perf_counter()
    while time.perf_counter() - start < duration:
        send_wire(batches[index], arena)
        advance(1e-6)
        done += BATCH
        index += 1
        if index == count:
            index = 0
    return done / (time.perf_counter() - start)


@pytest.mark.benchmark(group="fig5")
def test_fig5_series(benchmark):
    lines = [
        f"{'on-path ASes':>13} | "
        + " | ".join(f"r=2^{r.bit_length() - 1:<3}" for r in RESERVATION_COUNTS)
    ]
    json_rows = []
    by_length = {}
    by_r = {}
    backend = backend_name()
    wire_lines = []
    for path_length in PATH_LENGTHS:
        row = []
        wire_row = []
        arena = PacketArena(
            slots=BATCH, slot_size=ColibriPacket.header_size_for(path_length)
        )
        for reservations in RESERVATION_COUNTS:
            gateway, ids = build_gateway(path_length, reservations)
            rng = random.Random(7)
            batches = make_batches(ids, rng, count=256)
            # Best of three samples: shared-host scheduler noise only
            # ever slows a sample down.
            pps = max(batch_pps(gateway, batches, DURATION) for _ in range(3))
            row.append(pps)
            by_length.setdefault(reservations, {})[path_length] = pps
            by_r.setdefault(path_length, {})[reservations] = pps
            json_rows.append(
                {
                    "config": {
                        "on_path_ases": path_length,
                        "reservations": reservations,
                        "batch": BATCH,
                        "mode": "send_batch",
                        "backend": backend,
                    },
                    "pps": round(pps, 1),
                }
            )
            pps_wire = max(
                wire_pps(gateway, batches, arena, DURATION) for _ in range(3)
            )
            wire_row.append(pps_wire)
            json_rows.append(
                {
                    "config": {
                        "on_path_ases": path_length,
                        "reservations": reservations,
                        "batch": BATCH,
                        "mode": "send_batch_wire",
                        "backend": backend,
                    },
                    "pps": round(pps_wire, 1),
                }
            )
        lines.append(
            f"{path_length:>13} | "
            + " | ".join(f"{v / 1000:6.1f}k" for v in row)
        )
        wire_lines.append(
            f"{path_length:>13} | "
            + " | ".join(f"{v / 1000:6.1f}k" for v in wire_row)
        )
    lines.append(
        f"(values: packets per second, one core, random reservation IDs, "
        f"{BATCH}-packet send_batch bursts, {backend} Eq. 6 backend)"
    )
    lines.append("")
    lines.append("zero-copy wire forms (send_batch_wire into a packet arena):")
    lines.extend(wire_lines)
    report("fig5_gateway", "Fig. 5 — gateway forwarding performance", lines)

    # One extra instrumented pass over a mid-size config attaches a
    # hot-path profile to the JSON report.  It runs *after* the timed
    # sweep (profiling wraps every @profiled call, so it must never
    # overlap the measurements) and its timings stay outside the run id.
    # Besides the fused hot paths, it drives the *staged* batch variant
    # (dispatch / stamp / serialize as separate @profiled sites), the
    # zero-copy wire form, and a σ-hit style burst verification — so
    # BENCH_fig5.json carries a per-stage breakdown of where a burst's
    # time goes, not just end-to-end pps.
    gateway, ids = build_gateway(4, RESERVATION_COUNTS[-1])
    batches = make_batches(ids, random.Random(7), count=64)
    arena = PacketArena(slots=BATCH, slot_size=ColibriPacket.header_size_for(4))
    with profiling() as profiler:
        batch_pps(gateway, batches, DURATION)
        for requests in batches[:32]:
            gateway.send_batch_staged(requests)
            gateway.clock.advance(1e-6)
        for requests in batches[:32]:
            gateway.send_batch_wire(requests, arena)
            gateway.clock.advance(1e-6)
        # Verify stage: authenticate one burst's first-hop HVFs exactly
        # as a σ-cache-hit router would (hvf.verify_hvfs_batch).
        outcomes = gateway.send_batch(batches[0])
        states, messages, tags = [], [], []
        for (res_id, _), packet in zip(batches[0], outcomes):
            sigma = gateway._reservations[res_id]._latest.hop_auths[0]
            states.append(
                sigma_schedule((sigma,)) or sigma_states((sigma,))[0]
            )
            messages.append(
                eer_hvf_message(packet.timestamp, packet.total_size)
            )
            tags.append(packet.hvfs[0])
        assert all(verify_hvfs_batch(states, messages, tags))
    # A sampled pass over the same wire bursts attaches the wire-path
    # sampling profile (docs/observability.md §9): one burst in
    # DEFAULT_SAMPLE_EVERY runs the instrumented twin, so the per-stage
    # wire breakdown rides along without perturbing what it measures.
    # Like ``profile``, the snapshot stays outside the run id.
    obs = ObsContext.create(gateway.clock, seed=7)
    obs.sampler = SamplingProfiler()
    gateway.obs = obs
    for requests in batches:
        gateway.send_batch_wire(requests, arena)
        gateway.clock.advance(1e-6)
    gateway.obs = None
    report_json(
        "fig5", "fig5_gateway_forwarding", json_rows,
        profile=profiler.snapshot(),
        sampling=obs.sampler.snapshot(),
    )

    # Shape: longer paths are never meaningfully *faster*.  With the
    # 8-way vectorized backend, 2–8 hops cost one compress group and
    # 16 hops two, so the per-hop slope is far shallower than the
    # serial-MAC model this assertion originally encoded — a direction
    # check with noise headroom is all the cost model still promises
    # (same stance as the cache-pressure check below).
    for reservations, series in by_length.items():
        ordered = [series[length] for length in PATH_LENGTHS]
        assert ordered[-1] <= ordered[0] * 1.30, (
            f"16 hops should not beat 2 hops at r={reservations}: {ordered}"
        )
    # Shape: the largest table is not meaningfully faster than the
    # single-entry one.  (In Python the dict-scaling effect is weak —
    # DESIGN.md §2 — so this is a direction check with noise headroom,
    # unlike the paper's strong DPDK cache-pressure signal.)
    for path_length, series in by_r.items():
        assert series[RESERVATION_COUNTS[-1]] <= series[1] * 1.30, (
            f"expected cache pressure at len={path_length}: {series}"
        )

    gateway, ids = build_gateway(4, RESERVATION_COUNTS[-1])
    batches = make_batches(ids, random.Random(7), count=64)
    iterator = iter(())

    def one_burst():
        nonlocal iterator
        try:
            gateway.send_batch(next(iterator))
        except StopIteration:
            iterator = iter(batches)
            gateway.send_batch(next(iterator))

    benchmark(one_burst)


@pytest.mark.benchmark(group="fig5")
def test_benchmark_gateway_worst_case(benchmark):
    """The paper's stress point: long paths, large table — serial send,
    so pytest-benchmark tracks the per-packet (not per-burst) cost."""
    gateway, ids = build_gateway(16, RESERVATION_COUNTS[-1])
    rng = random.Random(7)
    benchmark(lambda: random_send(gateway, ids, rng))


@pytest.mark.benchmark(group="fig5")
def test_batch_vs_serial_speedup(benchmark):
    """The batch API must actually pay for itself: the same workload
    through send_batch vs. one send() per packet."""
    gateway, ids = build_gateway(8, 2**10)
    rng = random.Random(11)
    batches = make_batches(ids, rng, count=128)
    batch_rate = max(batch_pps(gateway, batches, DURATION) for _ in range(3))
    serial_rate = max(
        throughput(lambda: random_send(gateway, ids, rng), duration=DURATION)
        for _ in range(3)
    )
    report(
        "fig5_batch_vs_serial",
        "Fig. 5 companion — batch vs. serial gateway path",
        [
            f"send_batch ({BATCH}/burst): {batch_rate / 1000:8.1f}k pps",
            f"send (per packet):        {serial_rate / 1000:8.1f}k pps",
            f"speedup:                  {batch_rate / serial_rate:8.2f}x",
        ],
    )
    # The batch path amortizes the clock read and loop fixed costs; it
    # must never be slower than serial sends (noise headroom included).
    assert batch_rate >= serial_rate * 0.9, (batch_rate, serial_rate)
    benchmark(lambda: random_send(gateway, ids, rng))
