"""OFD design-space comparison: count-min sketch vs. sample-and-hold.

§4.8 cites a family of limited-memory overuse detectors [11, 44, 49, 64,
67] and builds the architecture so either works (false positives are
tolerable because deterministic monitoring confirms suspects before
punishment).  This bench quantifies the tradeoff on identical workloads:

* detection: both must flag every true overuser (3x its reservation);
* false positives among many conforming flows at a tight memory budget;
* per-packet observation cost.
"""

from __future__ import annotations

import pytest

from _helpers import report, throughput
from repro.dataplane import OveruseFlowDetector, SampleAndHoldDetector
from repro.util.units import mbps

CONFORMING_FLOWS = 2000
OVERUSERS = 20
TICKS = 500


def drive(detector) -> dict:
    """One second of mixed traffic: 2000 conforming flows at a realistic
    quarter of their reservation, 20 flows at 3x.  Returns stats."""
    conforming = [f"ok-{i}".encode() for i in range(CONFORMING_FLOWS)]
    bad = [f"bad-{i}".encode() for i in range(OVERUSERS)]
    for step in range(TICKS):
        now = step / TICKS
        for index, flow in enumerate(conforming):
            # 1 Mbps reservation, ~0.25 Mbps offered: 250 B every 8 ms.
            if step % 8 == index % 8:
                detector.observe(flow, 250, mbps(1), now=now)
        for flow in bad:
            # 750 B every 2 ms = 3 Mbps against a 1 Mbps reservation.
            detector.observe(flow, 750, mbps(1), now=now)
    suspects = detector.suspects()
    caught = sum(1 for flow in bad if flow in suspects)
    false_positives = sum(1 for flow in conforming if flow in suspects)
    return {
        "caught": caught,
        "missed": OVERUSERS - caught,
        "false_positives": false_positives,
        "memory": detector.memory_cells,
    }


@pytest.mark.benchmark(group="ofd")
def test_ofd_comparison(benchmark):
    # Memory budgets chosen to be tight for 2020 concurrent flows.
    sketch = OveruseFlowDetector(width=512, depth=4, window=1.0)
    sample_hold = SampleAndHoldDetector(max_held=1024, sample_budget=2.0, window=1.0)
    sketch_stats = drive(sketch)
    hold_stats = drive(sample_hold)

    cost_sketch = throughput(
        lambda: sketch.observe(b"probe", 250, mbps(1), now=0.0), duration=0.15
    )
    cost_hold = throughput(
        lambda: sample_hold.observe(b"probe", 250, mbps(1), now=0.0), duration=0.15
    )

    lines = [
        f"{'detector':<16} | {'caught':>7} | {'missed':>7} | {'false+':>7} | "
        f"{'mem cells':>9} | {'obs/s':>10}",
        f"{'count-min':<16} | {sketch_stats['caught']:>7} | "
        f"{sketch_stats['missed']:>7} | {sketch_stats['false_positives']:>7} | "
        f"{sketch_stats['memory']:>9} | {cost_sketch:>10,.0f}",
        f"{'sample-and-hold':<16} | {hold_stats['caught']:>7} | "
        f"{hold_stats['missed']:>7} | {hold_stats['false_positives']:>7} | "
        f"{hold_stats['memory']:>9} | {cost_hold:>10,.0f}",
        f"(workload: {CONFORMING_FLOWS} conforming flows + {OVERUSERS} flows at 3x)",
    ]
    report("ofd_comparison", "OFD design space — count-min vs sample-and-hold", lines)

    # Count-min never misses a true overuser (no false negatives).
    assert sketch_stats["missed"] == 0
    # Sample-and-hold is exact for held flows: no false positives.
    assert hold_stats["false_positives"] == 0
    # Sample-and-hold catches nearly all 3x overusers (it can miss a
    # flow whose packets are never sampled; P(miss) ~ e^-4 here).
    assert hold_stats["caught"] >= OVERUSERS - 3

    benchmark(lambda: sketch.observe(b"bench", 250, mbps(1), now=0.0))
