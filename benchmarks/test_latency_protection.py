"""Latency protection under congestion (§9, "Low Overhead").

Not a numbered figure, but the paper's headline benefit for
performance-sensitive traffic: a Colibri reservation keeps its
end-to-end latency flat while best-effort latency explodes under load
on the very same ports.  This bench sweeps the cross-traffic load from
0 to 8x port capacity and reports both latencies over the 6-AS
inter-ISD path.
"""

from __future__ import annotations

import pytest

from _helpers import report
from repro.dataplane.queueing import TrafficClass
from repro.sim import ColibriNetwork, PathPipeline
from repro.topology import IsdAs, build_two_isd_topology
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 101)
DST = IsdAs(2, BASE + 101)

LOAD_FACTORS = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0]
PORT_CAPACITY = mbps(100)


def build():
    net = ColibriNetwork(build_two_isd_topology())
    net.reserve_segments(SRC, DST, gbps(1))
    handle = net.establish_eer(SRC, DST, mbps(10))
    return net, handle


@pytest.mark.benchmark(group="latency")
def test_latency_under_congestion(benchmark):
    lines = [
        f"{'cross load':>11} | {'reserved':>10} | {'best effort':>12}"
    ]
    reserved_series, best_effort_series = [], []
    for factor in LOAD_FACTORS:
        net, handle = build()
        pipeline = PathPipeline(net, handle, capacity=PORT_CAPACITY)
        if factor > 0:
            pipeline.load_cross_traffic(PORT_CAPACITY * factor, duration=1.0)
        reserved = pipeline.send(b"x" * 500).latency
        best_effort = pipeline.send(
            b"x" * 500, traffic_class=TrafficClass.BEST_EFFORT
        ).latency
        reserved_series.append(reserved)
        best_effort_series.append(best_effort)
        lines.append(
            f"{factor:>10.1f}x | {reserved * 1000:8.2f}ms | "
            f"{best_effort * 1000:10.2f}ms"
        )
    lines.append(
        "(end-to-end over 6 ASes; cross load as a multiple of port capacity)"
    )
    report(
        "latency_protection",
        "§9 — reserved vs best-effort latency under congestion",
        lines,
    )
    # Reserved latency flat across the whole sweep ...
    assert max(reserved_series) < min(reserved_series) * 1.5
    # ... while best-effort latency grows by orders of magnitude.
    assert best_effort_series[-1] > reserved_series[-1] * 100

    net, handle = build()
    pipeline = PathPipeline(net, handle, capacity=PORT_CAPACITY)

    def one():
        # Advance time so the paced stream stays within its reservation.
        net.advance(0.001)
        pipeline.send(b"x" * 500)

    # Fixed round count: the EER lives 16 s of simulated time and every
    # round advances 1 ms, so calibration must not run unbounded.
    benchmark.pedantic(one, rounds=500, iterations=1)
