"""Micro-benchmarks of the cryptographic primitives.

Context for every data-plane number in Figs. 5/6: the per-packet costs
decompose into these operations.  The paper's prototype uses AES-NI
(~100M ops/s/core); our keyed-BLAKE2s substitution runs at Python speed,
which is exactly the ~10^3x scale factor between our kpps and the
paper's Mpps (DESIGN.md §2).

The prehashed-context rows quantify the batch fast path's core trick:
paying the per-key BLAKE2s key schedule once (at install or on a σ-cache
hit) and cloning the hash state per message, versus re-keying on every
MAC.  The 16-hop stamp rows are the exact inner loop of Fig. 5's
worst-case column, in both cold (re-keyed) and warm (prehashed) form.
"""

from __future__ import annotations

import pytest

from _helpers import quick_mode, report, report_json, throughput
from repro.crypto import aead_open, aead_seal, mac, prf, truncated_mac
from repro.crypto.drkey import DrkeyDeriver
from repro.crypto.mac import KeyedMacContext
from repro.dataplane.hvf import (
    eer_hvf,
    eer_hvf_message,
    hop_authenticator,
    segment_token,
    sigma_states,
    stamp_hvfs,
    stamp_hvfs_direct,
)
from repro.packets.fields import EerInfo, ResInfo, Timestamp
from repro.reservation.ids import ReservationId
from repro.topology.addresses import HostAddr, IsdAs
from repro.util.clock import SimClock

SRC = IsdAs.parse("1-ff00:0:110")
KEY = b"k" * 16
RES_INFO = ResInfo(
    reservation=ReservationId(SRC, 7), bandwidth=1e9, expiry=1e6, version=1
)
EER = EerInfo(HostAddr(1), HostAddr(2))
TS = Timestamp(123456, 0)
SEALED = aead_seal(KEY, b"sigma" * 3)

# The Fig. 5 worst-case inner loop: 16 on-path σs, one shared message.
SIGMAS_16 = tuple(bytes([i + 1]) * 16 for i in range(16))
STATES_16 = sigma_states(SIGMAS_16)
CTX = KeyedMacContext(KEY)
MSG = eer_hvf_message(TS, 600)


@pytest.mark.benchmark(group="crypto")
def test_crypto_micro(benchmark):
    deriver = DrkeyDeriver(SRC, SimClock(0.0), seed=b"seed" * 4)
    operations = {
        "PRF (16 B out)": lambda: prf(KEY, b"input data"),
        "MAC (full)": lambda: mac(KEY, b"a control payload of usual size" * 2),
        "MAC (truncated, Eq.3/6)": lambda: truncated_mac(KEY, b"hdr" * 10),
        "DRKey derive K_{A->B}": lambda: deriver.as_key(b"AS-B"),
        "SegR token (Eq. 3)": lambda: segment_token(KEY, RES_INFO, 2, 3),
        "HopAuth (Eq. 4)": lambda: hop_authenticator(KEY, RES_INFO, EER, 2, 3),
        "EER HVF (Eq. 6)": lambda: eer_hvf(KEY, TS, 600),
        "EER HVF (prehashed ctx)": lambda: CTX.truncated(MSG),
        "16-hop stamp (re-keyed)": lambda: stamp_hvfs_direct(SIGMAS_16, MSG),
        "16-hop stamp (prehashed)": lambda: stamp_hvfs(STATES_16, MSG),
        "AEAD seal (Eq. 5)": lambda: aead_seal(KEY, b"sigma" * 3),
        "AEAD open (Eq. 5)": lambda: aead_open(KEY, SEALED),
    }
    duration = 0.02 if quick_mode() else 0.1
    lines = [f"{'operation':<26} | {'ops/s':>12}"]
    rates = {}
    json_rows = []
    for name, op in operations.items():
        rate = throughput(op, duration=duration)
        rates[name] = rate
        lines.append(f"{name:<26} | {rate:>12,.0f}")
        json_rows.append({"config": {"operation": name}, "pps": round(rate, 1)})
    report("crypto_micro", "Cryptographic primitive rates (one core)", lines)
    report_json("crypto_micro", "crypto_primitive_rates", json_rows)

    # Sanity ordering: Eq. 6 (one truncated MAC over 12 bytes) must be
    # the cheapest of the protocol operations; Eq. 4 costs about one MAC.
    assert rates["EER HVF (Eq. 6)"] >= rates["HopAuth (Eq. 4)"] * 0.8
    assert rates["AEAD seal (Eq. 5)"] < rates["MAC (full)"]
    # The batch fast path's premise: cloning a prehashed state beats
    # re-running the key schedule, per HVF and across a 16-hop stamp.
    assert rates["EER HVF (prehashed ctx)"] > rates["EER HVF (Eq. 6)"]
    assert rates["16-hop stamp (prehashed)"] > rates["16-hop stamp (re-keyed)"]
    benchmark(operations["EER HVF (Eq. 6)"])
