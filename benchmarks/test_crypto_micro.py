"""Micro-benchmarks of the cryptographic primitives.

Context for every data-plane number in Figs. 5/6: the per-packet costs
decompose into these operations.  The paper's prototype uses AES-NI
(~100M ops/s/core); our keyed-BLAKE2s substitution runs at Python speed,
which is exactly the ~10^3x scale factor between our kpps and the
paper's Mpps (DESIGN.md §2).

The prehashed-context rows quantify the batch fast path's core trick:
paying the per-key BLAKE2s key schedule once (at install or on a σ-cache
hit) and cloning the hash state per message, versus re-keying on every
MAC.  The 16-hop stamp rows are the exact inner loop of Fig. 5's
worst-case column, in both cold (re-keyed) and warm (prehashed) form.
"""

from __future__ import annotations

import pytest

from _helpers import quick_mode, report, report_json, throughput
from repro.crypto import aead_open, aead_seal, mac, prf, truncated_mac
from repro.crypto import native
from repro.crypto.drkey import DrkeyDeriver
from repro.crypto.mac import KeyedMacContext
from repro.dataplane.hvf import (
    burst_stamper,
    eer_hvf,
    eer_hvf_message,
    hop_authenticator,
    segment_token,
    sigma_schedule,
    sigma_states,
    stamp_hvfs,
    stamp_hvfs_direct,
)
from repro.packets.fields import EerInfo, ResInfo, Timestamp
from repro.reservation.ids import ReservationId
from repro.topology.addresses import HostAddr, IsdAs
from repro.util.clock import SimClock

SRC = IsdAs.parse("1-ff00:0:110")
KEY = b"k" * 16
RES_INFO = ResInfo(
    reservation=ReservationId(SRC, 7), bandwidth=1e9, expiry=1e6, version=1
)
EER = EerInfo(HostAddr(1), HostAddr(2))
TS = Timestamp(123456, 0)
SEALED = aead_seal(KEY, b"sigma" * 3)

# The Fig. 5 worst-case inner loop: 16 on-path σs, one shared message.
SIGMAS_16 = tuple(bytes([i + 1]) * 16 for i in range(16))
STATES_16 = sigma_states(SIGMAS_16)
CTX = KeyedMacContext(KEY)
MSG = eer_hvf_message(TS, 600)


@pytest.mark.benchmark(group="crypto")
def test_crypto_micro(benchmark):
    deriver = DrkeyDeriver(SRC, SimClock(0.0), seed=b"seed" * 4)
    operations = {
        "PRF (16 B out)": lambda: prf(KEY, b"input data"),
        "MAC (full)": lambda: mac(KEY, b"a control payload of usual size" * 2),
        "MAC (truncated, Eq.3/6)": lambda: truncated_mac(KEY, b"hdr" * 10),
        "DRKey derive K_{A->B}": lambda: deriver.as_key(b"AS-B"),
        "SegR token (Eq. 3)": lambda: segment_token(KEY, RES_INFO, 2, 3),
        "HopAuth (Eq. 4)": lambda: hop_authenticator(KEY, RES_INFO, EER, 2, 3),
        "EER HVF (Eq. 6)": lambda: eer_hvf(KEY, TS, 600),
        "EER HVF (prehashed ctx)": lambda: CTX.truncated(MSG),
        "16-hop stamp (re-keyed)": lambda: stamp_hvfs_direct(SIGMAS_16, MSG),
        "16-hop stamp (prehashed)": lambda: stamp_hvfs(STATES_16, MSG),
        "AEAD seal (Eq. 5)": lambda: aead_seal(KEY, b"sigma" * 3),
        "AEAD open (Eq. 5)": lambda: aead_open(KEY, SEALED),
    }
    duration = 0.02 if quick_mode() else 0.1
    lines = [f"{'operation':<26} | {'ops/s':>12}"]
    rates = {}
    json_rows = []
    # Best-of sampling (as in fig6's router_pps): host scheduler noise
    # is one-sided, so the max over a few draws is the stable estimate.
    # The measurement duration is part of the config so bench_regress
    # only ever compares quick-mode runs against quick-mode history and
    # full runs against full history — its documented contract, which
    # the bare {"operation": ...} config silently violated.
    for name, op in operations.items():
        rate = max(throughput(op, duration=duration) for _ in range(3))
        rates[name] = rate
        lines.append(f"{name:<26} | {rate:>12,.0f}")
        json_rows.append(
            {"config": {"operation": name, "duration": duration}, "pps": round(rate, 1)}
        )

    # Native-kernel rows, when the cffi backend is loaded: the same
    # 16-hop stamp through each amortization tier — one C call per
    # packet (schedule block), per single-reservation burst
    # (stamp_many), and per mixed burst (scatter).  Separate configs
    # keyed by backend so the regression gate never compares across
    # backends.
    if native.available():
        schedule = sigma_schedule(SIGMAS_16)
        stamper = burst_stamper(slots=64)
        messages = b"".join(
            eer_hvf_message(Timestamp(123456, seq), 600) for seq in range(64)
        )
        stamper.reserve(64)
        for p in range(64):
            stamper.scheds[p] = schedule._scatter
            stamper.counts[p] = schedule.count
            stamper.offsets[p] = p * 64  # 16 hops x 4 B per packet row
        stamper.messages[:] = messages

        def stamp_many_64():
            schedule.stamp_many_flat(messages, len(MSG), 64)

        def scatter_64():
            stamper.stamp_flat(64, len(MSG), 64 * 64)

        native_rows = {
            "16-hop stamp (native)": (
                lambda: schedule.stamp_flat(MSG), 1
            ),
            "16-hop stamp (native x64)": (stamp_many_64, 64),
            "16-hop stamp (scatter x64)": (scatter_64, 64),
        }
        for name, (op, per_call) in native_rows.items():
            rate = max(throughput(op, duration=duration) for _ in range(3)) * per_call
            rates[name] = rate
            lines.append(f"{name:<26} | {rate:>12,.0f}")
            json_rows.append(
                {
                    "config": {
                        "operation": name,
                        "backend": "native",
                        "duration": duration,
                    },
                    "pps": round(rate, 1),
                }
            )
        # The kernel's whole reason to exist: one C call per packet (or
        # burst) must beat the per-hop hashlib clone loop.
        assert rates["16-hop stamp (native)"] > rates["16-hop stamp (prehashed)"]
        assert rates["16-hop stamp (native x64)"] >= rates["16-hop stamp (native)"]
    report("crypto_micro", "Cryptographic primitive rates (one core)", lines)
    report_json("crypto_micro", "crypto_primitive_rates", json_rows)

    # Sanity ordering: Eq. 6 (one truncated MAC over 12 bytes) must be
    # the cheapest of the protocol operations; Eq. 4 costs about one MAC.
    assert rates["EER HVF (Eq. 6)"] >= rates["HopAuth (Eq. 4)"] * 0.8
    assert rates["AEAD seal (Eq. 5)"] < rates["MAC (full)"]
    # The batch fast path's premise: cloning a prehashed state beats
    # re-running the key schedule, per HVF and across a 16-hop stamp.
    assert rates["EER HVF (prehashed ctx)"] > rates["EER HVF (Eq. 6)"]
    assert rates["16-hop stamp (prehashed)"] > rates["16-hop stamp (re-keyed)"]
    benchmark(operations["EER HVF (Eq. 6)"])
