"""Benchmark-suite configuration: make sibling helpers importable and
print the generated figure/table files at the end of the run."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_terminal_summary(terminalreporter):
    results_dir = os.path.join(os.path.dirname(__file__), "..", "benchmark_results")
    if not os.path.isdir(results_dir):
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for name in sorted(os.listdir(results_dir)):
        path = os.path.join(results_dir, name)
        with open(path) as handle:
            terminalreporter.write(handle.read() + "\n")
