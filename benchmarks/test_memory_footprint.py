"""Data-plane memory footprints: the statelessness claim, measured.

§4.6: the border router needs *no per-reservation state* — "all
necessary keys can be derived on the fly from a single AS-specific
secret value".  This bench measures actual Python heap growth per
component as reservations scale, against the IntServ baseline whose
routers grow linearly:

* border router: flat (only fixed-size filters/sketches);
* gateway: linear in reservations it originates (expected and local:
  a source AS naturally knows its own reservations, §7.1);
* IntServ router: linear at *every* hop — the design Colibri retires.
"""

from __future__ import annotations

import gc

import pytest

from _helpers import quick_mode, report
from test_fig5_gateway import build_gateway
from repro.baselines import IntServNetwork
from repro.crypto.drkey import DrkeyDeriver
from repro.dataplane.hvf import ColibriKeys
from repro.dataplane.router import BorderRouter
from repro.packets.fields import EerInfo
from repro.reservation import (
    E2EReservation,
    E2EVersion,
    ReservationId,
    ShardedReservationStore,
)
from repro.topology import IsdAs
from repro.topology.addresses import HostAddr
from repro.topology.graph import NO_INTERFACE
from repro.topology.segments import HopField
from repro.util.clock import SimClock
from repro.util.memsize import deep_size
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000
SCALES = [0, 1000, 10_000]
STORE_SCALES = [2_000, 10_000] if quick_mode() else [10_000, 100_000]


def router_size_at(reservations: int) -> int:
    """A border router after 'learning about' N reservations — which it
    never does: its size is whatever its fixed-size structures cost."""
    clock = SimClock(0.0)
    keys = ColibriKeys(DrkeyDeriver(IsdAs(1, BASE + 1), clock, seed=b"m" * 16))
    router = BorderRouter(IsdAs(1, BASE + 1), keys, clock)
    # The router sees packets from N reservations; it stores nothing
    # about them (the OFD sketch and Bloom filters are fixed-size).
    return deep_size(router)


def gateway_size_at(reservations: int) -> int:
    if reservations == 0:
        gateway, _ = build_gateway(4, 1)
        gateway.uninstall(list(gateway._reservations)[0])
        return deep_size(gateway)
    gateway, _ = build_gateway(4, reservations)
    return deep_size(gateway)


def build_store(live: int, near_fraction: float = 0.0) -> ShardedReservationStore:
    """A CServ reservation store holding ``live`` EERs.

    Payload objects (``eer_info``, hops) are shared across records so the
    measured growth is the store's own per-EER state — record, version,
    expiry-wheel entry, shard route — not duplicated request payloads.
    ``near_fraction`` of the population expires at t=10 (sweepable), the
    rest is spread over ~50k expiry buckets far in the future.
    """
    store = ShardedReservationStore()
    src = IsdAs(1, BASE + 1)
    info = EerInfo(HostAddr(1), HostAddr(2))
    hops = (
        HopField(src, NO_INTERFACE, 1),
        HopField(IsdAs(1, BASE + 2), 1, NO_INTERFACE),
    )
    near = int(live * near_fraction)
    for i in range(live):
        expiry = 10.0 if i < near else 1000.0 + (i % 50_000)
        store.add_eer(
            E2EReservation(
                ReservationId(src, i + 1),
                info,
                hops,
                (),
                E2EVersion(version=1, bandwidth=1.0, expiry=expiry),
            )
        )
    return store


def store_size_at(reservations: int) -> int:
    return deep_size(build_store(reservations))


def intserv_size_at(reservations: int) -> int:
    path = [IsdAs(1, BASE + i) for i in range(1, 5)]
    net = IntServNetwork(path, capacity=gbps(10_000))
    for _ in range(reservations):
        net.reserve(path[0], path[-1], mbps(1))
    return deep_size(net.routers[path[0]])


@pytest.mark.benchmark(group="memory")
def test_memory_footprints(benchmark):
    gc.collect()
    lines = [
        f"{'reservations':>13} | {'Colibri BR':>11} | {'Colibri GW':>11} | "
        f"{'CServ store':>11} | {'IntServ router':>14}"
    ]
    br_sizes, gw_sizes, store_sizes, intserv_sizes = [], [], [], []
    for scale in SCALES:
        br = router_size_at(scale)
        gw = gateway_size_at(scale)
        cs = store_size_at(scale)
        rsvp = intserv_size_at(scale)
        br_sizes.append(br)
        gw_sizes.append(gw)
        store_sizes.append(cs)
        intserv_sizes.append(rsvp)
        lines.append(
            f"{scale:>13} | {br / 1024:9.0f}KB | {gw / 1024:9.0f}KB | "
            f"{cs / 1024:9.0f}KB | {rsvp / 1024:12.0f}KB"
        )
    lines.append("(deep heap size per component; BR flat = §4.6 statelessness)")
    report("memory_footprint", "Per-component memory vs reservation count", lines)

    # The router is flat; IntServ routers, the gateway, and the CServ
    # store grow linearly in the reservations they legitimately own.
    assert br_sizes[-1] < br_sizes[0] * 1.2 + 64 * 1024
    assert intserv_sizes[-1] > intserv_sizes[0] * 50
    assert gw_sizes[-1] > gw_sizes[0] * 50  # expected: state lives at the source
    assert store_sizes[-1] > store_sizes[1] * 5  # linear in live EERs

    benchmark(lambda: router_size_at(0))


@pytest.mark.benchmark(group="memory")
def test_store_memory_linear_in_live(benchmark):
    """The reservation store's heap must be linear in *live* EERs.

    Two failure modes would break a million-EER deployment: superlinear
    per-EER overhead (the expiry index costing more than the records it
    indexes) and state that survives the reservations — swept EERs whose
    wheel entries, shard routes, or allocation rows stay behind.  Half
    the population here expires at t=10; after the sweep the store must
    shrink by roughly that half.
    """
    gc.collect()
    lines = [
        f"{'live EERs':>11} | {'store size':>11} | {'bytes/EER':>10} | "
        f"{'after sweeping half':>19}"
    ]
    per_eer = []
    for scale in STORE_SCALES:
        store = build_store(scale, near_fraction=0.5)
        gc.collect()
        before = deep_size(store)
        counts, _, _ = store.sweep_expired_details(100.0)
        assert counts["eers"] == scale // 2
        after = deep_size(store)
        per_eer.append(before / scale)
        lines.append(
            f"{scale:>11,} | {before / 1024:9.0f}KB | {before / scale:>10.0f} | "
            f"{after / 1024:17.0f}KB"
        )
        # The sweep must return the dead half's memory, not just its ids.
        assert after < before * 0.75
    lines.append("(shared payloads excluded; store-owned state only)")
    report(
        "memory_footprint_store",
        "Reservation-store memory vs live EER population",
        lines,
    )
    # Linear means flat bytes/EER across a 10x population jump.
    assert max(per_eer) < min(per_eer) * 1.5

    benchmark(lambda: build_store(1000))
