"""Topology and beaconing scalability (management scalability, §1).

Not a paper figure, but the substrate claim behind §6.2's "Colibri's
control plane will be able to scale to large, highly-interconnected
networks": segment discovery and path lookup must stay cheap as the AS
graph grows with a realistic (power-law) degree distribution.
"""

from __future__ import annotations

import time

import pytest

from _helpers import report
from repro.topology import Beaconing, PathLookup, build_power_law

SIZES = [100, 300, 600, 1000]


@pytest.mark.benchmark(group="topology")
def test_beaconing_scale(benchmark):
    lines = [f"{'ASes':>6} | {'beaconing':>10} | {'segments':>9} | {'lookup':>9}"]
    times = []
    for size in SIZES:
        topology = build_power_law(as_count=size, isd_count=5)
        start = time.perf_counter()
        beaconing = Beaconing(topology)
        beacon_time = time.perf_counter() - start
        counts = beaconing.segment_count()
        lookup = PathLookup(beaconing)
        leaves = [n.isd_as for n in topology.ases() if not n.is_core]
        src = [a for a in leaves if a.isd == 1][0]
        dst = [a for a in leaves if a.isd == 3][0]
        start = time.perf_counter()
        for _ in range(20):
            lookup.paths(src, dst, limit=3)
        lookup_time = (time.perf_counter() - start) / 20
        times.append((size, beacon_time))
        lines.append(
            f"{size:>6} | {beacon_time * 1000:8.1f}ms | "
            f"{counts['down_segments'] + counts['core_segments']:>9} | "
            f"{lookup_time * 1000:7.2f}ms"
        )
    report(
        "topology_scale",
        "Beaconing and path lookup vs. AS count (power-law topologies)",
        lines,
    )
    # Sub-quadratic growth: 10x the ASes costs well under 100x the time.
    small, large = times[0][1], times[-1][1]
    assert large < small * 100

    topology = build_power_law(as_count=300, isd_count=5)
    benchmark(lambda: Beaconing(topology))
