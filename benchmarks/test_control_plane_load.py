"""Full control-plane request processing (§6.1's actual measurement).

Figures 3/4 isolate the admission computation; the paper's §6.1 setup
measures "the time elapsed between the request arriving and the response
leaving the service" — which includes DRKey MAC verification, grant
accumulation, HopAuth computation and AEAD sealing at every on-path AS.
This bench runs that whole pipeline over the 6-AS inter-ISD path:

* full SegR setup (6-AS hop-by-hop chain, per-AS tokens);
* full EER setup (roles, policies, HopAuths, AEAD, gateway install);
* full EER renewal.

The §6.2 throughput floors (>800 SegReq/s, >2000 EEReq/s per core) are
asserted against these *complete* request rates — a stricter check than
the admission-only versions in the Fig. 3/4 benches.
"""

from __future__ import annotations

import pytest

from _helpers import report, throughput
from repro.sim import ColibriNetwork
from repro.topology import IsdAs, build_two_isd_topology
from repro.topology.addresses import HostAddr
from repro.util.units import gbps, kbps, mbps

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 101)
DST = IsdAs(2, BASE + 101)


def build_net():
    net = ColibriNetwork(build_two_isd_topology())
    net.reserve_segments(SRC, DST, gbps(10))
    # Lift the per-AS DoC rate limiters (§5.3): they are sized for real
    # time, but the bench fires thousands of requests within one frozen
    # simulated second — raw capability is what we measure here.
    for isd_as in net.ases():
        limiter = net.cserv(isd_as).request_limiter
        limiter.rate = 1e12
        limiter.burst = 1e12
        limiter._state.clear()  # forget buckets opened at the old burst
    return net


@pytest.mark.benchmark(group="control-load")
def test_full_segr_setup_rate(benchmark):
    net = build_net()
    cserv = net.cserv(SRC)
    segment = net.path_lookup.paths(SRC, IsdAs(1, BASE + 1), limit=1)[0].segments[0]

    def one():
        cserv.setup_segment(segment, kbps(1), register=False)

    rate = throughput(one, duration=0.4)
    report(
        "control_load_segr",
        "Full SegR setup over a 3-AS up-segment (paper floor: >800/s)",
        [f"measured: {rate:,.0f} complete setups/s "
         "(DRKey MACs + admission + tokens at every AS)"],
    )
    assert rate > 800
    benchmark(one)


@pytest.mark.benchmark(group="control-load")
def test_full_eer_setup_rate(benchmark):
    net = build_net()
    cserv = net.cserv(SRC)
    counter = [0]

    def one():
        counter[0] += 1
        cserv.setup_eer(
            DST, HostAddr(counter[0] % (1 << 30)), HostAddr(2), kbps(1)
        )

    rate = throughput(one, duration=0.4)
    report(
        "control_load_eer",
        "Full EER setup over the 6-AS path (paper floor: >2000/s total path work)",
        [
            f"measured: {rate:,.0f} complete setups/s",
            "(each setup = 6 per-AS admissions + MAC checks + 6 HopAuths",
            " + 6 AEAD seals/opens + gateway install)",
        ],
    )
    # One setup does the §6 unit of work 6x over; compare per-AS rate.
    assert rate * 6 > 2000
    benchmark(one)


@pytest.mark.benchmark(group="control-load")
def test_full_eer_renewal_rate(benchmark):
    net = build_net()
    cserv = net.cserv(SRC)
    handle = cserv.setup_eer(DST, HostAddr(1), HostAddr(2), mbps(1))
    cserv.renewal_limiter.rate = 1e9  # lift the 1/s cap to measure raw cost
    cserv.renewal_limiter.burst = 1e9
    state = {"handle": handle}

    def one():
        state["handle"] = cserv.renew_eer(state["handle"])

    rate = throughput(one, duration=0.4)
    report(
        "control_load_renewal",
        "Full EER renewal over the 6-AS path",
        [f"measured: {rate:,.0f} complete renewals/s"],
    )
    assert rate * 6 > 2000
    benchmark(one)
