"""Full control-plane request processing (§6.1's actual measurement).

Figures 3/4 isolate the admission computation; the paper's §6.1 setup
measures "the time elapsed between the request arriving and the response
leaving the service" — which includes DRKey MAC verification, grant
accumulation, HopAuth computation and AEAD sealing at every on-path AS.
This bench runs that whole pipeline over the 6-AS inter-ISD path:

* full SegR setup (6-AS hop-by-hop chain, per-AS tokens);
* full EER setup (roles, policies, HopAuths, AEAD, gateway install);
* full EER renewal.

The §6.2 throughput floors (>800 SegReq/s, >2000 EEReq/s per core) are
asserted against these *complete* request rates — a stricter check than
the admission-only versions in the Fig. 3/4 benches.
"""

from __future__ import annotations

import time

import pytest

from _helpers import quick_mode, report, report_json, throughput
from repro.reservation import E2EReservation, E2EVersion, ReservationId
from repro.sim import ColibriNetwork
from repro.topology import IsdAs, build_two_isd_topology
from repro.topology.addresses import HostAddr
from repro.topology.graph import NO_INTERFACE
from repro.topology.segments import HopField
from repro.util.units import gbps, kbps, mbps

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 101)
DST = IsdAs(2, BASE + 101)


def build_net():
    net = ColibriNetwork(build_two_isd_topology())
    net.reserve_segments(SRC, DST, gbps(10))
    # Lift the per-AS DoC rate limiters (§5.3): they are sized for real
    # time, but the bench fires thousands of requests within one frozen
    # simulated second — raw capability is what we measure here.
    for isd_as in net.ases():
        limiter = net.cserv(isd_as).request_limiter
        limiter.rate = 1e12
        limiter.burst = 1e12
        limiter._state.clear()  # forget buckets opened at the old burst
    return net


@pytest.mark.benchmark(group="control-load")
def test_full_segr_setup_rate(benchmark):
    net = build_net()
    cserv = net.cserv(SRC)
    segment = net.path_lookup.paths(SRC, IsdAs(1, BASE + 1), limit=1)[0].segments[0]

    def one():
        cserv.setup_segment(segment, kbps(1), register=False)

    rate = throughput(one, duration=0.4)
    report(
        "control_load_segr",
        "Full SegR setup over a 3-AS up-segment (paper floor: >800/s)",
        [f"measured: {rate:,.0f} complete setups/s "
         "(DRKey MACs + admission + tokens at every AS)"],
    )
    assert rate > 800
    benchmark(one)


@pytest.mark.benchmark(group="control-load")
def test_full_eer_setup_rate(benchmark):
    net = build_net()
    cserv = net.cserv(SRC)
    counter = [0]

    def one():
        counter[0] += 1
        cserv.setup_eer(
            DST, HostAddr(counter[0] % (1 << 30)), HostAddr(2), kbps(1)
        )

    rate = throughput(one, duration=0.4)
    report(
        "control_load_eer",
        "Full EER setup over the 6-AS path (paper floor: >2000/s total path work)",
        [
            f"measured: {rate:,.0f} complete setups/s",
            "(each setup = 6 per-AS admissions + MAC checks + 6 HopAuths",
            " + 6 AEAD seals/opens + gateway install)",
        ],
    )
    # One setup does the §6 unit of work 6x over; compare per-AS rate.
    assert rate * 6 > 2000
    benchmark(one)


@pytest.mark.benchmark(group="control-load")
def test_full_eer_renewal_rate(benchmark):
    net = build_net()
    cserv = net.cserv(SRC)
    handle = cserv.setup_eer(DST, HostAddr(1), HostAddr(2), mbps(1))
    cserv.renewal_limiter.rate = 1e9  # lift the 1/s cap to measure raw cost
    cserv.renewal_limiter.burst = 1e9
    state = {"handle": handle}

    def one():
        state["handle"] = cserv.renew_eer(state["handle"])

    rate = throughput(one, duration=0.4)
    report(
        "control_load_renewal",
        "Full EER renewal over the 6-AS path",
        [f"measured: {rate:,.0f} complete renewals/s"],
    )
    assert rate * 6 > 2000
    benchmark(one)


# A transfer AS between two ISDs serves EERs for *every* host pair that
# crosses it, so its store population is orders of magnitude larger than
# any single gateway's (§6.2 sizes the workload from CAIDA traces).  The
# storm config populates the source CServ's store to that scale and
# re-measures the same full-path renewal as above: with the incremental
# delta-recompute and the time-indexed expiry wheel, neither the renewal
# nor the sweep should degrade with the live population.
STORM_SCALES = [5_000, 20_000] if quick_mode() else [10_000, 1_000_000]
STORM_DYING = 500 if quick_mode() else 2_000


def populate_store(store, template, now: float, live: int, dying: int):
    """Fill ``store`` with ``live`` far-future EERs plus a ``dying``
    cohort (with real allocations) expiring one second from now.

    Records share ``eer_info`` and one of 16 hop tuples — the per-EER
    cost we are scaling is the store's own state (record, version,
    expiry-wheel entry, shard route), not payload duplication.  The 16
    distinct last-hop ASes spread the population across shards the same
    way distinct gateway pairs would.
    """
    info = template.eer_info
    segment_id = template.segment_ids[0]
    first_hop = HopField(SRC, NO_INTERFACE, 1)
    hop_variants = [
        (first_hop, HopField(IsdAs(2, BASE + 200 + i), 1, NO_INTERFACE))
        for i in range(16)
    ]
    base_id = 1 << 20
    for i in range(live):
        store.add_eer(
            E2EReservation(
                reservation_id=ReservationId(SRC, base_id + i),
                eer_info=info,
                hops=hop_variants[i % 16],
                segment_ids=(),
                # Spread expiries over 50k distinct wheel buckets so the
                # index is exercised at its real fan-out, not one bucket.
                first_version=E2EVersion(
                    version=1, bandwidth=1.0, expiry=now + 1000.0 + (i % 50_000)
                ),
            )
        )
    for i in range(dying):
        res_id = ReservationId(SRC, base_id + live + i)
        store.add_eer(
            E2EReservation(
                reservation_id=res_id,
                eer_info=info,
                hops=hop_variants[i % 16],
                segment_ids=(segment_id,),
                first_version=E2EVersion(version=1, bandwidth=1.0, expiry=now + 1.0),
            )
        )
        store.allocate_on_segment(segment_id, res_id, 1.0)


@pytest.mark.benchmark(group="control-load")
def test_renewal_storm_at_scale(benchmark):
    results = []
    rows = []
    state = {}
    for live in STORM_SCALES:
        net = build_net()
        cserv = net.cserv(SRC)
        handle = cserv.setup_eer(DST, HostAddr(1), HostAddr(2), mbps(1))
        cserv.renewal_limiter.rate = 1e9  # lift the 1/s cap (raw cost)
        cserv.renewal_limiter.burst = 1e9
        now = net.clock.now()
        store = cserv.store
        populate_store(
            store, store.get_eer(handle.reservation_id), now, live, STORM_DYING
        )
        state["handle"] = handle

        def one():
            state["handle"] = cserv.renew_eer(state["handle"])

        rate = throughput(one, duration=0.3)
        start = time.perf_counter()
        counts, dead_eers, _ = store.sweep_expired_details(now + 2.0)
        sweep_seconds = time.perf_counter() - start
        assert counts["eers"] == STORM_DYING
        assert len(dead_eers) == STORM_DYING
        assert store.eer_count() == live + 1  # storm cohort gone, filler lives
        results.append((live, rate, sweep_seconds))
        rows.append(
            {"config": {"live_eers": live, "dying": STORM_DYING}, "pps": rate}
        )
    dead_label = f"sweep of {STORM_DYING:,} dead"
    lines = [f"{'live EERs':>11} | {'renewals/s':>11} | {dead_label:>19}"]
    for live, rate, sweep_seconds in results:
        lines.append(
            f"{live:>11,} | {rate:>11,.0f} | {sweep_seconds * 1e3:>17.1f}ms"
        )
    lines.append("(full 6-AS renewal path; sweep via the per-shard expiry wheels)")
    report(
        "renewal_storm",
        "EER renewal + expiry sweep vs live store population",
        lines,
    )
    report_json(
        "control_load_renewal_storm",
        "full-path EER renewal rate and expiry-sweep time under a "
        "large live reservation population",
        rows,
    )
    # The point of the time-indexed store: both operations stay flat as
    # the population grows 100x (generous 2x/5x noise allowances).
    small, big = results[0], results[-1]
    assert big[1] > 0.5 * small[1], (
        f"renewal throughput degraded with store size: {small}→{big}"
    )
    assert big[2] < small[2] * 5 + 0.05, (
        f"sweep time grew with *live* population, not dead: {small}→{big}"
    )
    benchmark(one)
