"""Figure 6: gateway and border-router throughput vs. number of cores.

Paper result: "for both components, the performance is almost perfectly
linear in the number of cores dedicated to packet processing"; the
border router is faster than the gateway (34.4 Mpps vs 18.7 Mpps at 16
cores, 4-AS paths, ~32k reservations), and the gateway curves order by
reservation count.

Reproduction on this machine: the host exposes a single CPU, so true
parallel speedup cannot be observed.  The linearity claim, however,
rests on a structural property — the fast paths share no mutable state
(the router is fully stateless; the gateway shards by reservation ID) —
which we verify directly: we split the workload into k shards with
disjoint state and show per-shard throughput does not degrade as k
grows (no contention), then print the modeled k-core aggregate exactly
as Fig. 6 plots it.  On a multi-core host the same harness runs the
shards as processes (see ``run_parallel``).

Shape targets: BR single-core pps > GW single-core pps; GW pps ordered
by reservation count; per-shard throughput flat in k.
"""

from __future__ import annotations

import multiprocessing
import os
import random

import pytest

from _helpers import report, throughput
from test_fig5_gateway import build_gateway, random_send
from repro.constants import EER_LIFETIME
from repro.crypto.drkey import DrkeyDeriver
from repro.dataplane.hvf import ColibriKeys, eer_hvf, hop_authenticator
from repro.dataplane.router import BorderRouter
from repro.packets.colibri import ColibriPacket, PacketType
from repro.packets.fields import EerInfo, PathField, ResInfo, Timestamp
from repro.reservation.ids import ReservationId
from repro.topology.addresses import HostAddr, IsdAs
from repro.util.clock import SimClock

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 1)
ROUTER_AS = IsdAs(1, BASE + 2)

CORE_COUNTS = [1, 2, 4, 8, 16]
GATEWAY_RESERVATIONS = [1, 2**10, 2**15]


def build_router_and_packets(count: int = 64, path_length: int = 4):
    """A border router plus ``count`` honestly stamped packets arriving
    at its hop — the BR validation workload of Fig. 6."""
    clock = SimClock(1000.0)
    keys = ColibriKeys(DrkeyDeriver(ROUTER_AS, clock, seed=b"router-bench-key"))
    router = BorderRouter(ROUTER_AS, keys, clock)
    pairs = [(0, 1)] + [(2, 3)] * (path_length - 2) + [(4, 0)]
    path = PathField(tuple(pairs))
    eer_info = EerInfo(HostAddr(1), HostAddr(2))
    expiry = clock.now() + EER_LIFETIME
    packets = []
    for index in range(count):
        res_info = ResInfo(
            reservation=ReservationId(SRC, index + 1),
            bandwidth=1e9,
            expiry=expiry,
            version=1,
        )
        sigma = hop_authenticator(keys.hop_key(), res_info, eer_info, 2, 3)
        timestamp = Timestamp.create(clock.now(), expiry)
        packet = ColibriPacket(
            packet_type=PacketType.EER_DATA,
            path=path,
            res_info=res_info,
            timestamp=timestamp,
            hvfs=[b"\x00" * 4] * path_length,
            eer_info=eer_info,
            payload=b"",
            hop_index=1,
        )
        packet.hvfs[1] = eer_hvf(sigma, timestamp, packet.total_size)
        packets.append(packet)
    return router, packets


def router_pps(duration: float = 0.12, samples: int = 3) -> float:
    router, packets = build_router_and_packets()
    rng = random.Random(5)

    def one():
        router.validate_only(packets[rng.randrange(len(packets))])

    # Best-of sampling: host scheduler noise is one-sided.
    return max(throughput(one, duration=duration) for _ in range(samples))


def gateway_pps(reservations: int, duration: float = 0.12, samples: int = 3) -> float:
    gateway, ids = build_gateway(4, reservations)
    rng = random.Random(5)
    return max(
        throughput(lambda: random_send(gateway, ids, rng), duration=duration)
        for _ in range(samples)
    )


def _worker_router(args):
    """Process-pool worker: an independent router shard."""
    shard_index, duration = args
    return router_pps(duration)


def run_parallel(workers: int, duration: float = 0.2) -> float:
    """True multi-process aggregate pps (meaningful on multi-core hosts)."""
    with multiprocessing.Pool(workers) as pool:
        rates = pool.map(_worker_router, [(i, duration) for i in range(workers)])
    return sum(rates)


@pytest.mark.benchmark(group="fig6")
def test_fig6_series(benchmark):
    br_single = router_pps()
    gw_single = {r: gateway_pps(r) for r in GATEWAY_RESERVATIONS}

    # Shared-nothing verification: k disjoint shards, measured one after
    # another — contention-free design means per-shard pps stays flat.
    # Take the best shard per k: scheduler noise can only slow a shard
    # down, never speed it up, so the max is the contention-free signal.
    shard_rates = []
    for k in [1, 2, 4]:
        rates = [router_pps(duration=0.1, samples=2) for _ in range(k)]
        shard_rates.append((k, max(rates)))
    flat = [rate for _, rate in shard_rates]
    assert max(flat) < 2.0 * min(flat), f"shard contention detected: {shard_rates}"

    lines = [
        f"{'cores':>6} | {'BR':>9} | "
        + " | ".join(f"GW r=2^{r.bit_length() - 1:<2}" for r in GATEWAY_RESERVATIONS)
    ]
    for cores in CORE_COUNTS:
        row = [br_single * cores] + [gw_single[r] * cores for r in GATEWAY_RESERVATIONS]
        lines.append(
            f"{cores:>6} | " + " | ".join(f"{v / 1000:8.1f}k" for v in row)
        )
    lines.append(
        "(pps; cores>1 are the linear shared-nothing model — verified by "
        f"flat per-shard rates {[f'{r / 1000:.1f}k' for _, r in shard_rates]}; "
        f"host has {os.cpu_count()} CPU(s))"
    )
    report("fig6_scaling", "Fig. 6 — BR and GW throughput vs. cores", lines)

    # Shape: BR beats GW (it computes 2 MACs vs. path-length MACs + state).
    assert br_single > gw_single[2**15]
    # Shape: GW ordered by reservation count (cache pressure).
    assert gw_single[1] >= gw_single[2**15] * 0.95

    router, packets = build_router_and_packets()
    rng = random.Random(5)
    benchmark(lambda: router.validate_only(packets[rng.randrange(len(packets))]))


@pytest.mark.benchmark(group="fig6")
def test_benchmark_router_full_pipeline(benchmark):
    """The complete §4.6 pipeline (auth + replay + policing), not just
    validation — the per-packet cost a deployed BR pays."""
    router, packets = build_router_and_packets(count=4096)
    iterator = iter(packets)

    def one():
        nonlocal iterator
        try:
            packet = next(iterator)
        except StopIteration:  # replays would be suppressed; restart set
            router.duplicates._current.clear()
            router.duplicates._previous.clear()
            iterator = iter(packets)
            packet = next(iterator)
        router.process(packet)

    benchmark(one)


@pytest.mark.benchmark(group="fig6")
@pytest.mark.skipif(os.cpu_count() == 1, reason="single-CPU host: parallel run is meaningless")
def test_parallel_router_scaling(benchmark):
    """On multi-core hosts: measured (not modeled) aggregate pps."""
    lines = []
    single = run_parallel(1)
    for workers in [1, 2, 4]:
        aggregate = run_parallel(workers)
        lines.append(
            f"{workers} workers: {aggregate / 1000:8.1f}k pps "
            f"({aggregate / single:.2f}x)"
        )
    report("fig6_parallel_measured", "Fig. 6 — measured multi-process scaling", lines)
    benchmark(lambda: None)
