"""Figure 6: gateway and border-router throughput vs. number of cores.

Paper result: "for both components, the performance is almost perfectly
linear in the number of cores dedicated to packet processing"; the
border router is faster than the gateway (34.4 Mpps vs 18.7 Mpps at 16
cores, 4-AS paths, ~32k reservations), and the gateway curves order by
reservation count.

Reproduction: :class:`~repro.dataplane.shards.ShardExecutor` partitions
the reservation space over k shared-nothing shards — each an OS process
owning its *own* gateway/router/monitor — and measures aggregate
throughput.  Rows are labeled with how they were obtained:

* ``measured`` — every shard ran as its own process (requires >= k
  CPUs, or k=1);
* ``modeled`` — the host lacks the cores, so the busiest shard is
  measured and the linear shared-nothing model extrapolates, exactly
  the structural argument the paper's linearity rests on.

The executor's dispatch machinery is additionally exercised end to end
on every run (two real worker processes, ``force_processes=True``), so
the multiprocessing path cannot rot on single-CPU hosts.

Shape targets: BR single-core pps > GW single-core pps; GW pps ordered
by reservation count; per-shard throughput flat in k (no contention).
"""

from __future__ import annotations

import os
import random

import pytest

from _helpers import quick_mode, report, report_json, throughput
from test_fig5_gateway import build_gateway, make_batches, batch_pps, random_send
from repro.constants import EER_LIFETIME
from repro.crypto.drkey import DrkeyDeriver
from repro.dataplane.hvf import ColibriKeys, backend_name, eer_hvf, hop_authenticator
from repro.dataplane.router import BorderRouter
from repro.dataplane.shards import ShardExecutor, ShardWorkerPool
from repro.packets.colibri import ColibriPacket, PacketType
from repro.packets.fields import EerInfo, PathField, ResInfo, Timestamp
from repro.reservation.ids import ReservationId
from repro.topology.addresses import HostAddr, IsdAs
from repro.util.clock import SimClock

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 1)
ROUTER_AS = IsdAs(1, BASE + 2)

if quick_mode():
    CORE_COUNTS = [1, 2]
    GATEWAY_RESERVATIONS = [1, 2**10]
    SHARD_PACKETS = 2048
else:
    CORE_COUNTS = [1, 2, 4, 8, 16]
    GATEWAY_RESERVATIONS = [1, 2**10, 2**15]
    SHARD_PACKETS = 16384


def build_router_and_packets(count: int = 64, path_length: int = 4):
    """A border router plus ``count`` honestly stamped packets arriving
    at its hop — the BR validation workload of Fig. 6."""
    clock = SimClock(1000.0)
    keys = ColibriKeys(DrkeyDeriver(ROUTER_AS, clock, seed=b"router-bench-key"))
    router = BorderRouter(ROUTER_AS, keys, clock)
    pairs = [(0, 1)] + [(2, 3)] * (path_length - 2) + [(4, 0)]
    path = PathField(tuple(pairs))
    eer_info = EerInfo(HostAddr(1), HostAddr(2))
    expiry = clock.now() + EER_LIFETIME
    packets = []
    for index in range(count):
        res_info = ResInfo(
            reservation=ReservationId(SRC, index + 1),
            bandwidth=1e9,
            expiry=expiry,
            version=1,
        )
        sigma = hop_authenticator(keys.hop_key(), res_info, eer_info, 2, 3)
        timestamp = Timestamp.create(clock.now(), expiry)
        packet = ColibriPacket(
            packet_type=PacketType.EER_DATA,
            path=path,
            res_info=res_info,
            timestamp=timestamp,
            hvfs=[b"\x00" * 4] * path_length,
            eer_info=eer_info,
            payload=b"",
            hop_index=1,
        )
        packet.hvfs[1] = eer_hvf(sigma, timestamp, packet.total_size)
        packets.append(packet)
    return router, packets


def router_pps(duration: float = 0.12, samples: int = 3) -> float:
    """Single-stack router validation rate (batched bursts)."""
    router, packets = build_router_and_packets()
    rng = random.Random(5)
    bursts = [
        [packets[rng.randrange(len(packets))] for _ in range(64)]
        for _ in range(64)
    ]
    index = 0

    def one():
        nonlocal index
        router.validate_batch(bursts[index % len(bursts)])
        index += 1

    # Best-of sampling: host scheduler noise is one-sided.
    return max(throughput(one, duration=duration) for _ in range(samples)) * 64


def gateway_pps(reservations: int, duration: float = 0.12, samples: int = 3) -> float:
    """Single-stack gateway stamping rate (batched bursts)."""
    gateway, ids = build_gateway(4, reservations)
    batches = make_batches(ids, random.Random(5), count=128)
    return max(batch_pps(gateway, batches, duration) for _ in range(samples))


@pytest.mark.benchmark(group="fig6")
def test_fig6_series(benchmark):
    cpus = os.cpu_count() or 1
    router_exec = ShardExecutor(
        "router", reservations=2**10, packets=SHARD_PACKETS
    )
    gateway_execs = {
        r: ShardExecutor("gateway", reservations=r, packets=SHARD_PACKETS)
        for r in GATEWAY_RESERVATIONS
    }

    json_rows = []
    rows = {}
    modes = {}
    backend = backend_name()
    # One persistent pool for the whole sweep: workers start (and warm
    # their private stacks) once, so every recorded number is
    # steady-state forwarding, not fork + first-touch.  The first run of
    # each configuration primes worker-local state; the second is the
    # one recorded.  Hosts without the cores take the modeled fallback
    # inside ``run`` regardless of the pool.
    with ShardWorkerPool(max(CORE_COUNTS)) as pool:
        for cores in CORE_COUNTS:
            router_exec.run(cores, pool=pool)  # warm-up pass
            br = router_exec.run(cores, pool=pool)
            gw = {}
            for r in GATEWAY_RESERVATIONS:
                gateway_execs[r].run(cores, pool=pool)  # warm-up pass
                gw[r] = gateway_execs[r].run(cores, pool=pool)
            rows[cores] = [br.aggregate_pps] + [
                gw[r].aggregate_pps for r in GATEWAY_RESERVATIONS
            ]
            modes[cores] = br.mode
            json_rows.append(
                {
                    "config": {
                        "component": "router",
                        "cores": cores,
                        "mode": br.mode,
                        "backend": backend,
                    },
                    "pps": round(br.aggregate_pps, 1),
                }
            )
            for r in GATEWAY_RESERVATIONS:
                json_rows.append(
                    {
                        "config": {
                            "component": "gateway",
                            "cores": cores,
                            "reservations": r,
                            "mode": gw[r].mode,
                            "backend": backend,
                        },
                        "pps": round(gw[r].aggregate_pps, 1),
                    }
                )

    # Prove the process-dispatch machinery on every run, whatever the
    # host: two real worker processes, honestly labeled.
    probe = ShardExecutor("router", reservations=256, packets=2048)
    dispatched = probe.run(2, force_processes=True)
    assert len(dispatched.shards) == 2
    assert all(outcome.packets > 0 for outcome in dispatched.shards)

    lines = [
        f"{'cores':>6} | {'mode':>10} | {'BR':>9} | "
        + " | ".join(f"GW r=2^{r.bit_length() - 1:<2}" for r in GATEWAY_RESERVATIONS)
    ]
    for cores in CORE_COUNTS:
        lines.append(
            f"{cores:>6} | {modes[cores]:>10} | "
            + " | ".join(f"{v / 1000:8.1f}k" for v in rows[cores])
        )
    lines.append(
        f"(pps; shared-nothing shards via repro.dataplane.shards — "
        f"'measured' rows ran one OS process per shard, 'modeled' rows "
        f"extrapolate the measured busiest shard linearly; host has "
        f"{cpus} CPU(s).  Process dispatch verified: 2 forced worker "
        f"processes aggregated {dispatched.aggregate_pps / 1000:.1f}k pps "
        f"[{dispatched.mode}].)"
    )
    report("fig6_scaling", "Fig. 6 — BR and GW throughput vs. cores", lines)
    report_json("fig6", "fig6_core_scaling", json_rows)

    # Shape: BR beats GW (it computes 2 MACs vs. path-length MACs + state).
    br_single = rows[1][0]
    gw_single = dict(zip(GATEWAY_RESERVATIONS, rows[1][1:]))
    assert br_single > gw_single[GATEWAY_RESERVATIONS[-1]]
    # Shape: GW ordered by reservation count (cache pressure).
    assert gw_single[1] >= gw_single[GATEWAY_RESERVATIONS[-1]] * 0.95
    # Shape: per-shard throughput flat in k — shards share nothing, so
    # the only allowed trend is noise (and smaller per-shard tables).
    per_shard = []
    for cores in CORE_COUNTS[: 3 if len(CORE_COUNTS) >= 3 else len(CORE_COUNTS)]:
        result = router_exec.run(cores)
        best = max(outcome.pps for outcome in result.shards if outcome.packets)
        per_shard.append(best)
    assert max(per_shard) < 2.0 * min(per_shard), (
        f"shard contention detected: {per_shard}"
    )

    router, packets = build_router_and_packets()
    rng = random.Random(5)
    benchmark(lambda: router.validate_only(packets[rng.randrange(len(packets))]))


@pytest.mark.benchmark(group="fig6")
def test_benchmark_router_full_pipeline(benchmark):
    """The complete §4.6 pipeline (auth + replay + policing), not just
    validation — the per-packet cost a deployed BR pays."""
    router, packets = build_router_and_packets(count=4096)
    iterator = iter(packets)

    def one():
        nonlocal iterator
        try:
            packet = next(iterator)
        except StopIteration:  # replays would be suppressed; restart set
            router.duplicates._current.clear()
            router.duplicates._previous.clear()
            iterator = iter(packets)
            packet = next(iterator)
        router.process(packet)

    benchmark(one)


@pytest.mark.benchmark(group="fig6")
@pytest.mark.skipif(os.cpu_count() == 1, reason="single-CPU host: parallel run is meaningless")
def test_parallel_router_scaling(benchmark):
    """On multi-core hosts: measured (not modeled) aggregate pps."""
    executor = ShardExecutor("router", reservations=2**10, packets=SHARD_PACKETS)
    lines = []
    single = executor.run(1).aggregate_pps
    for workers in [1, 2, 4]:
        result = executor.run(workers, force_processes=True)
        lines.append(
            f"{workers} workers [{result.mode}]: "
            f"{result.aggregate_pps / 1000:8.1f}k pps "
            f"({result.aggregate_pps / single:.2f}x)"
        )
    report("fig6_parallel_measured", "Fig. 6 — measured multi-process scaling", lines)
    benchmark(lambda: None)
