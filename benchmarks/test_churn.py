"""Control-plane behaviour under sustained stochastic churn.

Not a paper figure, but the operational regime behind §6's numbers: a
CServ in production sees a continuous Poisson arrival process of EER
setups, renewals, expiries and sweeps — all interleaved.  This bench
drives 10 simulated minutes of churn and reports the sustained rates
plus the wall-clock cost per simulated second, demonstrating that the
control plane's O(1) admissions keep long-horizon operation cheap.
"""

from __future__ import annotations

import time

import pytest

from _helpers import report
from repro.control import RenewalScheduler
from repro.sim import ColibriNetwork, EventLoop
from repro.sim.workload import EerWorkload
from repro.topology import IsdAs, build_two_isd_topology
from repro.util.units import mbps

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 101)
DST = IsdAs(2, BASE + 101)
HORIZON = 600.0  # 10 simulated minutes


@pytest.mark.benchmark(group="churn")
def test_churn_sustained(benchmark):
    net = ColibriNetwork(build_two_isd_topology())
    loop = EventLoop(net.clock)
    segments = net.reserve_segments(SRC, DST, mbps(500))
    keepers = []
    for segr in segments:
        owner = net.cserv(segr.reservation_id.src_as)
        keeper = RenewalScheduler(owner)
        keeper.track_segment(segr.reservation_id, bandwidth=mbps(500))
        keepers.append(keeper)
    workload = EerWorkload(
        net, loop, SRC, DST,
        arrival_rate=2.0, mean_holding=40.0,
        min_bandwidth=mbps(0.05), max_bandwidth=mbps(5),
    )
    workload.start()
    loop.every(30.0, lambda: ([k.tick() for k in keepers], net.housekeeping()))

    wall_start = time.perf_counter()
    loop.run_until(net.clock.now() + HORIZON)
    wall = time.perf_counter() - wall_start

    stats = workload.stats
    lines = [
        f"simulated horizon: {HORIZON:,.0f} s   wall time: {wall:.2f} s "
        f"({HORIZON / wall:,.0f}x real time)",
        f"EER arrivals: {stats.arrivals}   admitted: {stats.admitted} "
        f"({stats.admission_ratio:.0%})   renewals: {stats.renewals}",
        f"probe delivery: {stats.delivery_ratio:.2%}   "
        f"active sessions at end: {workload.active_sessions}",
    ]
    report("churn", "Sustained churn — 10 simulated minutes of Poisson EERs", lines)

    assert stats.arrivals > 800
    assert stats.admission_ratio > 0.9
    assert stats.delivery_ratio > 0.99
    assert HORIZON / wall > 20  # the sim outruns real time comfortably

    benchmark.pedantic(
        lambda: loop.run_until(net.clock.now() + 10.0), rounds=10, iterations=1
    )
