"""Figure 3: SegR admission time vs. number of existing SegRs.

Paper result: "the time to process SegR admissions is independent of the
number of existing SegRs, even when crossing the same interfaces" — flat
curves around 1 ms for ratios {0, 0.1, 0.5, 0.9} of existing SegRs
sharing the new request's source, out to 10 000 existing SegRs; §6.2
additionally claims > 800 SegReqs/s on one core.

Shape target here: the per-admission time varies by far less than the
10 000x growth in state (memoized aggregates make it O(1)); throughput
exceeds the paper's 800 req/s.
"""

from __future__ import annotations

import pytest

from _helpers import report, throughput, time_per_call
from repro.admission import SegmentAdmission, TrafficMatrix
from repro.reservation.ids import ReservationId
from repro.topology import IsdAs, build_line_topology
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000

EXISTING_COUNTS = [0, 2000, 4000, 6000, 8000, 10_000]
RATIOS = [0.0, 0.1, 0.5, 0.9]
NEW_SOURCE = IsdAs(1, BASE + 7777)


def build_admission(existing: int, ratio: float) -> SegmentAdmission:
    """An AS pre-loaded with ``existing`` SegRs over one interface pair,
    ``ratio`` of them from the same source as the upcoming request."""
    topology = build_line_topology(3, capacity=gbps(400_000))
    middle = IsdAs(1, BASE + 2)
    admission = SegmentAdmission(TrafficMatrix(topology.node(middle)))
    same_source = int(existing * ratio)
    for index in range(existing):
        source = NEW_SOURCE if index < same_source else IsdAs(1, BASE + 10_000 + index)
        admission.admit(
            ReservationId(source, index + 1), source, 1, 2, mbps(1), 0.0
        )
    return admission


def one_admission(admission: SegmentAdmission, local_id: int):
    """One full admission cycle at a transit AS: evaluate, commit, and
    release again so repeated measurement leaves state unchanged."""
    grant = admission.evaluate(
        ReservationId(NEW_SOURCE, local_id), NEW_SOURCE, 1, 2, mbps(1)
    )
    admission.commit(grant)
    admission.release(ReservationId(NEW_SOURCE, local_id))


@pytest.mark.benchmark(group="fig3")
def test_fig3_series(benchmark):
    lines = [f"{'existing SegRs':>15} | " + " | ".join(f"ratio={r:<4}" for r in RATIOS)]
    flatness = {}
    for existing in EXISTING_COUNTS:
        row = []
        for ratio in RATIOS:
            admission = build_admission(existing, ratio)
            per_call = time_per_call(
                lambda: one_admission(admission, 999_999), repeat=50, number=20
            )
            row.append(per_call * 1e6)
            flatness.setdefault(ratio, []).append(per_call)
        lines.append(
            f"{existing:>15} | " + " | ".join(f"{v:7.2f}µs " for v in row)
        )
    report("fig3_segr_admission", "Fig. 3 — SegR admission time (flat = O(1))", lines)
    # Shape assertion: with 10 000x more state, admission may not be even
    # 5x slower (the paper's curves are flat; we allow noise headroom).
    for ratio, series in flatness.items():
        assert max(series) < 5 * max(min(series), 1e-7), (
            f"admission time grew with state at ratio {ratio}: {series}"
        )
    # Canonical point for the pytest-benchmark table: worst case of the
    # sweep (10 000 existing SegRs, ratio 0.5).
    admission = build_admission(10_000, 0.5)
    counter = [500_000]

    def one():
        counter[0] += 1
        one_admission(admission, counter[0])

    benchmark(one)


@pytest.mark.benchmark(group="fig3")
def test_segreq_throughput_exceeds_paper(benchmark):
    """§6.2: 'more than 800 SegReqs per second' on one core."""
    admission = build_admission(10_000, 0.5)
    counter = [1_000_000]

    def one():
        counter[0] += 1
        one_admission(admission, counter[0])

    rate = throughput(one, duration=0.3)
    report(
        "fig3_throughput",
        "SegReq admission throughput (paper: >800/s per core)",
        [f"measured: {rate:,.0f} admissions/s on one core"],
    )
    assert rate > 800
    benchmark(one)


@pytest.mark.benchmark(group="fig3")
def test_benchmark_segr_admission_empty(benchmark):
    admission = build_admission(0, 0.0)
    counter = [500_000]

    def one():
        counter[0] += 1
        one_admission(admission, counter[0])

    benchmark(one)
