"""Internet-scale campaign bench: the flash-crowd scenario at scale.

The full configuration drives the canonical flash-crowd campaign over a
2000-AS CAIDA-like topology until it has processed ≥10⁵ EER arrivals —
the EXPERIMENTS.md "internet-scale" record — with every harness
invariant live (accounting audit, journal completeness,
identity-verified policing, SLO replay equivalence, zero residual
state).  Quick mode (``COLIBRI_BENCH_QUICK=1``, the CI campaign-smoke
job) runs the 300-AS default scale instead: same code paths, minutes
less wall clock.

Throughput is reported as EER arrivals processed per wall second, gated
by ``tools/bench_regress.py`` per exact configuration.
"""

from __future__ import annotations

import dataclasses
import time

from _helpers import quick_mode, report, report_json
from repro.sim.campaign import CampaignRunner
from repro.sim.campaigns import DEFAULT, FULL, TOPOLOGY_PARAMS, flash_crowd


def test_campaign_scale():
    scale = DEFAULT if quick_mode() else FULL
    as_count = TOPOLOGY_PARAMS[scale]["as_count"]
    spec = dataclasses.replace(
        flash_crowd(scale, seed=7),
        # Full scale journals every admission decision on every on-path
        # AS plus sweeps: size the ring so nothing is ever dropped
        # (replay equivalence requires a complete journal).
        journal_capacity=1 << 21,
    )
    runner = CampaignRunner(spec)
    wall_start = time.perf_counter()
    result = runner.run()
    wall = time.perf_counter() - wall_start

    assert result.ok, result.violations
    assert result.replay_equivalent
    arrivals = sum(r.stats["arrivals"] for r in result.phase_reports)
    admitted = sum(r.stats["admitted"] for r in result.phase_reports)
    journal_events = int(result.phase_reports[-1].memory["journal_events"])
    peak_store_kb = max(
        r.memory["store_bytes"] for r in result.phase_reports
    ) / 1024
    if not quick_mode():
        assert as_count >= 2000
        assert arrivals >= 100_000
    assert result.phase_reports[-1].memory["live_eers"] == 0.0

    lines = [
        f"scale: {scale} ({as_count} ASes)   wall: {wall:,.1f} s",
        f"EER arrivals: {arrivals:,}   admitted: {admitted:,} "
        f"({admitted / max(1, arrivals):.1%})   "
        f"throughput: {arrivals / wall:,.0f} arrivals/s",
        f"journal: {journal_events:,} events (0 dropped)   "
        f"peak store: {peak_store_kb:,.0f} KB   residual EERs: 0",
        f"SLO replay equivalent: {result.replay_equivalent}   "
        f"violations: {len(result.violations)}",
    ]
    report(
        "campaign_scale",
        "Internet-scale flash-crowd campaign (phased harness, all "
        "invariants live)",
        lines,
    )
    report_json(
        "campaign_scale",
        "campaign_scale",
        [
            {
                "config": {
                    "scale": scale,
                    "as_count": as_count,
                    "seed": spec.seed,
                },
                "pps": arrivals / wall,
            }
        ],
    )
