"""Ablations of the design choices DESIGN.md §5 calls out.

1. **Memoization** (§4.7/Fig. 3): disable the incremental aggregates and
   SegR admission degenerates to O(n) — the curve the paper avoided.
2. **Two-step MAC** (§4.5/Fig. 2): recompute the HopAuth (Eq. 4) per
   packet at the gateway instead of caching it per reservation — the
   per-packet cost roughly doubles per hop.
3. **Traffic-class isolation** (§3.4/App. B): push reservation traffic
   through the shared best-effort queue and its guarantee disappears
   under a flood.
"""

from __future__ import annotations

import random

import pytest

from _helpers import report, time_per_call, throughput
from test_fig3_segr_admission import NEW_SOURCE, build_admission, one_admission
from test_fig5_gateway import build_gateway
from repro.admission import SegmentAdmission, TrafficMatrix
from repro.dataplane.hvf import eer_hvf, hop_authenticator
from repro.dataplane.queueing import PriorityScheduler, TrafficClass
from repro.packets.fields import Timestamp
from repro.reservation.ids import ReservationId
from repro.topology import IsdAs, build_line_topology
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000


def build_naive_admission(existing: int) -> SegmentAdmission:
    topology = build_line_topology(3, capacity=gbps(400_000))
    middle = IsdAs(1, BASE + 2)
    admission = SegmentAdmission(TrafficMatrix(topology.node(middle)), memoize=False)
    for index in range(existing):
        source = IsdAs(1, BASE + 10_000 + index)
        admission.admit(ReservationId(source, index + 1), source, 1, 2, mbps(1), 0.0)
    return admission


@pytest.mark.benchmark(group="ablation")
def test_ablation_memoization(benchmark):
    counts = [0, 1000, 2000, 4000]
    lines = [f"{'existing SegRs':>15} | {'memoized':>10} | {'naive':>10}"]
    memoized, naive = [], []
    for existing in counts:
        fast = build_admission(existing, 0.0)
        slow = build_naive_admission(existing)
        fast_time = time_per_call(
            lambda: one_admission(fast, 999_999), repeat=20, number=10
        )
        slow_time = time_per_call(
            lambda: one_admission(slow, 999_999), repeat=5, number=2
        )
        memoized.append(fast_time)
        naive.append(slow_time)
        lines.append(
            f"{existing:>15} | {fast_time * 1e6:8.1f}µs | {slow_time * 1e6:8.1f}µs"
        )
    report(
        "ablation_memoization",
        "Ablation — memoized vs naive SegR admission (Fig. 3 without the trick)",
        lines,
    )
    # Naive grows with state; memoized stays flat.
    assert naive[-1] > naive[0] * 5, f"naive should grow: {naive}"
    assert memoized[-1] < memoized[0] * 5, f"memoized should stay flat: {memoized}"

    fast = build_admission(4000, 0.0)
    benchmark(lambda: one_admission(fast, 999_999))


@pytest.mark.benchmark(group="ablation")
def test_ablation_two_step_mac(benchmark):
    """Per-packet HVF crypto at the gateway, isolated: with the two-step
    scheme the HopAuth sigma_i (Eq. 4) is computed once per reservation
    at setup and each packet costs only Eq. 6; the ablated design pays
    Eq. 4 + Eq. 6 on every packet for every hop."""
    gateway, ids = build_gateway(4, 2**10)
    entry = gateway._reservations[ids[0]]
    version = entry.versions[1]
    sigmas = version.hop_auths
    hop_key = b"k" * 16
    timestamp = Timestamp(123456, 0)
    hops = len(entry.path)

    def two_step_crypto():
        for hop_index in range(hops):
            eer_hvf(sigmas[hop_index], timestamp, 600)

    def ablated_crypto():
        for hop_index in range(hops):
            sigma = hop_authenticator(
                hop_key,
                version.res_info,
                entry.eer_info,
                *entry.path.pair(hop_index),
            )
            eer_hvf(sigma, timestamp, 600)

    two_step_rate = throughput(two_step_crypto, duration=0.2)
    ablated_rate = throughput(ablated_crypto, duration=0.2)
    lines = [
        f"two-step (cached sigma, Eq. 6 only): {two_step_rate / 1000:8.1f}k pkt/s of HVF work",
        f"ablated (Eq. 4 + Eq. 6 per packet):  {ablated_rate / 1000:8.1f}k pkt/s of HVF work",
        f"two-step speedup: {two_step_rate / ablated_rate:.2f}x at {hops} hops",
    ]
    report(
        "ablation_two_step_mac",
        "Ablation — two-step HVF computation (Fig. 2)",
        lines,
    )
    # Halving the MACs per hop must show up as a clear speedup.
    assert two_step_rate > ablated_rate * 1.3
    benchmark(two_step_crypto)


@pytest.mark.benchmark(group="ablation")
def test_ablation_isolation(benchmark):
    """Reservation survival with and without traffic classes (App. B)."""

    def run(isolated: bool) -> float:
        scheduler = PriorityScheduler(mbps(40), queue_bytes=25_000)
        reservation_class = (
            TrafficClass.EER_DATA if isolated else TrafficClass.BEST_EFFORT
        )
        delivered = offered = 0
        flood_carry = 0.0
        for _tick in range(500):
            flood_carry += mbps(160) * 0.001 / 8
            while flood_carry >= 500:
                flood_carry -= 500
                scheduler.enqueue(500, TrafficClass.BEST_EFFORT)
            offered += 1
            if scheduler.enqueue(500, reservation_class):
                delivered += 1
            scheduler.drain(0.001)
        return delivered / offered

    with_isolation = run(isolated=True)
    without = run(isolated=False)
    lines = [
        f"reservation enqueue success with class isolation:    {with_isolation:6.1%}",
        f"reservation enqueue success without class isolation: {without:6.1%}",
    ]
    report(
        "ablation_isolation",
        "Ablation — traffic-class isolation under a 4x best-effort flood",
        lines,
    )
    assert with_isolation == 1.0
    assert without < 0.9

    scheduler = PriorityScheduler(mbps(40))
    benchmark(lambda: (scheduler.enqueue(500, TrafficClass.EER_DATA), scheduler.drain(0.001)))
