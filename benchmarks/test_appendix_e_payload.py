"""Appendix E: forwarding performance vs. payload size.

Paper result: with 2^15 pre-existing reservations at the gateway (the
border router keeps no reservation state), "forwarding is not influenced
by the payload size" — both components sustain their packet rate from
0 B up to jumbo-frame payloads (1500 B+).

The per-packet work is a constant number of MACs over *fixed-size*
inputs (Eq. 6 covers Ts || PktSize, not the payload bytes), so the rate
must be flat in payload size.  We sweep 0..1500 B.
"""

from __future__ import annotations

import random

import pytest

from _helpers import report, time_per_call
from test_fig5_gateway import build_gateway
from test_fig6_scaling import build_router_and_packets

PAYLOAD_SIZES = [0, 100, 500, 1000, 1500]


def gateway_pps_for_payload(payload: int) -> float:
    gateway, ids = build_gateway(4, 2**15)
    rng = random.Random(3)
    body = b"\x00" * payload

    def one():
        gateway.send(ids[rng.randrange(len(ids))], body)

    # Min-based timing (best of many short batches) is robust to the
    # one-sided scheduler noise of a shared host.
    return 1.0 / time_per_call(one, repeat=100, number=20)


def router_pps_for_payload(payload: int) -> float:
    router, packets = build_router_and_packets(count=64)
    # Re-stamp packets with the requested payload size.
    from repro.dataplane.hvf import eer_hvf, hop_authenticator

    keys = router.keys
    stamped = []
    for packet in packets:
        packet.payload = b"\x00" * payload
        sigma = hop_authenticator(
            keys.hop_key(), packet.res_info, packet.eer_info, 2, 3
        )
        packet.hvfs[1] = eer_hvf(sigma, packet.timestamp, packet.total_size)
        stamped.append(packet)
    rng = random.Random(3)

    def one():
        router.validate_only(stamped[rng.randrange(len(stamped))])

    return 1.0 / time_per_call(one, repeat=100, number=20)


@pytest.mark.benchmark(group="appendix_e")
def test_payload_independence(benchmark):
    lines = [f"{'payload bytes':>14} | {'gateway pps':>12} | {'router pps':>12}"]
    gw_series, br_series = [], []
    for payload in PAYLOAD_SIZES:
        gw = gateway_pps_for_payload(payload)
        br = router_pps_for_payload(payload)
        gw_series.append(gw)
        br_series.append(br)
        lines.append(f"{payload:>14} | {gw / 1000:10.1f}k | {br / 1000:10.1f}k")
    lines.append("(gateway at r=2^15 reservations; router is stateless)")
    report(
        "appendix_e_payload",
        "Appendix E — forwarding rate vs. payload size (flat)",
        lines,
    )
    # Flat: across a 1500 B payload sweep, rates stay within 60 % (the
    # slack absorbs shared-host scheduler noise, not a real trend).
    for series in (gw_series, br_series):
        assert max(series) < 1.6 * min(series), f"payload-dependent rate: {series}"

    gateway, ids = build_gateway(4, 2**15)
    rng = random.Random(3)
    benchmark(lambda: gateway.send(ids[rng.randrange(len(ids))], b"\x00" * 1500))
