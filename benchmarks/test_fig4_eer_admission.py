"""Figure 4: EER admission time at a transit AS vs. existing EERs.

Paper result: the EER admission overhead "is independent of both the
number of existing EERs over the same SegR and the number of SegRs" (the
sweep runs existing EERs 10^1..10^5 and s in {1, 5000, 10000} SegRs
sharing the source AS); §6.2: "a single core can process more than 2000
requests per second".

Shape targets: flat in both dimensions; throughput > 2000/s.
"""

from __future__ import annotations

import pytest

from _helpers import report, throughput, time_per_call
from repro.admission import EerAdmission
from repro.admission.eer_admission import AsRole
from repro.reservation import (
    ReservationId,
    ReservationStore,
    SegmentReservation,
    SegmentVersion,
)
from repro.topology import IsdAs
from repro.topology.graph import NO_INTERFACE
from repro.topology.segments import HopField, Segment, SegmentType
from repro.util.units import gbps, kbps

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 1)
FAR = IsdAs(1, BASE + 2)
TRANSIT = IsdAs(1, BASE + 3)

EER_COUNTS = [10, 100, 1000, 10_000, 100_000]
SEGR_COUNTS = [1, 5000, 10_000]


def build_transit(existing_eers: int, segr_count: int):
    """A transit AS holding ``segr_count`` SegRs from one source, one of
    which carries ``existing_eers`` admitted EERs."""
    store = ReservationStore()
    target = None
    for index in range(segr_count):
        segment = Segment.from_hops(
            SegmentType.CORE,
            [HopField(SRC, NO_INTERFACE, 1), HopField(FAR, 1, NO_INTERFACE)],
        )
        reservation = SegmentReservation(
            reservation_id=ReservationId(SRC, index + 1),
            segment=segment,
            first_version=SegmentVersion(
                version=1, bandwidth=gbps(10_000), expiry=1e9
            ),
        )
        store.add_segment(reservation)
        if target is None:
            target = reservation.reservation_id
    for index in range(existing_eers):
        store.allocate_on_segment(
            target, ReservationId(SRC, 1_000_000 + index), kbps(1)
        )
    return EerAdmission(TRANSIT, store), target


def one_decision(admission: EerAdmission, segment_id: ReservationId):
    admission.decide(AsRole.TRANSIT, kbps(1), now=0.0, segment_in=segment_id)


@pytest.mark.benchmark(group="fig4")
def test_fig4_series(benchmark):
    lines = [
        f"{'existing EERs':>14} | "
        + " | ".join(f"s={s:<6}" for s in SEGR_COUNTS)
    ]
    flatness = {}
    for eers in EER_COUNTS:
        row = []
        for segrs in SEGR_COUNTS:
            admission, target = build_transit(eers, segrs)
            per_call = time_per_call(
                lambda: one_decision(admission, target), repeat=50, number=50
            )
            row.append(per_call * 1e6)
            flatness.setdefault(segrs, []).append(per_call)
        lines.append(f"{eers:>14} | " + " | ".join(f"{v:6.2f}µs" for v in row))
    report(
        "fig4_eer_admission",
        "Fig. 4 — EER admission time at a transit AS (flat = O(1))",
        lines,
    )
    # Flat in existing EERs (10^4x growth, allow 5x noise) ...
    for segrs, series in flatness.items():
        assert max(series) < 5 * max(min(series), 1e-7), (
            f"EER admission grew with existing EERs at s={segrs}: {series}"
        )
    # ... and flat in the number of SegRs sharing the source.
    by_segr = [flatness[s][-1] for s in SEGR_COUNTS]
    assert max(by_segr) < 5 * max(min(by_segr), 1e-7)

    admission, target = build_transit(100_000, 10_000)
    benchmark(lambda: one_decision(admission, target))


@pytest.mark.benchmark(group="fig4")
def test_eereq_throughput_exceeds_paper(benchmark):
    """§6.2: 'a single core can process more than 2000 requests per
    second'."""
    admission, target = build_transit(100_000, 10_000)
    rate = throughput(lambda: one_decision(admission, target), duration=0.3)
    report(
        "fig4_throughput",
        "EEReq admission throughput (paper: >2000/s per core)",
        [f"measured: {rate:,.0f} admissions/s on one core"],
    )
    assert rate > 2000
    benchmark(lambda: one_decision(admission, target))


@pytest.mark.benchmark(group="fig4")
def test_benchmark_eer_admission_small(benchmark):
    admission, target = build_transit(10, 1)
    benchmark(lambda: one_decision(admission, target))
